"""SCALE — Million-peer content search smoke (nightly).

The per-PR benches answer "did the content kernels regress" at the
default bundle scale; this one answers "does the million-peer content
path still work, and at what cost".  It exercises every layer the
content-scale work added: streaming trace generation (``peer_block``),
the streaming sharded index builder (``stream_block``/``n_shards``),
the zero-copy mmap artifact cache (second index build must be
sub-second), and the batch intersection kernel, recording wall time,
``peak_rss_bytes`` and distinct-queries/sec into ``BENCH_perf.json``
via the shared conftest hook.

Peak RSS is checked against the *static* prediction in
``lint/mem-budget.json`` (the postings group, rescaled from the
calibration library size to this run's) times a slack factor for the
tokenizer, the name interner and the interpreter; a failure means the
measured footprint regressed past what the committed budget promises.

Gated by ``REPRO_SCALE_BENCH=1`` (set by the nightly workflow): a
million-peer run has no place in the per-PR test path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import peak_rss_bytes

from repro.core.experiment import build_content_index, build_trace_bundle
from repro.overlay.content import intersect_postings, intersect_postings_batch
from repro.tracegen.gnutella_trace import GnutellaTraceConfig

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_BENCH") != "1",
    reason="million-peer smoke runs nightly; set REPRO_SCALE_BENCH=1 to run",
)

N_PEERS = 1_000_000
#: Calibrated library mean is 120 files/peer; at a million peers that
#: is ~120M instances — beyond a nightly smoke's time budget.  12
#: files/peer keeps ~11.5M instances, enough that posting-list element
#: work (not call overhead) dominates the kernels under test.
MEAN_LIBRARY_SIZE = 12.0
#: Library size the committed mem-budget's postings group is
#: calibrated at (the default trace config).
BUDGET_LIBRARY_SIZE = 120.0
#: Streaming block sizes: peers per RNG block / instances per
#: tokenization block.
PEER_BLOCK = 50_000
STREAM_BLOCK = 200_000
N_SHARDS = 8
#: Measured RSS may exceed the static posting-array budget by this
#: factor — the tokenizer, the observed-name interner, the query
#: workload and the interpreter are not in the budget's groups.
RSS_SLACK = 3.0
#: Interpreter + numpy + interned-string baseline not attributable to
#: per-peer arrays.
RSS_BASELINE_BYTES = 4 * 1024 * 1024 * 1024

SCALE_TRACE = GnutellaTraceConfig(
    n_peers=N_PEERS, mean_library_size=MEAN_LIBRARY_SIZE, peer_block=PEER_BLOCK
)


def _budgeted_rss_limit() -> int:
    """Byte ceiling from the committed static memory budget.

    The postings group's ``bytes_per_node`` scales linearly with the
    mean library size (every array in the group is per-instance or
    per-term with instance-proportional entries), so the committed
    figure is rescaled from the calibration library to this run's.
    """
    budget_path = Path(__file__).resolve().parent.parent / "lint" / "mem-budget.json"
    committed = json.loads(budget_path.read_text(encoding="utf-8"))
    per_node = float(committed["groups"]["postings"]["bytes_per_node"])
    scaled = per_node * (MEAN_LIBRARY_SIZE / BUDGET_LIBRARY_SIZE)
    return int(RSS_BASELINE_BYTES + RSS_SLACK * scaled * N_PEERS)


@pytest.fixture(scope="module")
def scale_bundle():
    return build_trace_bundle(trace_config=SCALE_TRACE)


@pytest.fixture(scope="module")
def scale_content(scale_bundle):
    return build_content_index(
        scale_bundle.trace, stream_block=STREAM_BLOCK, n_shards=N_SHARDS
    )


def test_scale_streaming_content_build(benchmark):
    """1M-peer streamed trace + index build: wall time + RSS gate."""

    def run():
        bundle = build_trace_bundle(trace_config=SCALE_TRACE)
        content = build_content_index(
            bundle.trace, stream_block=STREAM_BLOCK, n_shards=N_SHARDS
        )
        return bundle, content

    bundle, content = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bundle.trace.n_peers == N_PEERS
    assert content.n_instances == bundle.trace.n_instances
    rss = peak_rss_bytes()
    limit = _budgeted_rss_limit()
    benchmark.extra_info["n_peers"] = N_PEERS
    benchmark.extra_info["n_instances"] = int(content.n_instances)
    benchmark.extra_info["n_terms"] = int(content.term_index.n_terms)
    benchmark.extra_info["peak_rss_bytes"] = rss
    benchmark.extra_info["peak_rss_limit_bytes"] = limit
    assert rss <= limit, (
        f"peak RSS {rss / 2**30:.2f} GiB exceeds the mem-budget ceiling "
        f"{limit / 2**30:.2f} GiB (lint/mem-budget.json x {RSS_SLACK} slack)"
    )


def test_scale_content_mmap_reload(benchmark, scale_bundle, scale_content):
    """Second index build is a zero-copy cache hit: sub-second, memmap."""

    def reload():
        return build_content_index(
            scale_bundle.trace, stream_block=STREAM_BLOCK, n_shards=N_SHARDS
        )

    start = time.perf_counter()
    cached = benchmark.pedantic(reload, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    dense = cached.dense_postings()
    assert isinstance(dense.posting_instances, np.memmap)
    assert cached.n_instances == scale_content.n_instances
    benchmark.extra_info["reload_seconds"] = elapsed
    assert elapsed < 1.0, f"mmap cache reload took {elapsed:.2f}s (budget: 1s)"


def test_scale_distinct_miss_intersection(benchmark, scale_bundle, scale_content):
    """1k-query Zipf replay, cold cache: batch kernel vs per-key loop.

    The acceptance bar for the batch intersection kernel: on the
    distinct cache-miss keys of a 1,000-query Zipf replay it must beat
    looping the ``np.intersect1d``-based ``intersect_postings`` per
    key by at least 5x.  This is the scale where the bar is meaningful
    — posting lists hold millions of entries, so element work (the
    thing the kernel restructures) dominates per-call overhead.
    """
    workload = scale_bundle.workload
    content = scale_content
    # Replay the first 1,000 workload queries and keep what a cold
    # match cache would actually compute: the distinct canonical keys.
    seen = set()
    keys = []
    off, tid = workload.term_offsets, workload.term_ids
    for q in range(1_000):
        words = [workload.vocab_words[int(r)] for r in tid[off[q] : off[q + 1]]]
        key = content.query_key(words)
        if key is not None and key not in seen:
            seen.add(key)
            keys.append(key)
    dense = content.dense_postings()

    expected = [
        intersect_postings(dense.posting_offsets, dense.posting_instances, key)
        for key in keys
    ]
    rows = benchmark.pedantic(
        intersect_postings_batch, (dense, keys), rounds=3, iterations=1
    )

    # Bitwise parity with the scalar path first.
    assert len(rows) == len(keys)
    for row, exp in zip(rows, expected):
        np.testing.assert_array_equal(row, exp)
        assert row.dtype == exp.dtype

    # The speed bar is measured interleaved (both paths alternate in
    # the same window) so machine drift cannot bias the ratio.
    scalar_s = batch_s = 0.0
    rounds = 3
    for _ in range(rounds):
        t0 = time.perf_counter()
        for key in keys:
            intersect_postings(dense.posting_offsets, dense.posting_instances, key)
        scalar_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        intersect_postings_batch(dense, keys)
        batch_s += time.perf_counter() - t0
    scalar_s /= rounds
    batch_s /= rounds
    speedup = scalar_s / batch_s
    benchmark.extra_info["distinct_keys"] = len(keys)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 4)
    benchmark.extra_info["batch_s"] = round(batch_s, 4)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    benchmark.extra_info["distinct_queries_per_sec"] = round(len(keys) / batch_s, 1)
    benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()
    print(f"\n1k-replay distinct-miss intersection: per-key {scalar_s * 1e3:.1f}ms, "
          f"batch {batch_s * 1e3:.1f}ms, speedup {speedup:.2f}x")
    assert speedup >= 5.0, (
        f"batch intersection kernel {speedup:.2f}x vs the per-key "
        f"np.intersect1d loop (bar: 5x)"
    )
