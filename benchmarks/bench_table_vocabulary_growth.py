"""T-VOCAB — Heaps'-law vocabulary growth in queries and file names.

Companion to the §III/§IV measurements (and the authors' PAM'07 trace
work, ref [16]): the term population keeps growing sub-linearly but
unboundedly in both the shared-file corpus and the query stream —
why any static summary keeps falling behind the workload.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.vocabulary import fit_heaps, new_term_rate, vocabulary_growth
from repro.core.reporting import format_table


def test_vocabulary_growth(benchmark, bundle, content):
    workload = bundle.workload

    def run():
        # Query-term stream, in time order.
        q_n, q_v = vocabulary_growth(workload.term_ids)
        q_fit = fit_heaps(q_n, q_v)
        # File-name term stream, in instance order.
        name_terms, _ = content.term_index.expand(bundle.trace.name_ids)
        f_n, f_v = vocabulary_growth(name_terms)
        f_fit = fit_heaps(f_n, f_v)
        # New query terms per day.
        lengths = np.diff(workload.term_offsets)
        times = np.repeat(workload.timestamps, lengths)
        daily_new = new_term_rate(workload.term_ids, times, interval_s=86_400.0)
        return q_fit, f_fit, daily_new

    q_fit, f_fit, daily_new = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("query stream", f"{q_fit.beta:.3f}", f"{q_fit.r_squared:.3f}"),
        ("file-name corpus", f"{f_fit.beta:.3f}", f"{f_fit.r_squared:.3f}"),
    ]
    print()
    print(
        format_table(
            ["corpus", "Heaps beta", "log-log R^2"],
            rows,
            title="T-VOCAB: vocabulary growth",
        )
    )
    print(
        format_table(
            ["day", "new query terms"],
            list(enumerate(daily_new.tolist(), start=1)),
        )
    )

    for fit in (q_fit, f_fit):
        assert 0.1 < fit.beta < 1.0  # sub-linear but unbounded
        assert fit.r_squared > 0.9
    # The first day dominates, but later days still bring new terms.
    assert daily_new[0] > daily_new[-1]
    assert daily_new[1:].sum() > 0
