"""FIG1 — Number of Gnutella clients with each object (raw names).

Paper Fig. 1: log-log plot of clients-per-object over the April 2007
crawl.  Regenerates the distribution and prints the CCDF decades plus
the headline statistics (singleton fraction, <0.1%-replication mass).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.analysis.zipf_fit import fit_zipf
from repro.core.reporting import format_percent, format_table
from repro.utils.stats import ccdf


def test_fig1_object_replica_distribution(benchmark, bundle):
    trace = bundle.trace

    def run():
        counts = trace.replica_counts()
        return counts[counts > 0]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = summarize_replication(counts, trace.n_peers)
    fit = fit_zipf(counts)
    x, p = ccdf(counts)

    rows = [
        ("objects (unique names)", f"{summary.n_objects:,}"),
        ("object instances", f"{summary.n_instances:,}"),
        ("peers", f"{summary.n_peers:,}"),
        ("singleton fraction (paper: 70.5%)", format_percent(summary.singleton_fraction)),
        ("mean replicas (paper: ~1.5)", f"{summary.mean_replicas:.2f}"),
        ("max replicas", str(summary.max_replicas)),
        ("Zipf exponent (MLE)", f"{fit.exponent:.2f}"),
        ("KS distance", f"{fit.ks:.3f}"),
    ]
    print()
    print(format_table(["metric", "value"], rows, title="FIG1: Gnutella object replicas"))
    decades = [d for d in (1, 2, 5, 10, 20, 50) if d <= x.max()]
    series = [
        (d, format_percent(float(p[np.searchsorted(x, d)])))
        for d in decades
    ]
    print(format_table(["replicas >=", "fraction of objects"], series))

    assert summary.singleton_fraction > 0.6
    assert fit.is_heavy_tailed()
