"""A-MULTITERM — AND-matching compounds the mismatch per query term.

Gnutella matches a file only when it contains *every* query term, so
each extra term multiplies the miss probability.  Splitting the
oracle resolvability by terms-per-query makes the compounding visible:
single-term queries are often resolvable, 4-term queries almost never
— which is why term-level Zipf statistics (Fig. 3) understate how bad
multi-term search really is.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.utils.rng import make_rng


def test_multiterm_penalty(benchmark, bundle, content):
    workload = bundle.workload
    rng = make_rng(31)

    def run():
        lengths = np.diff(workload.term_offsets)
        out = {}
        for k in (1, 2, 3, 4):
            pool = np.flatnonzero((lengths == k) & ~workload.is_burst)
            picks = pool[rng.integers(0, pool.size, size=min(400, pool.size))]
            unresolvable = 0
            rare = 0
            for qi in picks:
                words = workload.query_words(int(qi))
                hits = content.match(words)
                unresolvable += hits.size == 0
                rare += hits.size < 20
            out[k] = (unresolvable / picks.size, rare / picks.size, picks.size)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (k, n, format_percent(unres), format_percent(rare))
        for k, (unres, rare, n) in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["terms per query", "sampled", "unresolvable", "rare (<20 results)"],
            rows,
            title="A-MULTITERM: AND semantics compound the mismatch",
        )
    )

    unres = [results[k][0] for k in (1, 2, 3, 4)]
    assert all(a <= b + 0.02 for a, b in zip(unres, unres[1:]))  # monotone up
    assert results[4][0] > results[1][0] + 0.2  # strong compounding
    assert results[4][1] > 0.9  # 4-term queries are essentially all rare