"""T-DHT — Structured-overlay comparators: Chord vs Pastry vs Kademlia.

The paper's §I cites Pastry [1] and §V assumes a DHT comparator; this
table verifies the structured substrate behaves like the literature:
~0.5·log2 N hops for Chord finger routing, ~log16 N for Pastry prefix
routing, ~0.5·log2 N for Kademlia XOR routing, at several sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table
from repro.dht.chord import ChordRing
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork


def test_structured_overlay_hop_costs(benchmark):
    sizes = (500, 2_000, 8_000)

    def run():
        out = {}
        for n in sizes:
            chord = ChordRing(n, seed=1).mean_lookup_hops(150, seed=0)
            pastry = PastryNetwork(n, seed=1).mean_lookup_hops(150, seed=0)
            kad = KademliaNetwork(n, seed=1).mean_lookup_hops(150, seed=0)
            out[n] = (chord, pastry, kad)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n, (chord, pastry, kad) in results.items():
        rows.append(
            (
                f"{n:,}",
                f"{chord:.2f}",
                f"{pastry:.2f}",
                f"{kad:.2f}",
                f"{0.5 * np.log2(n):.2f}",
                f"{np.log(n) / np.log(16):.2f}",
            )
        )
    print()
    print(
        format_table(
            ["nodes", "Chord", "Pastry", "Kademlia", "0.5*log2 N", "log16 N"],
            rows,
            title="T-DHT: structured-overlay lookup hop costs",
        )
    )

    for n, (chord, pastry, kad) in results.items():
        assert chord == np.clip(chord, 0.3 * np.log2(n), 1.2 * np.log2(n))
        assert kad == np.clip(kad, 0.3 * np.log2(n), 1.2 * np.log2(n))
        assert pastry < chord  # base-16 routing is shallower
    # Hop growth is logarithmic: x16 nodes adds only a few hops.
    assert results[8_000][0] - results[500][0] < 4
