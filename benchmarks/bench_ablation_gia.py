"""A-GIA — The §VI Gia critique, reproduced.

Paper: "Gia was evaluated using a uniform object distribution on up to
0.5% of the peers.  We show that the Zipf distribution exhibited in
real-world P2P systems located fewer than 1% of the objects with
replication ratios as high as 0.5%."

Two measurements: (1) Gia search success vs replication ratio — great
at Gia's evaluated ratios; (2) the fraction of objects that actually
*have* those ratios under the measured Zipf replica distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.flood_sim import zipf_replica_counts
from repro.core.reporting import format_percent, format_table
from repro.overlay.gia import gia_success_rate, gia_topology, sample_capacities
from repro.utils.rng import make_rng


def test_gia_critique(benchmark):
    n_nodes = 4_000
    caps = sample_capacities(n_nodes, make_rng(11))
    topology = gia_topology(n_nodes, caps, seed=11)
    counts = zipf_replica_counts(10_000, 1.0, 5.0)

    def run():
        ratios = (0.005, 0.0025, 0.001, 0.0005)
        success = {
            r: gia_success_rate(topology, caps, r, trials=60, max_steps=64, seed=1)
            for r in ratios
        }
        coverage = {
            r: float(np.mean(counts / 40_000.0 >= r)) for r in ratios
        }
        return success, coverage

    success, coverage = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            format_percent(r, 2),
            format_percent(success[r]),
            format_percent(coverage[r], 2),
        )
        for r in sorted(success, reverse=True)
    ]
    print()
    print(
        format_table(
            ["replication ratio", "Gia search success", "objects at this ratio (Zipf)"],
            rows,
            title="A-GIA: Gia works at ratios almost no real object has",
        )
    )

    assert success[0.005] > 0.8  # Gia shines at its evaluated ratio
    assert coverage[0.005] < 0.01  # <1% of objects are replicated that much
    assert success[0.0005] < success[0.005]
