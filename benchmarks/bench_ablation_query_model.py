"""A-QUERYMODEL — Ablation: which query model breaks the flood? (DESIGN.md §5)

The paper's position is that the *mismatch* between query popularity
and object placement — not Zipf placement alone — is what defeats the
unstructured search.  Three query models over the same Zipf placement:

* ``uniform``     — any object equally likely (the paper's Fig. 8 setting);
* ``popularity``  — queries follow replica counts (prior work's optimism);
* ``mismatch``    — Zipf query popularity independently permuted
  against placement (the measured reality of Figs. 5-7).
"""

from __future__ import annotations

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.core.flood_sim import PlacementSpec, run_flood_success
from repro.core.reporting import format_table


def test_query_model_ablation(benchmark):
    topology = build_fig8_topology(Fig8TopologyConfig(n_nodes=20_000))

    def run():
        out = {}
        for model in ("uniform", "popularity", "mismatch"):
            curve = run_flood_success(
                topology,
                PlacementSpec(query_model=model),
                n_eval_objects=80,
                seed=3,
            )
            out[model] = curve.success
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for ttl_idx, ttl in enumerate((1, 2, 3, 4, 5)):
        rows.append(
            [ttl] + [f"{curves[m][ttl_idx]:.4f}" for m in ("uniform", "popularity", "mismatch")]
        )
    print()
    print(
        format_table(
            ["TTL", "uniform queries", "popularity queries", "mismatched queries"],
            rows,
            title="A-QUERYMODEL: flood success under different query models (Zipf placement)",
        )
    )

    # Popularity-aligned queries would have made floods look great...
    assert curves["popularity"][2] > 2 * curves["uniform"][2]
    # ...but the measured mismatch takes that advantage away.
    assert curves["mismatch"][2] < 0.5 * curves["popularity"][2]
