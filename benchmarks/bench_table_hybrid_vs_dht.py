"""T-HYBRID — Hybrid flood-then-DHT vs pure DHT (§V / §VII).

Paper claims regenerated here: a TTL-3 flood reaches >1,000 nodes yet
succeeds ~5% under the measured Zipf placement (a uniform 0.1% model
predicts ~62%), so a hybrid pays the flood *and* the DHT lookup nearly
always — "a hybrid P2P system ... would perform worse than a DHT-based
search".
"""

from __future__ import annotations

from repro.core.hybrid_eval import HybridEvalConfig, evaluate_hybrid
from repro.core.reporting import format_table


def test_hybrid_vs_dht_table(benchmark):
    def run():
        return evaluate_hybrid(HybridEvalConfig(n_eval_objects=80))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["metric", "value"],
            result.as_rows(),
            title="T-HYBRID: hybrid vs DHT on the calibrated 40,000-node network",
        )
    )

    assert result.nodes_reached > 900  # "over a thousand nodes"
    assert 0.02 <= result.flood_success <= 0.10  # ~5%
    assert 0.5 <= result.predicted_success_0p1pct <= 0.75  # ~62%
    assert result.hybrid_overhead > 5  # hybrid strictly worse than DHT
