"""T-BYTES — The strategy comparison in bytes on the wire.

Message counts treat all transmissions alike; the wire model converts
each strategy's traffic to bytes (Gnutella 0.6 framing), confirming
the §V conclusion survives the unit change — and quantifying QRP's
standing QRT-upload cost next to its per-query savings.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table
from repro.dht.chord import ChordRing
from repro.dht.keyword_index import KeywordIndex
from repro.overlay.bandwidth import DEFAULT_WIRE
from repro.overlay.network import UnstructuredNetwork
from repro.overlay.qrp import QrpTables, qrp_flood_batch
from repro.overlay.topology import two_tier_gnutella
from repro.utils.rng import make_rng


def test_bandwidth_comparison(benchmark, bundle, content):
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=37)
    network = UnstructuredNetwork(topology, content)
    ring = ChordRing(content.n_peers, seed=37)
    index = KeywordIndex(ring, content)
    tables = QrpTables(content)
    w = DEFAULT_WIRE
    workload = bundle.workload
    rng = make_rng(37)
    n_up = int(topology.forwards.sum())
    n_queries = 50
    picks = rng.integers(0, workload.n_queries, size=n_queries)
    sources = rng.integers(0, n_up, size=n_queries)
    queries = [workload.query_words(int(qi)) for qi in picks]

    def run():
        # Flood and QRP traffic via the batched engines (one shared
        # depth cache); the wire arithmetic stays per-query.
        flood = network.query_batch(sources, queries, ttl=3)
        qrp = qrp_flood_batch(
            topology,
            tables,
            sources,
            queries,
            ttl=3,
            cache=network.batch_engine().flood_cache,
        )
        flood_b = qrp_b = dht_b = 0
        for i, src in enumerate(sources):
            flood_b += w.query_bytes(int(flood.messages[i])) + w.hit_bytes(
                int(flood.n_results[i])
            )
            qrp_b += w.query_bytes(int(qrp.messages[i]))
            d = index.query(queries[i], int(src), intersection="bloom")
            dht_b += w.dht_query_bytes(d.lookup_hops, d.posting_entries_shipped)
        # QRP's standing cost: every leaf uploads its QRT to each of
        # its ultrapeers once per session.
        n_leaves = content.n_peers - n_up
        qrt_total = n_leaves * 3 * w.qrt_upload
        return flood_b / n_queries, qrp_b / n_queries, dht_b / n_queries, qrt_total

    flood_b, qrp_b, dht_b, qrt_total = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("flood (TTL 3)", f"{flood_b / 1024:,.1f}"),
        ("flood + QRP (TTL 3)", f"{qrp_b / 1024:,.1f}"),
        ("DHT (bloom)", f"{dht_b / 1024:,.1f}"),
        (
            "QRP standing cost (all QRT uploads, once/session)",
            f"{qrt_total / 1024:,.1f} total",
        ),
    ]
    print()
    print(
        format_table(
            ["traffic", "KiB per query"],
            rows,
            title="T-BYTES: the §V comparison in bytes",
        )
    )

    assert dht_b < flood_b  # the conclusion survives the unit change
    assert qrp_b <= flood_b
    # QRT uploads amortize: a few hundred queries repay the savings.
    per_query_savings = flood_b - qrp_b
    if per_query_savings > 0:
        breakeven = qrt_total / per_query_savings
        assert breakeven < 50_000