"""SERVE — end-to-end service latency under open-loop load.

One resident :class:`ServiceState` (the 5k-node Fig. 8 fixture the CI
smoke job also serves), one loopback :class:`OverlayQueryServer`, and
the project's own open-loop driver offering a fixed request rate.  The
timing pytest-benchmark records is the whole run; the SLO numbers that
matter — client-observed p50/p99 latency and the achieved rate — ride
along in ``extra_info`` and land in ``BENCH_perf.json``.

Two profiles: ``uniform`` measures steady-state latency, ``burst``
stresses admission control (hot half-periods at 4x the mean rate must
shed with 429s rather than stretch the tail unboundedly).
"""

from __future__ import annotations

import asyncio

import pytest

from conftest import peak_rss_bytes

from repro.core.experiment import (
    Fig8TopologyConfig,
    build_content_index,
    build_fig8_topology,
    build_trace_bundle,
)
from repro.serve.load import LoadConfig, LoadReport, build_query_pool, run_load
from repro.serve.server import OverlayQueryServer
from repro.serve.state import ServiceState
from repro.tracegen.gnutella_trace import GnutellaTraceConfig

N_NODES = 5_000
SEED = 0


@pytest.fixture(scope="module")
def serving():
    """Resident state + query pool over the same indexed vocabulary."""
    topology = build_fig8_topology(
        Fig8TopologyConfig(n_nodes=N_NODES, seed=SEED)
    )
    bundle = build_trace_bundle(
        trace_config=GnutellaTraceConfig(n_peers=N_NODES, seed=SEED)
    )
    content = build_content_index(bundle.trace)
    with ServiceState(topology, content) as state:
        yield state, build_query_pool(bundle.workload, 64)


def _drive(state: ServiceState, config: LoadConfig, pool) -> LoadReport:
    async def scenario() -> LoadReport:
        server = OverlayQueryServer(state)
        await server.start()
        try:
            return await run_load(
                server.host,
                server.port,
                config,
                queries=pool,
                n_nodes=state.n_nodes,
            )
        finally:
            await server.shutdown(drain_timeout_s=30.0)

    return asyncio.run(scenario())


def _record(benchmark, report: LoadReport) -> None:
    lat = report.latency
    benchmark.extra_info.update(
        {
            "sent": report.sent,
            "ok": report.ok,
            "shed": report.shed,
            "timeouts": report.timeouts,
            "errors": report.errors,
            "offered_qps": report.offered_qps,
            "achieved_qps": report.achieved_qps,
            "latency_p50_ms": lat.quantile(0.5) * 1e3 if lat.count else None,
            "latency_p99_ms": lat.quantile(0.99) * 1e3 if lat.count else None,
            "latency_max_ms": lat.max_v * 1e3 if lat.count else None,
            "peak_rss_bytes": peak_rss_bytes(),
        }
    )


def test_serve_uniform_load(benchmark, serving):
    """Steady 40 qps for 5 s: the SLO-report numbers."""
    state, pool = serving
    config = LoadConfig(
        qps=40, duration_s=5, profile="uniform", ttl=3, seed=1
    )
    report = benchmark.pedantic(
        _drive, args=(state, config, pool), rounds=1
    )
    _record(benchmark, report)
    assert report.sent == config.n_requests
    assert report.ok > 0
    assert report.errors == 0


def test_serve_burst_load(benchmark, serving):
    """Bursty 40 qps mean (4x hot halves): shed, don't stretch."""
    state, pool = serving
    config = LoadConfig(
        qps=40, duration_s=5, profile="burst", burst_factor=4,
        ttl=3, seed=1,
    )
    report = benchmark.pedantic(
        _drive, args=(state, config, pool), rounds=1
    )
    _record(benchmark, report)
    assert report.sent == config.n_requests
    # Every offered request is accounted for: served, shed, or timed out.
    assert (
        report.ok + report.shed + report.timeouts + report.errors
        == report.sent
    )
    assert report.ok > 0
