"""A-CHURN — Crawl-duration bias under peer churn (methodology ablation).

The paper's crawler follows Cruiser precisely because slow crawls
inflate peer counts under churn.  This ablation quantifies it: a
zero-duration (ideal) snapshot vs progressively slower crawls over the
same churn timeline.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.overlay.churn import ChurnConfig, ChurnTimeline, crawl_snapshot


def test_crawl_duration_bias(benchmark):
    timeline = ChurnTimeline(ChurnConfig(n_peers=2_000, seed=8))
    t0 = 20_000.0

    def run():
        true_online = timeline.online_count(t0)
        durations = (0.0, 1_800.0, 7_200.0, 28_800.0, 86_400.0)
        observed = {
            d: crawl_snapshot(timeline, start_s=t0, duration_s=d, seed=2).size
            for d in durations
        }
        return true_online, observed

    true_online, observed = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"{d / 3600:.1f} h",
            f"{n:,}",
            f"{n / true_online:.2f}x",
        )
        for d, n in sorted(observed.items())
    ]
    print()
    print(
        format_table(
            ["crawl duration", "peers observed", "inflation vs instant snapshot"],
            rows,
            title=(
                f"A-CHURN: {true_online:,} peers actually online; slow crawls "
                "overcount (Cruiser's motivation)"
            ),
        )
    )

    sizes = [observed[d] for d in sorted(observed)]
    assert sizes == sorted(sizes)
    assert sizes[-1] > 1.3 * true_online  # a day-long crawl inflates >30%
    assert abs(sizes[0] - true_online) <= 0.02 * true_online
