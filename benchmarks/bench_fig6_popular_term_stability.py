"""FIG6 — Jaccard similarity of popular query terms across intervals.

Paper Fig. 6: Jaccard(Q*_t, Q*_{t-1}) over a one-week trace at 60-min
intervals — unstable during the first intervals, then > 90%.
"""

from __future__ import annotations

import numpy as np

from repro.core.mismatch import run_mismatch_analysis
from repro.core.reporting import format_percent, format_series
from repro.core.reporting import format_table


def test_fig6_popular_query_term_stability(benchmark, bundle, content):
    def run():
        return run_mismatch_analysis(bundle, content=content)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    series = report.stability_timeline

    # Print one sample every ~12 intervals to keep the series readable.
    idx = np.arange(1, series.size, 12)
    print()
    print(
        format_series(
            idx.tolist(),
            series[idx],
            x_label="interval (h)",
            y_label="Jaccard(Q*_t, Q*_{t-1})",
            title="FIG6: popular query term stability (60-min intervals)",
        )
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("mean after warm-up (paper: >90%)",
                 format_percent(report.stability_after_warmup)),
                ("mean of first 3 intervals",
                 format_percent(float(np.nanmean(series[1:4])))),
            ],
        )
    )

    assert report.stability_after_warmup > 0.9
    assert np.nanmean(series[1:4]) < report.stability_after_warmup
