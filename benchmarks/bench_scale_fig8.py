"""SCALE — Million-node Fig. 8 smoke (nightly).

The 40k-node benches answer "did the kernels regress"; this one
answers "does the million-node path still work, and at what cost".  It
exercises every layer the scale work added: streaming topology
generation (``edge_block``), the zero-copy mmap artifact cache
(second topology build must be sub-second), and the sharded flood
driver, recording wall time, ``peak_rss_bytes`` and nodes/sec/worker
into ``BENCH_perf.json`` via the shared conftest hook.

Peak RSS is checked against the *static* prediction in
``lint/mem-budget.json`` (csr_depth + sharding groups — postings are
not built here) times a slack factor for BFS scratch and the
interpreter; a failure means the measured footprint regressed past
what the committed budget promises.

Gated by ``REPRO_SCALE_BENCH=1`` (set by the nightly workflow): a
million-node run has no place in the per-PR test path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import peak_rss_bytes

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.core.flood_sim import FloodSimConfig, run_fig8
from repro.overlay.flooding import flood_depths
from repro.runtime.shards import ShardedFloodRunner

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_BENCH") != "1",
    reason="million-node smoke runs nightly; set REPRO_SCALE_BENCH=1 to run",
)

N_NODES = 1_000_000
#: Streaming block size: ~2 MiB of edge draw per block.
EDGE_BLOCK = 1 << 17
N_SHARDS = 8
#: Measured RSS may exceed the static per-node budget by this factor
#: (BFS scratch masks, the frontier, interpreter overhead, and the
#: transient per-shard build buffers are not in the budget's groups).
RSS_SLACK = 3.0
#: Interpreter + numpy baseline not attributable to per-node arrays.
RSS_BASELINE_BYTES = 512 * 1024 * 1024

SCALE_CONFIG = Fig8TopologyConfig(n_nodes=N_NODES, edge_block=EDGE_BLOCK)


def _budgeted_rss_limit() -> int:
    """Byte ceiling from the committed static memory budget."""
    budget_path = Path(__file__).resolve().parent.parent / "lint" / "mem-budget.json"
    committed = json.loads(budget_path.read_text(encoding="utf-8"))
    groups = committed["groups"]
    per_node = float(groups["csr_depth"]["bytes_per_node"]) + float(
        groups["sharding"]["bytes_per_node"]
    )
    return int(RSS_BASELINE_BYTES + RSS_SLACK * per_node * N_NODES)


@pytest.fixture(scope="module")
def scale_topology():
    return build_fig8_topology(SCALE_CONFIG)


def test_scale_streaming_generation(benchmark):
    """1M-node streamed build: wall time + RSS vs the static budget."""

    def run():
        return build_fig8_topology(SCALE_CONFIG)

    topo = benchmark.pedantic(run, rounds=1, iterations=1)
    assert topo.n_nodes == N_NODES
    assert int(topo.forwards.sum()) == 300_000
    rss = peak_rss_bytes()
    limit = _budgeted_rss_limit()
    benchmark.extra_info["n_nodes"] = N_NODES
    benchmark.extra_info["n_directed_entries"] = int(topo.neighbors.size)
    benchmark.extra_info["peak_rss_bytes"] = rss
    benchmark.extra_info["peak_rss_limit_bytes"] = limit
    assert rss <= limit, (
        f"peak RSS {rss / 2**30:.2f} GiB exceeds the mem-budget ceiling "
        f"{limit / 2**30:.2f} GiB (lint/mem-budget.json x {RSS_SLACK} slack)"
    )


def test_scale_mmap_cache_reload(benchmark, scale_topology):
    """Second build is a zero-copy cache hit: sub-second, memmap-backed."""

    def reload():
        return build_fig8_topology(SCALE_CONFIG)

    start = time.perf_counter()
    cached = benchmark.pedantic(reload, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert isinstance(cached.neighbors, np.memmap)
    assert cached.n_nodes == N_NODES
    benchmark.extra_info["reload_seconds"] = elapsed
    assert elapsed < 1.0, f"mmap cache reload took {elapsed:.2f}s (budget: 1s)"


def test_scale_sharded_flood(benchmark, scale_topology):
    """Sharded full-depth floods at 1M nodes: nodes/sec/worker."""
    n_workers = min(N_SHARDS, os.cpu_count() or 1)
    sources = np.arange(16, dtype=np.int64) * 61_441  # spread over shards

    with ShardedFloodRunner(
        scale_topology, n_shards=N_SHARDS, n_workers=n_workers
    ) as runner:

        def run():
            reached = 0
            for source in sources:
                depth, _ = runner.flood_depths(int(source), 7)
                reached += int((depth >= 0).sum())
            return reached

        start = time.perf_counter()
        total_reached = benchmark.pedantic(run, rounds=1, iterations=1)
        elapsed = time.perf_counter() - start

    nodes_per_sec = total_reached / elapsed if elapsed > 0 else 0.0
    benchmark.extra_info["n_shards"] = N_SHARDS
    benchmark.extra_info["n_workers"] = runner.n_workers
    benchmark.extra_info["floods"] = int(sources.size)
    benchmark.extra_info["nodes_reached"] = total_reached
    benchmark.extra_info["nodes_per_sec"] = nodes_per_sec
    benchmark.extra_info["nodes_per_sec_per_worker"] = (
        nodes_per_sec / max(1, runner.n_workers)
    )
    benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()
    assert total_reached > sources.size * N_NODES * 0.5  # floods actually spread

    # One sharded flood must agree with the single-segment kernel even
    # at this scale (the 40k identity tests prove the math; this
    # catches scale-only failures like dtype overflow).
    ref_depth, ref_messages = flood_depths(scale_topology, 0, 5)
    with ShardedFloodRunner(scale_topology, n_shards=N_SHARDS) as serial:
        depth, messages = serial.flood_depths(0, 5)
    assert np.array_equal(depth, ref_depth) and messages == ref_messages


def test_scale_fig8_run(benchmark):
    """A reduced Fig. 8 sweep at 1M nodes through the sharded driver."""

    def run():
        return run_fig8(
            FloodSimConfig(
                topology=SCALE_CONFIG,
                ttls=(1, 2, 3, 4, 5),
                n_eval_objects=8,
                uniform_replicas=(9,),
                n_shards=N_SHARDS,
            )
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rss = peak_rss_bytes()
    benchmark.extra_info["wall_seconds"] = elapsed
    benchmark.extra_info["peak_rss_bytes"] = rss
    # Success must be monotone in TTL and non-degenerate.
    for curve in result.curves:
        assert (np.diff(curve.success) >= 0).all()
        assert 0.0 <= curve.success[-1] <= 1.0
