"""A-NOISE — Ablation: name-noise channel composition (DESIGN.md §5).

Shows that sanitization recovers case/punctuation noise but not
term-level variants — reproducing *why* the paper's Fig. 2 barely
differs from Fig. 1.  Three generators: no noise, case/punct-only
noise, and the calibrated term-level mix.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tokenize import sanitize_name
from repro.core.reporting import format_percent, format_table
from repro.tracegen.catalog import CatalogConfig, MusicCatalog
from repro.tracegen.gnutella_trace import GnutellaShareTrace, GnutellaTraceConfig
from repro.utils.text import NameNoiseModel

CASE_ONLY = NameNoiseModel(
    p_case=0.6, p_punct=0.5, p_featuring=0.0, p_subtitle=0.0, p_typo=0.0, p_drop_term=0.0
)
NO_NOISE = NameNoiseModel(
    p_case=0.0, p_punct=0.0, p_featuring=0.0, p_subtitle=0.0, p_typo=0.0, p_drop_term=0.0
)


def _sanitize_recovery(trace: GnutellaShareTrace) -> tuple[int, float]:
    names = trace.unique_names()
    observed = {trace.names.lookup(int(i)) for i in np.unique(trace.name_ids)}
    sanitized = {sanitize_name(n) for n in observed}
    return len(observed), 1.0 - len(sanitized) / len(observed)


def test_name_noise_ablation(benchmark):
    catalog = MusicCatalog(
        CatalogConfig(n_songs=30_000, n_artists=2_500, lexicon_size=15_000, seed=5)
    )

    def run():
        out = {}
        for label, noise in (
            ("no noise", NO_NOISE),
            ("case/punct only", CASE_ONLY),
            ("calibrated mix", NameNoiseModel()),
        ):
            trace = GnutellaShareTrace(
                catalog,
                GnutellaTraceConfig(
                    n_peers=400, mean_library_size=100.0, noise=noise, seed=5
                ),
            )
            uniq, recovery = _sanitize_recovery(trace)
            out[label] = (uniq, recovery)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (label, f"{uniq:,}", format_percent(rec))
        for label, (uniq, rec) in results.items()
    ]
    print()
    print(
        format_table(
            ["noise model", "unique names", "uniques recovered by sanitization"],
            rows,
            title="A-NOISE: why Fig. 2 barely differs from Fig. 1",
        )
    )

    # Case/punct noise is recoverable; the calibrated mix is not.
    assert results["case/punct only"][1] > 3 * results["calibrated mix"][1]
    assert results["no noise"][1] < 0.02
