"""FIG3 — Number of Gnutella clients with each *term*.

Paper Fig. 3: names are split with the Gnutella protocol tokenization
and the clients-per-term distribution is plotted.  Paper headline:
1.22M unique terms; 71.3% on a single peer; 98.3% on <= 0.1% of peers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.zipf_fit import fit_zipf
from repro.core.reporting import format_percent, format_table


def test_fig3_term_replica_distribution(benchmark, content):
    def run():
        counts = content.term_peer_counts()
        return counts[counts > 0]

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    n_peers = content.n_peers
    threshold = max(1, int(0.01 * n_peers))  # 1% of peers (scale analog)
    fit = fit_zipf(counts)

    rows = [
        ("unique terms", f"{counts.size:,}"),
        ("single-peer terms (paper: 71.3% at 37k peers)",
         format_percent(float(np.mean(counts == 1)))),
        (f"terms on <= {threshold} peers = 1% (paper: 98.3% on <=0.1%)",
         format_percent(float(np.mean(counts <= threshold)))),
        ("Zipf exponent (MLE)", f"{fit.exponent:.2f}"),
    ]
    print()
    print(format_table(["metric", "value"], rows, title="FIG3: term replicas"))

    # Scale note: with 1,000 peers each term is denser than in the
    # 37,572-peer crawl; the scale-invariant claim is that the vast
    # majority of terms live on a tiny fraction of peers.
    assert np.mean(counts == 1) > 0.25
    assert np.mean(counts <= threshold) > 0.75
    assert fit.exponent > 0.3
