"""T-ANNOT — §III headline statistics, Gnutella and iTunes side by side.

Regenerates every §III scalar the paper quotes: Gnutella singleton /
uniqueness / insufficient-replication fractions and term statistics,
plus the iTunes per-field summary.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.core.reporting import format_percent, format_table


def test_annotation_statistics(benchmark, bundle, content, itunes):
    trace = bundle.trace

    def run():
        name_counts = trace.replica_counts()
        term_counts = content.term_peer_counts()
        return name_counts[name_counts > 0], term_counts[term_counts > 0]

    name_counts, term_counts = benchmark.pedantic(run, rounds=1, iterations=1)
    s = summarize_replication(name_counts, trace.n_peers)
    threshold = max(1, int(0.01 * trace.n_peers))  # 1% of peers (scale analog)

    gnutella_rows = [
        ("peers", f"{trace.n_peers:,}", "37,572"),
        ("instances", f"{s.n_instances:,}", "12M"),
        ("unique names", f"{s.n_objects:,}", "8.1M"),
        ("unique/instances", format_percent(s.n_objects / s.n_instances), "67.5%"),
        ("singleton names", format_percent(s.singleton_fraction), "70.5%"),
        ("unique terms", f"{term_counts.size:,}", "1.22M"),
        ("single-peer terms", format_percent(float(np.mean(term_counts == 1))), "71.3%"),
        (f"terms on <= {threshold} peers (1%)",
         format_percent(float(np.mean(term_counts <= threshold))), "98.3% (<=0.1%)"),
    ]
    print()
    print(
        format_table(
            ["metric", "measured", "paper"],
            gnutella_rows,
            title="T-ANNOT: Gnutella (April 2007 analog, scaled)",
        )
    )

    itunes_rows = []
    for field, values in (
        ("song", itunes.song_ids),
        ("genre", itunes.genre_ids),
        ("album", itunes.album_ids),
        ("artist", itunes.artist_ids),
    ):
        counts = itunes.clients_per_value(values)
        counts = counts[counts > 0]
        itunes_rows.append(
            (field, f"{counts.size:,}", format_percent(float(np.mean(counts == 1))))
        )
    print(
        format_table(
            ["field", "uniques", "single-client"],
            itunes_rows,
            title="T-ANNOT: iTunes (239 users)",
        )
    )

    assert s.singleton_fraction > 0.6
    assert np.mean(term_counts <= threshold) > 0.75
