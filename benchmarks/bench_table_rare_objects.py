"""T-RARE — Loo et al. rare-object classification (§VI).

Paper: "fewer than 4% of the objects in the system are replicated on
20 or more peers" — so almost every query is "rare" by the hybrid
literature's own definition, defeating the flood phase.
"""

from __future__ import annotations

from repro.analysis.replication import replication_table, summarize_replication
from repro.core.reporting import format_percent, format_table


def test_rare_object_fraction(benchmark, bundle):
    trace = bundle.trace

    def run():
        return summarize_replication(trace.replica_counts(), trace.n_peers)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("objects on >= 20 peers (paper: <4%)",
         format_percent(summary.at_least_20_peers)),
        ("rare objects (Loo et al.)", format_percent(summary.rare_fraction())),
    ]
    print()
    print(format_table(["metric", "value"], rows, title="T-RARE: rare objects"))

    table = replication_table(trace.replica_counts(), trace.n_peers)
    print(
        format_table(
            ["replication ratio <=", "fraction of objects"],
            [(format_percent(r, 3), format_percent(f)) for r, f in table],
            title="Replication-ratio CDF (Gia comparison, §VI)",
        )
    )

    assert summary.at_least_20_peers < 0.04
