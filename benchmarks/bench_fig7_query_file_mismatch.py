"""FIG7 — Jaccard similarity of popular query terms vs popular file terms.

Paper Fig. 7: per-interval Jaccard between the interval's query terms
and the popular file-annotation terms stays under 20% for every
interval; overall similarity ~15%.  This is the paper's central
mismatch finding.
"""

from __future__ import annotations

import numpy as np

from repro.core.mismatch import run_mismatch_analysis
from repro.core.reporting import format_percent, format_series, format_table


def test_fig7_query_vs_file_term_similarity(benchmark, bundle, content):
    def run():
        return run_mismatch_analysis(bundle, content=content)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    series = report.file_similarity_timeline

    idx = np.arange(0, series.size, 12)
    print()
    print(
        format_series(
            idx.tolist(),
            series[idx],
            x_label="interval (h)",
            y_label="Jaccard(Q_t, F*)",
            title="FIG7: query terms vs popular file terms (60-min intervals)",
        )
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("max over intervals (paper: <20%)", format_percent(report.max_file_similarity)),
                ("mean over intervals", format_percent(float(np.mean(series)))),
                ("overall top-100 similarity (paper: ~15%)",
                 format_percent(report.overall_similarity)),
            ],
        )
    )

    assert report.max_file_similarity < 0.20
    assert report.overall_similarity < 0.20
