"""T-REACH — Mean flood reach per TTL (§V text table).

Paper: "For each of the TTL values of 1, 2, 3, 4 and 5, on average the
query reached 0.05%, ..., 26.25% and 82.95% of the peers" (the TTL 2-3
entries are illegible in the archived copy; TTL 3 is bounded by the
"over a thousand nodes" remark).
"""

from __future__ import annotations

from repro.core.reach import PAPER_REACH, ReachConfig, measure_reach
from repro.core.reporting import format_percent, format_table


def test_ttl_reach_table(benchmark):
    def run():
        return measure_reach(ReachConfig(n_sources=40))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for ttl, frac, nodes in result.as_rows():
        paper = format_percent(PAPER_REACH[ttl]) if ttl in PAPER_REACH else "(illegible)"
        rows.append((ttl, format_percent(frac), f"{nodes:,.0f}", paper))
    print()
    print(
        format_table(
            ["TTL", "measured reach", "nodes", "paper"],
            rows,
            title="T-REACH: mean flood reach, 40,000-node calibrated topology",
        )
    )

    fr = dict(zip(result.ttls, result.fractions))
    assert abs(fr[1] - PAPER_REACH[1]) < PAPER_REACH[1]  # same order of magnitude
    assert abs(fr[4] - PAPER_REACH[4]) < 0.10
    assert abs(fr[5] - PAPER_REACH[5]) < 0.12
    assert fr[3] * result.n_nodes > 1_000
