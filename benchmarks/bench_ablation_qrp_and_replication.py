"""A-QRP / A-REPL — Deployed and theoretical mitigations, measured.

Two mechanisms the literature offers against the paper's findings:

* **QRP** (deployed in Gnutella 0.6): hash-table summaries prune the
  ultrapeer->leaf hop.  Saves messages but cannot fix success rates —
  it only skips leaves that would not have answered anyway.
* **Square-root replication** (Cohen & Shenker): the optimal replica
  allocation for random-probe search.  It needs *query* rates; feeding
  it file popularity under the measured query/file mismatch forfeits
  most of the benefit — the paper's position, in replication form.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.overlay.qrp import QrpTables, qrp_flood_batch
from repro.overlay.replication import allocate_replicas, expected_search_size
from repro.overlay.topology import two_tier_gnutella
from repro.utils.rng import make_rng
from repro.utils.zipf import zipf_weights


def test_qrp_message_savings(benchmark, bundle, content):
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=13)
    tables = QrpTables(content)
    workload = bundle.workload
    rng = make_rng(13)

    def run():
        n_up = int(topology.forwards.sum())
        picks = rng.integers(0, workload.n_queries, size=40)
        queries = []
        sources = np.empty(picks.size, dtype=np.int64)
        for i, qi in enumerate(picks):
            queries.append(workload.query_words(int(qi)))
            sources[i] = int(rng.integers(0, n_up))
        out = qrp_flood_batch(topology, tables, sources, queries, ttl=3)
        return float(out.savings.mean()), float(out.false_positive_deliveries.mean())

    mean_savings, mean_fp = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("mean message savings over plain flood", format_percent(mean_savings)),
                ("mean false-positive leaf deliveries", f"{mean_fp:.1f}"),
            ],
            title="A-QRP: last-hop pruning on the real query workload",
        )
    )
    # Real queries mostly miss, so QRP prunes most of the prunable
    # (ultrapeer->leaf) traffic; ultrapeer-ultrapeer messages remain.
    assert mean_savings > 0.2


def test_replication_policies_under_mismatch(benchmark):
    n_objects, n_nodes, budget = 300, 10_000, 3_000
    query_w = zipf_weights(n_objects, 1.0)
    rng = make_rng(7)
    file_w = query_w[rng.permutation(n_objects)]  # the measured mismatch

    def run():
        rows = {}
        for label, weights in (("query rates (oracle)", query_w), ("file popularity", file_w)):
            for policy in ("uniform", "proportional", "square-root"):
                counts = allocate_replicas(weights, budget, policy)
                rows[(label, policy)] = expected_search_size(counts, query_w, n_nodes)
        return rows

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        (label, policy, f"{size:.0f}")
        for (label, policy), size in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["allocation input", "policy", "expected probes per query"],
            table,
            title="A-REPL: optimal replication needs query rates, not file popularity",
        )
    )

    oracle = results[("query rates (oracle)", "square-root")]
    mismatched = results[("file popularity", "square-root")]
    uniform = results[("query rates (oracle)", "uniform")]
    assert oracle < uniform  # sqrt replication beats uniform
    assert mismatched > 1.5 * oracle  # mismatch forfeits most of the gain
