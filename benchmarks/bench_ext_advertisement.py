"""X-ASAP — Advertisement-based search (§VI ref [21]) under the mismatch.

ASAP pushes capacity-limited content summaries to random peers so
queries resolve locally.  Sweep of the selection policy × ad capacity:
query-centric ad selection beats content-centric at every capacity,
and the gap widens exactly when capacity is scarce — the same lesson
as synopses, on the push side.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.overlay.advertisement import AdvertisementConfig, simulate_advertisement


def test_advertisement_policies(benchmark, bundle, content):
    def run():
        out = {}
        for capacity in (8, 16, 32):
            for policy in ("content", "query"):
                out[(capacity, policy)] = simulate_advertisement(
                    bundle.workload,
                    content,
                    AdvertisementConfig(policy=policy, ad_capacity=capacity),
                    max_queries=1_500,
                    seed=4,
                )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for capacity in (8, 16, 32):
        c = reports[(capacity, "content")]
        q = reports[(capacity, "query")]
        rows.append(
            (
                str(capacity),
                format_percent(c.local_hit_rate),
                format_percent(q.local_hit_rate),
                format_percent(q.precision),
            )
        )
    print()
    print(
        format_table(
            ["ad capacity (terms)", "content-centric hits", "query-centric hits", "precision"],
            rows,
            title="X-ASAP: advertisement selection policy vs local hit rate",
        )
    )

    for capacity in (8, 16, 32):
        assert (
            reports[(capacity, "query")].local_hit_rate
            > reports[(capacity, "content")].local_hit_rate
        )
    # Scarcer capacity makes the policy matter more.
    gap8 = (
        reports[(8, "query")].local_hit_rate - reports[(8, "content")].local_hit_rate
    )
    gap32 = (
        reports[(32, "query")].local_hit_rate - reports[(32, "content")].local_hit_rate
    )
    assert gap8 > gap32