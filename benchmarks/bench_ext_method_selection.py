"""X-SELECT — Learned flood-vs-DHT selection (§VI ref [20], GAB-style).

A selector that learns per-term flood success online is compared with
always-flood, always-DHT and the oracle on the same query replay.
Under the measured workload the learned policy converges to the DHT
for nearly every query — GAB's machinery reaching the paper's §VII
conclusion on its own.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_table
from repro.dht.chord import ChordRing
from repro.dht.keyword_index import KeywordIndex
from repro.hybrid.selection import MethodSelector, SelectionStats
from repro.overlay.content import SharedContentIndex
from repro.overlay.network import UnstructuredNetwork
from repro.overlay.topology import two_tier_gnutella
from repro.utils.rng import make_rng


def test_learned_method_selection(benchmark, bundle, content):
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=17)
    network = UnstructuredNetwork(topology, content)
    ring = ChordRing(content.n_peers, seed=17)
    index = KeywordIndex(ring, content)
    workload = bundle.workload
    rng = make_rng(17)
    n_up = int(topology.forwards.sum())
    n_queries = 400
    picks = rng.integers(0, workload.n_queries, size=n_queries)
    sources = rng.integers(0, n_up, size=n_queries)
    queries = [workload.query_words(int(qi)) for qi in picks]

    def run():
        # Pre-compute per-query outcomes for both methods once; the
        # flood side is one batched-engine pass.
        flood = network.query_batch(sources, queries, ttl=3)
        flood_ok = flood.success
        flood_msgs = flood.messages.astype(np.float64)
        dht_ok = np.zeros(n_queries, dtype=bool)
        dht_msgs = np.zeros(n_queries)
        for i, src in enumerate(sources):
            d = index.query(queries[i], int(src), intersection="bloom")
            dht_ok[i], dht_msgs[i] = d.succeeded, d.messages

        def stats(name, use_flood: np.ndarray) -> SelectionStats:
            ok = np.where(use_flood, flood_ok, dht_ok)
            msgs = np.where(use_flood, flood_msgs, dht_msgs)
            return SelectionStats(
                name=name,
                success_rate=float(ok.mean()),
                mean_messages=float(msgs.mean()),
                flood_fraction=float(use_flood.mean()),
            )

        always_flood = stats("always flood (TTL 3)", np.ones(n_queries, dtype=bool))
        always_dht = stats("always DHT", np.zeros(n_queries, dtype=bool))
        # Oracle: flood only when it both succeeds and is cheaper.
        oracle_mask = flood_ok & (flood_msgs <= dht_msgs)
        oracle = stats("oracle", oracle_mask)
        # Learned selector (online, in replay order).
        selector = MethodSelector(workload.config.vocab_size)
        learned_mask = np.zeros(n_queries, dtype=bool)
        for i, qi in enumerate(picks):
            terms = workload.query_terms(int(qi))
            if selector.choose(terms) == "flood":
                learned_mask[i] = True
                selector.observe(terms, bool(flood_ok[i]))
        learned = stats("learned (GAB-style)", learned_mask)
        quarter = n_queries // 4
        trend = (
            float(learned_mask[:quarter].mean()),
            float(learned_mask[-quarter:].mean()),
        )
        return [always_flood, always_dht, learned, oracle], trend

    results, trend = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["strategy", "success", "messages/query", "flood fraction"],
            [s.as_row() for s in results],
            title="X-SELECT: learned flood-vs-DHT selection on real queries",
        )
    )
    print(
        f"learned flood fraction: {trend[0]:.2f} in the first quarter -> "
        f"{trend[1]:.2f} in the last quarter"
    )

    always_flood, always_dht, learned, oracle = results
    # Learning converges toward the DHT under the mismatch...
    assert trend[1] < trend[0]
    assert trend[1] < 0.5
    # ...and ends up far cheaper than always flooding,
    assert learned.mean_messages < 0.8 * always_flood.mean_messages
    # without giving up success relative to the better static policy.
    assert learned.success_rate >= min(always_flood.success_rate, always_dht.success_rate)