"""T-MAINT — Total cost of ownership: maintenance + queries, both overlays.

The fair version of the §VII comparison: the DHT pays churn
maintenance the unstructured overlay partly avoids, and with an
aggressive stabilization period that upkeep can dominate everything.
The sweep locates the pivot: at deployment-realistic stabilization
periods (minutes, as Kad/BitTorrent DHTs use) the DHT's total traffic
is far below the flood's, because the flood's per-query cost is three
orders of magnitude higher.
"""

from __future__ import annotations

from repro.core.reporting import format_table
from repro.dht.maintenance import (
    chord_maintenance,
    churn_event_rate,
    unstructured_maintenance,
)
from repro.overlay.churn import ChurnConfig, ChurnTimeline


def test_total_cost_of_ownership(benchmark):
    n_nodes = 40_000
    # Per-query costs measured by T-COST; the paper's query volume.
    flood_cost_ttl3 = 960.0
    dht_query_cost = 22.0
    queries_per_hour = 15_000.0  # ~2.5M/week

    def run():
        timeline = ChurnTimeline(
            ChurnConfig(n_peers=n_nodes, mean_session_s=3_600.0, seed=3)
        )
        joins, leaves = churn_event_rate(timeline)
        unstructured = unstructured_maintenance(n_nodes, joins, leaves)
        flood_total = (
            unstructured.total_per_hour + queries_per_hour * flood_cost_ttl3
        )
        sweep = {}
        for period in (30.0, 120.0, 600.0, 1_800.0):
            chord = chord_maintenance(
                n_nodes, joins, leaves, stabilize_period_s=period
            )
            sweep[period] = chord.total_per_hour + queries_per_hour * dht_query_cost
        return joins, flood_total, sweep

    joins, flood_total, sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"DHT, stabilize every {period:,.0f}s",
            f"{total:,.0f}",
            f"{total / flood_total:.2f}x",
        )
        for period, total in sorted(sweep.items())
    ]
    rows.append(("unstructured + TTL-3 floods", f"{flood_total:,.0f}", "1.00x"))
    print()
    print(
        format_table(
            ["configuration", "total msgs/hour", "vs flood system"],
            rows,
            title=(
                f"T-MAINT: maintenance + query traffic "
                f"(40,000 nodes, 1h sessions, {joins:,.0f} churn events/h, "
                "15k queries/h)"
            ),
        )
    )

    # An over-aggressive 30s stabilization lets upkeep dominate — the
    # honest caveat to the §VII claim...
    assert sweep[30.0] > flood_total
    # ...but at deployment-realistic periods the DHT wins decisively,
    # because the flood's per-query cost is ~45x the DHT's.
    assert sweep[600.0] < 0.5 * flood_total
    assert sweep[1_800.0] < sweep[600.0] < sweep[120.0] < sweep[30.0]