"""X-CLUSTER — Semantic clustering vs the query/file mismatch.

The eDonkey clustering literature (related-work thread of the paper)
links library-similar peers so that a peer's *demands* — which follow
content popularity — resolve within its neighborhood.  Reproduced
here, clustering indeed multiplies the neighborhood hit rate for
content-driven demands; but for the paper's *query workload*, whose
terms barely overlap the annotations, neighborhood content is the
wrong target entirely — clustering optimizes the case the measured
queries don't exercise.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.overlay.content import SharedContentIndex
from repro.overlay.semantic_cluster import (
    library_similarity_topk,
    neighborhood_hit_rate,
    semantic_rewire,
)
from repro.overlay.topology import flat_random
from repro.utils.rng import make_rng


def test_semantic_clustering(benchmark, bundle, content):
    trace = bundle.trace
    topo = flat_random(trace.n_peers, 5.0, seed=21)

    def run():
        similar = library_similarity_topk(trace, k=5)
        clustered = semantic_rewire(topo, similar, n_links=3)
        base_demand = neighborhood_hit_rate(topo, trace, n_samples=400, seed=2)
        clus_demand = neighborhood_hit_rate(clustered, trace, n_samples=400, seed=2)
        # Query-workload view: fraction of real queries resolvable in a
        # random peer's 1-hop neighborhood, clustered or not.
        rng = make_rng(2)
        workload = bundle.workload

        def query_neighborhood_rate(t) -> float:
            wins = 0
            n = 300
            for qi in rng.integers(0, workload.n_queries, size=n):
                words = workload.query_words(int(qi))
                peers = content.matching_peers(words)
                if peers.size == 0:
                    continue
                src = int(rng.integers(0, trace.n_peers))
                hood = set(t.neighbors_of(src).tolist()) | {src}
                wins += bool(hood & set(int(p) for p in peers))
            return wins / n

        base_query = query_neighborhood_rate(topo)
        clus_query = query_neighborhood_rate(clustered)
        return base_demand, clus_demand, base_query, clus_query

    base_d, clus_d, base_q, clus_q = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["workload", "random topology", "semantically clustered"],
            [
                ("content demands (what clustering targets)",
                 format_percent(base_d), format_percent(clus_d)),
                ("real query workload (what users send)",
                 format_percent(base_q), format_percent(clus_q)),
            ],
            title="X-CLUSTER: neighborhood resolution rates",
        )
    )

    assert clus_d > 1.5 * base_d  # clustering works for content demands
    # ...but buys little for the mismatched query workload.
    assert clus_q - base_q < 0.5 * (clus_d - base_d)
