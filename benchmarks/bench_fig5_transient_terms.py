"""FIG5 — Transiently popular query terms vs time, per interval length.

Paper Fig. 5: the number of terms deviating sharply from their
historical rate, tracked at several evaluation intervals.  Headline:
low mean, significant variance.
"""

from __future__ import annotations

from repro.core.mismatch import MismatchConfig, run_mismatch_analysis
from repro.core.reporting import format_table


def test_fig5_transient_term_counts(benchmark, bundle, content):
    def run():
        return run_mismatch_analysis(bundle, MismatchConfig(), content=content)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for interval_s, counts in sorted(report.transient_counts.items()):
        rows.append(
            (
                f"{interval_s / 60:.0f} min",
                f"{counts.mean():.2f}",
                f"{counts.var():.2f}",
                int(counts.max()),
                counts.size,
            )
        )
    print()
    print(
        format_table(
            ["interval", "mean", "variance", "max", "n intervals"],
            rows,
            title="FIG5: transiently popular terms per evaluation interval",
        )
    )

    for counts in report.transient_counts.values():
        assert counts.mean() < 10  # "the overall mean was low"
    primary = report.transient_counts[report.config.primary_interval_s]
    assert primary.var() > 0.2  # "significant variance"
