"""T-STRAT — Every search strategy, one identical replay.

The replay engine runs plain flooding, expanding ring, random walks,
DHT lookups (naive and Bloom) and the hybrid over the same query and
source sample, producing the §V comparison as one table.
"""

from __future__ import annotations

import numpy as np

from repro.core.replay import (
    DhtStrategy,
    ExpandingRingStrategy,
    FloodStrategy,
    HybridStrategy,
    WalkStrategy,
    replay,
)
from repro.core.reporting import format_table
from repro.dht.chord import ChordRing
from repro.dht.keyword_index import KeywordIndex
from repro.hybrid.search import HybridSearch
from repro.overlay.network import UnstructuredNetwork
from repro.overlay.topology import two_tier_gnutella


def test_strategy_comparison(benchmark, bundle, content):
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=23)
    network = UnstructuredNetwork(topology, content)
    ring = ChordRing(content.n_peers, seed=23)
    index = KeywordIndex(ring, content)
    ultrapeers = np.flatnonzero(topology.forwards)

    def run():
        strategies = [
            FloodStrategy(network, ttl=3),
            ExpandingRingStrategy(network, ttl_schedule=(1, 2, 3)),
            WalkStrategy(network, walkers=16, ttl=64, seed=23),
            DhtStrategy(index, intersection="ship-postings"),
            DhtStrategy(index, intersection="bloom"),
            HybridStrategy(HybridSearch(network, index, flood_ttl=3)),
        ]
        return replay(
            bundle, strategies, n_queries=60, source_pool=ultrapeers, seed=23
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["strategy", "queries", "success", "fallback", "mean msgs", "p50", "p95"],
            [s.as_row() for s in results],
            title="T-STRAT: identical replay across strategies",
        )
    )

    by_name = {s.name: s for s in results}
    bloom = by_name["DHT (bloom)"]
    naive = by_name["DHT (ship-postings)"]
    hybrid = next(s for n, s in by_name.items() if n.startswith("hybrid"))
    flood = by_name["flood (TTL 3)"]
    # Identical result sets, cheaper transport.
    assert bloom.success_rate == naive.success_rate
    assert bloom.mean_messages <= naive.mean_messages
    # The hybrid can't beat the DHT's success and pays the flood on top.
    assert hybrid.success_rate >= flood.success_rate
    assert hybrid.mean_messages > bloom.mean_messages