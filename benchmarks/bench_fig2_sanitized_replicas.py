"""FIG2 — Clients with each object after name sanitization.

Paper Fig. 2: the same replica distribution after lower-casing and
stripping special characters.  The paper's point: sanitization barely
helps (8.1M -> 7.9M uniques; 70.5% -> 69.8% singletons) because most
variants differ at the term level.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.analysis.tokenize import sanitize_name
from repro.core.reporting import format_percent, format_table


def test_fig2_sanitized_replica_distribution(benchmark, bundle):
    trace = bundle.trace

    def run():
        # Map every observed name id to its sanitized form, then
        # recount clients per sanitized name.
        names = trace.names.strings()
        sanitized_id: dict[str, int] = {}
        remap = np.empty(len(names), dtype=np.int64)
        for i, n in enumerate(names):
            s = sanitize_name(n)
            remap[i] = sanitized_id.setdefault(s, len(sanitized_id))
        counts = trace.replica_counts(remap[trace.name_ids])
        return counts[counts > 0], len(sanitized_id)

    (counts, n_sanitized) = benchmark.pedantic(run, rounds=1, iterations=1)
    raw_counts = trace.replica_counts()
    raw_counts = raw_counts[raw_counts > 0]
    summary = summarize_replication(counts, trace.n_peers)

    rows = [
        ("unique raw names", f"{raw_counts.size:,}"),
        ("unique sanitized names", f"{counts.size:,}"),
        ("uniques recovered (paper: ~2.5%)",
         format_percent(1 - counts.size / raw_counts.size)),
        ("singleton fraction raw (paper: 70.5%)",
         format_percent(float(np.mean(raw_counts == 1)))),
        ("singleton fraction sanitized (paper: 69.8%)",
         format_percent(summary.singleton_fraction)),
    ]
    print()
    print(format_table(["metric", "value"], rows, title="FIG2: sanitized names"))

    # Sanitization must not collapse the distribution.
    assert counts.size > 0.85 * raw_counts.size
    assert summary.singleton_fraction > 0.6
