"""FIG4 — iTunes annotation popularity: songs, genres, albums, artists.

Paper Fig. 4(a-d): clients-per-value distributions for each annotation
field over the campus DAAP trace, all Zipf-like.  Prints the per-field
uniques, singleton fractions and fitted exponents next to the paper's
values.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.zipf_fit import fit_zipf
from repro.core.reporting import format_percent, format_table

PAPER = {
    "song": ("152,850", "64%"),
    "genre": ("1,452", "56%"),
    "album": ("32,353", "65.7%"),
    "artist": ("25,309", "65%"),
}


def test_fig4_itunes_annotation_distributions(benchmark, itunes):
    def run():
        out = {}
        for field, values in (
            ("song", itunes.song_ids),
            ("genre", itunes.genre_ids),
            ("album", itunes.album_ids),
            ("artist", itunes.artist_ids),
        ):
            counts = itunes.clients_per_value(values)
            out[field] = counts[counts > 0]
        return out

    dists = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for field, counts in dists.items():
        fit = fit_zipf(counts)
        paper_n, paper_single = PAPER[field]
        rows.append(
            (
                field,
                f"{counts.size:,}",
                paper_n,
                format_percent(float(np.mean(counts == 1))),
                paper_single,
                f"{fit.exponent:.2f}",
            )
        )
    print()
    print(
        format_table(
            ["field", "uniques", "paper uniques", "singletons", "paper", "zipf s"],
            rows,
            title="FIG4: iTunes annotations (default scale: 239 users, ~186k objects)",
        )
    )
    print(
        format_table(
            ["field", "missing fraction", "paper"],
            [
                ("genre", format_percent(itunes.missing_fraction(itunes.genre_ids)), "8.7%"),
                ("album", format_percent(itunes.missing_fraction(itunes.album_ids)), "8.1%"),
            ],
        )
    )

    for counts in dists.values():
        assert fit_zipf(counts).exponent > 0.3
    assert np.mean(dists["song"] == 1) > 0.5
