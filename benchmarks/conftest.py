"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the experiment index) and prints the rows/series the
paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

Expensive inputs are session-scoped; each bench times only its own
experiment via ``benchmark.pedantic(..., rounds=1)`` because these are
end-to-end experiment regenerations, not microbenchmarks.
"""

from __future__ import annotations

import json
import os
import resource
import sys
from pathlib import Path

import pytest

from repro.core.experiment import TraceBundle, build_content_index, build_trace_bundle
from repro.overlay.content import SharedContentIndex
from repro.tracegen import presets
from repro.tracegen.catalog import MusicCatalog
from repro.tracegen.itunes_trace import ITunesShareTrace


def peak_rss_bytes() -> int:
    """Process-lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is a high-water mark: it only ever grows, so a value
    recorded after a benchmark bounds that benchmark's footprint from
    above (plus whatever ran before it).  Linux reports KiB, macOS
    bytes.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Write the unified ``BENCH_perf.json`` after a benchmark run.

    One artifact joins the pytest-benchmark timing stats with the
    process metrics registry (cache hit rates, flood message totals,
    pmap tallies) accumulated while the benches ran, so a perf
    regression can be attributed — e.g. "mean time doubled *and* the
    flood cache stopped hitting".  Skipped when no benchmarks ran
    (plain test sessions never see this hook: ``testpaths`` excludes
    ``benchmarks/``).  Set ``REPRO_BENCH_OUT`` to change the path.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    from repro.obs import metrics

    rows = []
    for bench in benchmarks:
        try:
            row = bench.as_dict(include_data=False, flat=False, stats=True)
        except (AttributeError, TypeError):  # third-party shape drift
            row = {"fullname": getattr(bench, "fullname", "?")}
        rows.append(row)
    doc = {
        "schema": "repro-bench/1",
        "exitstatus": int(exitstatus),
        "benchmarks": rows,
        "metrics": metrics().snapshot().as_dict(),
        # Session-wide memory high-water mark, the measured counterpart
        # of the static bytes-per-node prediction in lint/mem-budget.json
        # (see docs/performance.md, "Memory budget").
        "peak_rss_bytes": peak_rss_bytes(),
    }
    out = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_perf.json"))
    out.write_text(json.dumps(doc, indent=2, sort_keys=True))


@pytest.fixture(scope="session")
def bundle() -> TraceBundle:
    return build_trace_bundle()


@pytest.fixture(scope="session")
def content(bundle: TraceBundle) -> SharedContentIndex:
    return build_content_index(bundle.trace)


@pytest.fixture(scope="session")
def itunes() -> ITunesShareTrace:
    catalog = MusicCatalog(presets.CATALOG_ITUNES)
    return ITunesShareTrace(catalog, presets.ITUNES_DEFAULT)
