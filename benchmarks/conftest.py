"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md §4 for the experiment index) and prints the rows/series the
paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

Expensive inputs are session-scoped; each bench times only its own
experiment via ``benchmark.pedantic(..., rounds=1)`` because these are
end-to-end experiment regenerations, not microbenchmarks.
"""

from __future__ import annotations

import pytest

from repro.core.experiment import TraceBundle, build_content_index, build_trace_bundle
from repro.overlay.content import SharedContentIndex
from repro.tracegen import presets
from repro.tracegen.catalog import MusicCatalog
from repro.tracegen.itunes_trace import ITunesShareTrace


@pytest.fixture(scope="session")
def bundle() -> TraceBundle:
    return build_trace_bundle()


@pytest.fixture(scope="session")
def content(bundle: TraceBundle) -> SharedContentIndex:
    return build_content_index(bundle.trace)


@pytest.fixture(scope="session")
def itunes() -> ITunesShareTrace:
    catalog = MusicCatalog(presets.CATALOG_ITUNES)
    return ITunesShareTrace(catalog, presets.ITUNES_DEFAULT)
