"""X-SHORTCUT — Interest-based shortcuts under the measured workload.

A query-driven overlay mechanism from the paper's era: requesters keep
shortcuts to peers that answered before.  The temporal structure the
paper measures determines its value — the persistent core and repeated
burst terms shortcut well; the long tail cannot.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.overlay.shortcuts import ShortcutConfig, simulate_shortcuts


def test_interest_shortcuts(benchmark, bundle, content):
    workload = bundle.workload

    def run():
        out = {}
        for n_req in (10, 50, 200):
            out[n_req] = simulate_shortcuts(
                workload,
                content,
                ShortcutConfig(capacity=10, probe_budget=5),
                n_requesters=n_req,
                max_queries=20_000,
                seed=1,
            )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            str(n_req),
            format_percent(r.shortcut_hit_rate),
            format_percent(r.hit_rate_persistent),
            format_percent(r.hit_rate_transient),
            f"{r.mean_probes_on_hit:.1f}",
        )
        for n_req, r in sorted(reports.items())
    ]
    print()
    print(
        format_table(
            ["requesters", "shortcut hit rate", "persistent", "transient", "probes/hit"],
            rows,
            title="X-SHORTCUT: interest-based shortcuts (20k queries, 10-entry lists)",
        )
    )

    r = reports[50]
    assert r.shortcut_hit_rate > 0.2  # interest locality is real
    assert r.hit_rate_transient > r.hit_rate_persistent  # bursts repeat hardest
    # Thinner per-requester streams shortcut worse.
    assert reports[10].shortcut_hit_rate > reports[200].shortcut_hit_rate
