"""A-IDENTITY — Name-based vs hash-based object identity.

The paper identifies Gnutella objects by their *name strings* and
observes massive uniqueness inflation from spelling variants; eDonkey
(Fessant et al., §VI) identifies objects by content hash, which the
trace's ground-truth song ids model exactly.  Comparing replica
statistics under both identities separates what the Zipf popularity
does from what the naming noise does — and shows the paper's Zipf
conclusion survives either identity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.analysis.zipf_fit import fit_zipf
from repro.core.reporting import format_percent, format_table


def test_object_identity_ablation(benchmark, bundle):
    trace = bundle.trace

    def run():
        by_name = trace.replica_counts()
        by_hash = trace.replica_counts(trace.song_ids)
        return (
            summarize_replication(by_name, trace.n_peers),
            summarize_replication(by_hash, trace.n_peers),
            fit_zipf(by_name[by_name > 0]),
            fit_zipf(by_hash[by_hash > 0]),
        )

    name_s, hash_s, name_fit, hash_fit = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            "unique objects",
            f"{name_s.n_objects:,}",
            f"{hash_s.n_objects:,}",
        ),
        (
            "singleton fraction",
            format_percent(name_s.singleton_fraction),
            format_percent(hash_s.singleton_fraction),
        ),
        (
            "mean replicas",
            f"{name_s.mean_replicas:.2f}",
            f"{hash_s.mean_replicas:.2f}",
        ),
        (
            "objects on >= 20 peers",
            format_percent(name_s.at_least_20_peers),
            format_percent(hash_s.at_least_20_peers),
        ),
        ("Zipf exponent", f"{name_fit.exponent:.2f}", f"{hash_fit.exponent:.2f}"),
    ]
    print()
    print(
        format_table(
            ["metric", "name identity (Gnutella)", "hash identity (eDonkey-style)"],
            rows,
            title="A-IDENTITY: what naming noise adds on top of Zipf popularity",
        )
    )

    # Naming noise inflates uniqueness and starves replication...
    assert name_s.n_objects > hash_s.n_objects
    assert name_s.mean_replicas < hash_s.mean_replicas
    # ...but the heavy tail is there under either identity (the paper's
    # point stands even for hash-identified systems like eDonkey).
    assert hash_s.singleton_fraction > 0.3
    assert hash_fit.exponent > 0.3
    assert hash_s.at_least_20_peers < 0.05