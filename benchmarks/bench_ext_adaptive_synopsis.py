"""X-SYN — The adaptive-synopsis extension (§VII, ref [9]).

The paper's proposed direction: query-centric, transient-aware content
synopses.  Compares four synopsis-selection policies at an identical
message budget; the query-centric policies must beat the
content-centric one, and the adaptive policy must win on transient
queries.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.core.synopsis import SynopsisConfig, run_synopsis_experiment


def test_adaptive_synopsis_policies(benchmark, bundle, content):
    def run():
        return run_synopsis_experiment(
            bundle, SynopsisConfig(n_queries=800), content=content
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for o in result.outcomes:
        rows.append(
            (
                o.policy,
                format_percent(o.success_rate),
                format_percent(o.success_transient),
                format_percent(o.success_persistent),
                f"{o.mean_messages:.0f}",
                f"{o.mean_hops_to_hit:.1f}",
            )
        )
    print()
    print(
        format_table(
            ["policy", "success", "transient", "persistent", "msgs", "hops-to-hit"],
            rows,
            title=(
                f"X-SYN: synopsis policies ({result.n_queries} queries, "
                f"budget {result.walk_budget} msgs)"
            ),
        )
    )

    content_c = result.outcome("content")
    static_q = result.outcome("static-query")
    adaptive = result.outcome("adaptive")
    assert static_q.success_rate > content_c.success_rate
    assert adaptive.success_transient > static_q.success_transient
    assert adaptive.success_rate >= static_q.success_rate - 0.02
