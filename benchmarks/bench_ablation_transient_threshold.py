"""A-THRESH — Sensitivity of transient detection to the deviation threshold.

DESIGN.md §5: the paper defines transiently popular terms as those
"deviating significantly from their historical average" without fixing
the threshold.  This sweep shows the Fig. 5 qualitative findings (low
mean, detectable bursts) are robust across a wide threshold range, and
quantifies precision/recall against the generator's ground truth.
"""

from __future__ import annotations

from repro.analysis.temporal import detect_transient_terms, interval_term_counts
from repro.core.reporting import format_table


def test_transient_threshold_sensitivity(benchmark, bundle):
    workload = bundle.workload
    intervals = interval_term_counts(
        workload.timestamps,
        workload.term_offsets,
        workload.term_ids,
        n_terms=workload.config.vocab_size,
        interval_s=3600.0,
        duration_s=workload.config.duration_s,
    )
    truth = {b.vocab_rank for b in workload.bursts}

    def run():
        out = {}
        for z in (3.0, 6.0, 9.0, 12.0):
            report = detect_transient_terms(intervals, z_threshold=z)
            flagged = report.all_flagged()
            recall = len(flagged & truth) / max(1, len(truth))
            precision = len(flagged & truth) / max(1, len(flagged))
            out[z] = (report.counts.mean(), recall, precision)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (z, f"{mean:.2f}", f"{recall:.2f}", f"{precision:.2f}")
        for z, (mean, recall, precision) in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["z threshold", "mean transients/interval", "recall", "precision"],
            rows,
            title="A-THRESH: transient-detection threshold sweep (60-min intervals)",
        )
    )

    for mean, recall, _ in results.values():
        assert mean < 10  # Fig. 5's "low mean" is threshold-robust
    assert results[6.0][1] > 0.7  # default threshold finds the bursts
    assert results[3.0][1] >= results[12.0][1]  # recall shrinks with z
