"""PERF — Microbenchmarks of the numeric hot paths.

Unlike the experiment benches (single-shot regenerations), these are
real repeated-measurement microbenchmarks of the kernels everything
else is built on — the pieces the hpc-parallel guidance says to keep
vectorized.  Regressions here slow every experiment, so they get
dedicated timings: Zipf sampling, replica counting, flooding, Bloom
probing and Chord routing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.overlay.flooding import flood_depths
from repro.overlay.topology import two_tier_gnutella
from repro.utils.bloom import BloomFilter
from repro.utils.rng import make_rng
from repro.utils.zipf import ZipfDistribution


@pytest.fixture(scope="module")
def zipf_dist():
    return ZipfDistribution(1_000_000, 1.0)


def test_perf_zipf_sampling(benchmark, zipf_dist):
    """1M-rank inverse-CDF sampling, 100k draws per round."""
    rng = make_rng(0)
    out = benchmark(zipf_dist.sample, 100_000, rng)
    assert out.size == 100_000


def test_perf_replica_counting(benchmark):
    """Distinct-holder counting over 1M (value, holder) pairs."""
    rng = make_rng(1)
    values = rng.integers(0, 200_000, size=1_000_000)
    holders = rng.integers(0, 40_000, size=1_000_000)

    from repro.analysis.popularity import clients_per_value

    counts = benchmark(clients_per_value, values, holders)
    assert counts.sum() > 0


def test_perf_flood_40k(benchmark):
    """Full-depth flood on the 40k-node Fig. 8 topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)

    def run():
        depth, _ = flood_depths(topo, 3, 5)
        return depth

    depth = benchmark(run)
    assert (depth >= 0).sum() > 1_000


def test_perf_flood_40k_lossy(benchmark):
    """Lossy flood (per-edge Bernoulli drops) on the 40k topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)
    rng = make_rng(4)

    def run():
        depth, _ = flood_depths(topo, 3, 5, p_loss=0.2, rng=rng)
        return depth

    depth = benchmark(run)
    assert (depth >= 0).sum() > 100


def test_perf_flood_success_curve(benchmark):
    """One Fig. 8 Zipf curve (30 objects) on an 8k-node topology."""
    from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
    from repro.core.flood_sim import PlacementSpec, run_flood_success

    topo = build_fig8_topology(Fig8TopologyConfig(n_nodes=8_000))

    curve = benchmark(
        run_flood_success,
        topo,
        PlacementSpec(),
        n_eval_objects=30,
        seed=0,
    )
    assert curve.success.size == 5


def test_perf_to_networkx(benchmark):
    """CSR-to-networkx export of the 40k-node topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)

    g = benchmark(topo.to_networkx)
    assert g.number_of_edges() == topo.n_edges


def test_perf_bloom_probe(benchmark):
    """100k membership probes against a 100k-capacity filter."""
    bf = BloomFilter.for_capacity(100_000, fp_rate=0.01)
    bf.add(np.arange(0, 200_000, 2))
    probes = np.arange(100_000)

    hits = benchmark(bf.contains, probes)
    assert hits.shape == (100_000,)


def test_perf_chord_lookup(benchmark):
    """Single Chord lookup on a 10k-node ring."""
    ring = ChordRing(10_000, seed=0)
    rng = make_rng(2)
    keys = rng.integers(0, 2**63, size=512, dtype=np.uint64)
    i = iter(range(1 << 30))

    def run():
        k = int(keys[next(i) % keys.size])
        return ring.lookup(k, 0).hops

    hops = benchmark(run)
    assert hops >= 0
