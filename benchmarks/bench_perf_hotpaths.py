"""PERF — Microbenchmarks of the numeric hot paths.

Unlike the experiment benches (single-shot regenerations), these are
real repeated-measurement microbenchmarks of the kernels everything
else is built on — the pieces the hpc-parallel guidance says to keep
vectorized.  Regressions here slow every experiment, so they get
dedicated timings: Zipf sampling, replica counting, flooding, Bloom
probing and Chord routing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import peak_rss_bytes

from repro.dht.chord import ChordRing
from repro.overlay.batch import BatchQueryEngine
from repro.overlay.content import intersect_postings, intersect_postings_batch
from repro.overlay.flooding import flood_depths
from repro.overlay.network import UnstructuredNetwork
from repro.overlay.topology import two_tier_gnutella
from repro.utils.bloom import BloomFilter
from repro.utils.rng import make_rng
from repro.utils.text import StringInterner
from repro.utils.zipf import ZipfDistribution


@pytest.fixture(autouse=True)
def _record_peak_rss(request):
    """Stamp the post-test RSS high-water mark next to each timing.

    ``ru_maxrss`` is monotone, so the per-test values are cumulative
    maxima — the interesting signal is the *jump* a kernel causes
    (e.g. the 40k flood suddenly allocating int64 scratch again).
    """
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is not None:
        benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()


@pytest.fixture(scope="module")
def zipf_dist():
    return ZipfDistribution(1_000_000, 1.0)


def test_perf_zipf_sampling(benchmark, zipf_dist):
    """1M-rank inverse-CDF sampling, 100k draws per round."""
    rng = make_rng(0)
    out = benchmark(zipf_dist.sample, 100_000, rng)
    assert out.size == 100_000


def test_perf_replica_counting(benchmark):
    """Distinct-holder counting over 1M (value, holder) pairs."""
    rng = make_rng(1)
    values = rng.integers(0, 200_000, size=1_000_000)
    holders = rng.integers(0, 40_000, size=1_000_000)

    from repro.analysis.popularity import clients_per_value

    counts = benchmark(clients_per_value, values, holders)
    assert counts.sum() > 0


def test_perf_flood_40k(benchmark):
    """Full-depth flood on the 40k-node Fig. 8 topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)

    def run():
        depth, _ = flood_depths(topo, 3, 5)
        return depth

    depth = benchmark(run)
    assert (depth >= 0).sum() > 1_000


def test_perf_flood_40k_lossy(benchmark):
    """Lossy flood (per-edge Bernoulli drops) on the 40k topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)
    rng = make_rng(4)

    def run():
        depth, _ = flood_depths(topo, 3, 5, p_loss=0.2, rng=rng)
        return depth

    depth = benchmark(run)
    assert (depth >= 0).sum() > 100


def test_perf_flood_success_curve(benchmark):
    """One Fig. 8 Zipf curve (30 objects) on an 8k-node topology."""
    from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
    from repro.core.flood_sim import PlacementSpec, run_flood_success

    topo = build_fig8_topology(Fig8TopologyConfig(n_nodes=8_000))

    curve = benchmark(
        run_flood_success,
        topo,
        PlacementSpec(),
        n_eval_objects=30,
        seed=0,
    )
    assert curve.success.size == 5


def test_perf_to_networkx(benchmark):
    """CSR-to-networkx export of the 40k-node topology."""
    topo = two_tier_gnutella(40_000, up_up_degree=8.0, seed=0)

    g = benchmark(topo.to_networkx)
    assert g.number_of_edges() == topo.n_edges


def test_perf_batched_replay_1k(benchmark, bundle, content):
    """1,000-query Zipf replay: batched engine vs per-query floods.

    The batched engine's acceptance bar: at least 5x the scalar
    throughput on a workload-scale replay (repeated Zipf queries from
    a bounded ultrapeer source pool).  Both paths share the content
    index's memoized match cache, so the comparison isolates what the
    engine actually adds: BFS dedup through the flood-depth cache and
    columnar evaluation.
    """
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=23)
    network = UnstructuredNetwork(topology, content)
    workload = bundle.workload
    rng = make_rng(23)
    n = 1_000
    picks = rng.integers(0, workload.n_queries, size=n)
    n_up = int(topology.forwards.sum())
    pool = rng.choice(n_up, size=64, replace=False)
    sources = pool[rng.integers(0, pool.size, size=n)]
    queries = [workload.query_words(int(q)) for q in picks]

    t0 = time.perf_counter()
    scalar = [
        network.query_flood(int(s), q, ttl=3) for s, q in zip(sources, queries)
    ]
    scalar_s = time.perf_counter() - t0

    def run():
        # A fresh engine per round: the speedup must not lean on BFS
        # results warmed by a previous measurement.
        engine = BatchQueryEngine(topology, content)
        return engine.evaluate(sources, queries, ttl_schedule=(3,))

    out = benchmark.pedantic(run, rounds=3, iterations=1)
    t0 = time.perf_counter()
    BatchQueryEngine(topology, content).evaluate(
        sources, queries, ttl_schedule=(3,)
    )
    batched_s = time.perf_counter() - t0

    # Bitwise equivalence with the scalar path, then the speed bar.
    for i in (0, n // 2, n - 1):
        assert bool(out.success[i]) == scalar[i].succeeded
        assert int(out.messages[i]) == scalar[i].messages
    speedup = scalar_s / batched_s
    benchmark.extra_info["scalar_s"] = round(scalar_s, 3)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 1)
    print(f"\n1k-query replay: scalar {scalar_s:.2f}s, "
          f"batched {batched_s:.3f}s, speedup {speedup:.1f}x")
    assert speedup >= 5.0


def test_perf_match_batch_1k(benchmark, bundle, content):
    """Deduplicated batch matching of 1,000 Zipf workload queries."""
    workload = bundle.workload
    rng = make_rng(29)
    picks = rng.integers(0, workload.n_queries, size=1_000)
    queries = [workload.query_words(int(q)) for q in picks]

    matches = benchmark(content.match_batch, queries)
    assert matches.n_queries == 1_000
    assert matches.n_distinct < 1_000  # the Zipf repeats dedup


def test_perf_intersect_batch_1k(benchmark, bundle, content):
    """Distinct-miss AND-intersection: batch kernel vs per-key loop.

    The same 1,000-query Zipf replay as above, reduced to what
    ``match_batch`` actually computes on a cold cache: the distinct
    canonical keys.  The batch kernel must beat looping
    ``intersect_postings`` per key; at this bundle scale the workload
    is call-overhead-bound, so the hard >=5x bar lives in the nightly
    million-peer bench (``bench_scale_content.py``) where element work
    dominates — here the bar only catches regressions below the loop.
    """
    workload = bundle.workload
    rng = make_rng(29)
    picks = rng.integers(0, workload.n_queries, size=1_000)
    seen = set()
    keys = []
    for q in picks:
        key = content.query_key(workload.query_words(int(q)))
        if key is not None and key not in seen:
            seen.add(key)
            keys.append(key)
    dense = content.dense_postings()

    t0 = time.perf_counter()
    expected = [
        intersect_postings(dense.posting_offsets, dense.posting_instances, key)
        for key in keys
    ]
    scalar_s = time.perf_counter() - t0

    rows = benchmark(intersect_postings_batch, dense, keys)
    t0 = time.perf_counter()
    intersect_postings_batch(dense, keys)
    batch_s = time.perf_counter() - t0

    assert len(rows) == len(keys)
    for i in (0, len(keys) // 2, len(keys) - 1):
        np.testing.assert_array_equal(rows[i], expected[i])
    speedup = scalar_s / batch_s
    benchmark.extra_info["distinct_keys"] = len(keys)
    benchmark.extra_info["scalar_s"] = round(scalar_s, 4)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    print(f"\n1k-replay intersection: per-key {scalar_s * 1e3:.2f}ms, "
          f"batch {batch_s * 1e3:.2f}ms, speedup {speedup:.2f}x")
    assert speedup >= 1.2


def test_perf_intern_bulk(benchmark):
    """Bulk interning of 200k strings (~30k distinct)."""
    rng = make_rng(31)
    strings = [f"token-{int(i)}" for i in rng.integers(0, 30_000, size=200_000)]

    def run():
        return StringInterner().intern_bulk(strings)

    ids = benchmark(run)
    assert ids.size == 200_000


def test_perf_simlint_full(benchmark):
    """Full-repo simlint run (src + tests + benchmarks).

    The analyzer is a pre-commit hook and a tier-1 test, so its wall
    time is a tracked perf surface like any kernel: the v4 concurrency
    rules ride the same phase-1 index and the memoized ``own_nodes``
    traversal, and this bench pins the whole pipeline under the same
    5 s budget ``test_self_clean`` enforces.  One round: the run is
    seconds-scale and the WeakKeyDictionary caches would make warm
    repeats measure a different (easier) workload.
    """
    import gc
    from pathlib import Path

    from repro.lint import find_pyproject, load_config, run_lint

    repo_root = Path(__file__).parents[1]
    config = load_config(find_pyproject(repo_root / "src"))
    paths = [repo_root / "src", repo_root / "tests", repo_root / "benchmarks"]

    def run_frozen():
        # The lint allocates millions of short-lived AST nodes; without
        # freezing, every gen-2 collection also scans this process's
        # large numpy/pytest heap and the measurement charges that to
        # the linter.  Freeze the pre-existing heap so the timing is
        # the analyzer's own, as in the (small-heap) tier-1 process.
        gc.collect()
        gc.freeze()
        try:
            return run_lint(paths, config)
        finally:
            gc.unfreeze()

    run = benchmark.pedantic(run_frozen, rounds=1, iterations=1)
    benchmark.extra_info["files_checked"] = run.files_checked
    benchmark.extra_info["index_build_seconds"] = round(run.index_build_seconds, 3)
    assert run.files_checked >= 180
    assert run.total_seconds < 5.0, (
        f"full-repo lint took {run.total_seconds:.2f}s (budget 5s)"
    )


def test_perf_bloom_probe(benchmark):
    """100k membership probes against a 100k-capacity filter."""
    bf = BloomFilter.for_capacity(100_000, fp_rate=0.01)
    bf.add(np.arange(0, 200_000, 2))
    probes = np.arange(100_000)

    hits = benchmark(bf.contains, probes)
    assert hits.shape == (100_000,)


def test_perf_chord_lookup(benchmark):
    """Single Chord lookup on a 10k-node ring."""
    ring = ChordRing(10_000, seed=0)
    rng = make_rng(2)
    keys = rng.integers(0, 2**63, size=512, dtype=np.uint64)
    i = iter(range(1 << 30))

    def run():
        k = int(keys[next(i) % keys.size])
        return ring.lookup(k, 0).hops

    hops = benchmark(run)
    assert hops >= 0
