"""X-BLOOM — Bloom-assisted posting intersection in the DHT index.

The hybrid-vs-DHT comparison charges the DHT for shipping posting
lists; Reynolds & Vahdat-style Bloom intersection is the standard
mitigation.  This bench measures the bandwidth cut on real queries —
strengthening, not weakening, the paper's conclusion that the DHT side
of a hybrid is the cheap side.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.dht.chord import ChordRing
from repro.dht.keyword_index import KeywordIndex
from repro.utils.rng import make_rng


def test_bloom_intersection_bandwidth(benchmark, bundle, content):
    ring = ChordRing(content.n_peers, seed=3)
    index = KeywordIndex(ring, content)
    workload = bundle.workload
    rng = make_rng(3)

    def run():
        naive_total = bloom_total = 0
        n_multi = 0
        for qi in rng.integers(0, workload.n_queries, size=80):
            words = workload.query_words(int(qi))
            if len(set(words)) < 2:
                continue
            n_multi += 1
            naive = index.query(words, source=0)
            bloom = index.query(words, source=0, intersection="bloom")
            np.testing.assert_array_equal(naive.hit_instances, bloom.hit_instances)
            naive_total += naive.posting_entries_shipped
            bloom_total += bloom.posting_entries_shipped
        return naive_total, bloom_total, n_multi

    naive_total, bloom_total, n_multi = benchmark.pedantic(run, rounds=1, iterations=1)

    saved = 1.0 - bloom_total / max(1, naive_total)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("multi-term queries evaluated", str(n_multi)),
                ("entries shipped (naive)", f"{naive_total:,}"),
                ("entries shipped (bloom)", f"{bloom_total:,}"),
                ("bandwidth saved", format_percent(saved)),
            ],
            title="X-BLOOM: distributed posting intersection",
        )
    )

    assert saved > 0.15  # Bloom intersection pays off on real queries
