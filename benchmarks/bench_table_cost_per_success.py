"""T-COST — Messages per *successful* query, flood vs DHT.

The §V comparison in economic form: a flood's cost grows with TTL
while its success under the measured Zipf placement stays poor, so the
messages-per-successful-query curve is brutal at every TTL — versus a
DHT lookup whose cost is flat and whose success equals content
availability.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.core.flood_sim import PlacementSpec, run_flood_success
from repro.core.reporting import format_table
from repro.dht.chord import ChordRing
from repro.overlay.flooding import flood_depths
from repro.utils.rng import make_rng


def test_cost_per_success(benchmark):
    topology = build_fig8_topology(Fig8TopologyConfig())
    rng = make_rng(5)

    def run():
        # Mean flood messages per TTL.
        forwarding = np.flatnonzero(topology.forwards)
        sources = forwarding[rng.integers(0, forwarding.size, size=15)]
        messages = np.zeros(5)
        for s in sources:
            for ttl in range(1, 6):
                _, msgs = flood_depths(topology, int(s), ttl)
                messages[ttl - 1] += msgs
        messages /= sources.size
        curve = run_flood_success(
            topology, PlacementSpec(), n_eval_objects=60, seed=5
        )
        ring = ChordRing(topology.n_nodes, seed=5)
        dht_cost = ring.mean_lookup_hops(150, seed=5) * 2.5  # terms/query
        return messages, curve.success, dht_cost

    messages, success, dht_cost = benchmark.pedantic(run, rounds=1, iterations=1)

    # The DHT resolves whatever exists; under the Fig. 8 placement every
    # evaluated object exists, so its success is ~1.
    rows = []
    for ttl in range(1, 6):
        s = success[ttl - 1]
        cps = messages[ttl - 1] / s if s > 0 else float("inf")
        rows.append(
            (
                f"flood TTL {ttl}",
                f"{messages[ttl - 1]:,.0f}",
                f"{s:.4f}",
                f"{cps:,.0f}",
            )
        )
    rows.append(("DHT keyword lookup", f"{dht_cost:.0f}", "1.0000", f"{dht_cost:.0f}"))
    print()
    print(
        format_table(
            ["strategy", "messages/query", "success", "messages/success"],
            rows,
            title="T-COST: the economics of the §V comparison",
        )
    )

    # At every TTL the flood pays orders of magnitude more per success.
    for ttl in range(1, 6):
        s = success[ttl - 1]
        if s > 0:
            assert messages[ttl - 1] / s > 10 * dht_cost