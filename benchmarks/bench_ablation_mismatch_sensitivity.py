"""A-SENS — The mismatch dial: alignment in, searchability out.

Sweeps the workload's query/annotation alignment and measures the
resulting Fig. 7 similarity and oracle searchability — quantifying the
paper's causal claim that the *mismatch itself* (not Zipf placement
alone) is what starves unstructured search.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.core.sensitivity import (
    MismatchSensitivityConfig,
    run_mismatch_sensitivity,
)
from repro.tracegen.catalog import CatalogConfig
from repro.tracegen.gnutella_trace import GnutellaTraceConfig


def test_mismatch_sensitivity(benchmark):
    cfg = MismatchSensitivityConfig(
        match_fractions=(0.05, 0.25, 0.5, 0.75, 1.0),
        n_resolvability_samples=500,
        catalog=CatalogConfig(
            n_songs=35_000, n_artists=3_000, lexicon_size=20_000, seed=9
        ),
        trace=GnutellaTraceConfig(n_peers=500, seed=9),
        seed=9,
    )

    def run():
        return run_mismatch_sensitivity(cfg)

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"{p.match_fraction:.2f}",
            format_percent(p.query_file_similarity),
            format_percent(p.unresolvable_fraction),
            format_percent(p.rare_fraction),
            f"{p.median_result_peers:.0f}",
        )
        for p in points
    ]
    print()
    print(
        format_table(
            [
                "vocab alignment",
                "query/file Jaccard",
                "unresolvable",
                "rare (Loo)",
                "median answering peers",
            ],
            rows,
            title="A-SENS: what if annotations matched queries better?",
        )
    )

    sims = [p.query_file_similarity for p in points]
    rares = [p.rare_fraction for p in points]
    assert sims == sorted(sims)
    assert rares[-1] < rares[0]
    # The measured workload (Jaccard ~0.13) sits deep in the bad regime.
    assert points[1].rare_fraction > 0.6
