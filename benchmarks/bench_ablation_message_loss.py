"""A-LOSS — Flood reach under message loss.

Deployed Gnutella floods lose messages to overloaded peers and
saturated links.  This ablation quantifies how per-transmission loss
compounds with depth: a loss rate that is negligible at TTL 1 erodes
the deep reach floods depend on — one more reason the real network
under-delivered relative to loss-free models.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.core.reporting import format_percent, format_table
from repro.overlay.flooding import flood_depths
from repro.utils.rng import make_rng


def test_flood_reach_under_loss(benchmark):
    topology = build_fig8_topology(Fig8TopologyConfig(n_nodes=20_000))
    rng = make_rng(29)
    forwarding = np.flatnonzero(topology.forwards)
    sources = forwarding[rng.integers(0, forwarding.size, size=12)]

    def run():
        out = {}
        for p_loss in (0.0, 0.05, 0.15, 0.30):
            reach = np.zeros(5)
            for s in sources:
                depth, _ = flood_depths(
                    topology, int(s), 5, p_loss=p_loss, rng=rng
                )
                reached = depth[depth >= 1]
                counts = np.bincount(reached, minlength=6)
                reach += np.cumsum(counts)[1:]
            out[p_loss] = reach / sources.size / topology.n_nodes
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p_loss, reach in sorted(results.items()):
        rows.append(
            [format_percent(p_loss, 0)] + [format_percent(r) for r in reach]
        )
    print()
    print(
        format_table(
            ["loss rate", "TTL 1", "TTL 2", "TTL 3", "TTL 4", "TTL 5"],
            rows,
            title="A-LOSS: mean flood reach under per-transmission loss",
        )
    )

    clean = results[0.0]
    heavy = results[0.30]
    # Loss barely moves TTL-1 reach but compounds with depth.
    assert heavy[0] > 0.5 * clean[0]
    assert heavy[4] < 0.6 * clean[4]
    # Reach is monotone in loss at every TTL.
    losses = sorted(results)
    for ttl_idx in range(5):
        series = [results[p][ttl_idx] for p in losses]
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))