"""T-PROTO — Emergent overlay from the connection protocol.

Validates the substrate assumption behind every topology in the
harness: the Gnutella connection protocol (bootstrap caches, Ping/Pong
discovery, reconnection) produces a connected network with degrees
near the configured target, and repairs itself after mass departures —
the network the paper's crawler walked.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.overlay.protocol import GnutellaSession, ProtocolConfig


def test_network_formation_and_repair(benchmark):
    def run():
        sess = GnutellaSession(ProtocolConfig(n_nodes=800, seed=3))
        sess.form(rounds=25)
        degrees = np.asarray([sess.degree_of(v) for v in sess.online])
        formed = (degrees.mean(), sess.largest_component_fraction())
        # Kill a third of the network, then repair.
        for v in sorted(sess.online)[::3]:
            sess.leave(v)
        broken = sess.largest_component_fraction()
        for _ in range(15):
            sess.run_round()
        repaired = sess.largest_component_fraction()
        return formed, broken, repaired

    (mean_deg, lcc), broken, repaired = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("mean degree after formation", f"{mean_deg:.1f}"),
                ("largest component (formed)", format_percent(lcc)),
                ("largest component (after 33% departure)", format_percent(broken)),
                ("largest component (after repair)", format_percent(repaired)),
            ],
            title="T-PROTO: connection-protocol network formation",
        )
    )

    assert np.isclose(lcc, 1.0)
    assert repaired > 0.98
    assert mean_deg >= 4.0