"""A-SCALE — Are the reproduced shapes scale artifacts?

DESIGN.md claims the calibrated shape statistics (singleton mass,
query/file mismatch) are invariant under trace scale.  This ablation
regenerates the key §III/§IV statistics at three scales, keeping the
calibrated ratios fixed, and checks they stay in the paper's bands.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.core.reporting import format_percent, format_table
from repro.tracegen.catalog import CatalogConfig, MusicCatalog
from repro.tracegen.gnutella_trace import GnutellaShareTrace, GnutellaTraceConfig

#: (n_peers, n_songs, n_artists, lexicon) keeping the calibrated
#: songs-to-instances ratio of the default configuration.
SCALES = (
    (250, 17_500, 1_500, 12_000),
    (500, 35_000, 3_000, 20_000),
    (1_000, 70_000, 6_000, 30_000),
)


def test_shape_statistics_across_scales(benchmark):
    def run():
        out = {}
        for n_peers, n_songs, n_artists, lexicon in SCALES:
            catalog = MusicCatalog(
                CatalogConfig(
                    n_songs=n_songs,
                    n_artists=n_artists,
                    lexicon_size=lexicon,
                    seed=19,
                )
            )
            trace = GnutellaShareTrace(
                catalog, GnutellaTraceConfig(n_peers=n_peers, seed=19)
            )
            s = summarize_replication(trace.replica_counts(), trace.n_peers)
            out[n_peers] = (
                s.singleton_fraction,
                s.n_objects / s.n_instances,
                s.mean_replicas,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"{n:,} peers",
            format_percent(single),
            format_percent(ratio),
            f"{mean:.2f}",
        )
        for n, (single, ratio, mean) in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["scale", "singleton fraction", "unique/instances", "mean replicas"],
            rows,
            title="A-SCALE: §III shape statistics across trace scales "
            "(paper: 70.5% / 67.5% / 1.48)",
        )
    )

    singles = [v[0] for v in results.values()]
    ratios = [v[1] for v in results.values()]
    assert max(singles) - min(singles) < 0.08
    assert max(ratios) - min(ratios) < 0.08
    for single, ratio, mean in results.values():
        assert 0.6 <= single <= 0.8
        assert 1.3 <= mean <= 1.8
