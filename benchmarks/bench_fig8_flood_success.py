"""FIG8 — Query success rate vs flood TTL, Zipf vs uniform placement.

Paper Fig. 8: on a 40,000-node Gnutella network, flood success rates
for uniform placement with 1/4/9/19/39 replicas and for the measured
Zipf replica distribution (mean 5).  Headline: the Zipf curve tracks
the lowest uniform curves; at TTL 3 it succeeds only ~5%.
"""

from __future__ import annotations

from repro.core.flood_sim import FloodSimConfig, run_fig8
from repro.core.reporting import format_table


def test_fig8_flood_success_rates(benchmark):
    def run():
        return run_fig8(FloodSimConfig(n_eval_objects=80))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["TTL"] + [c.label for c in result.curves]
    ttls = result.curves[0].ttls
    rows = []
    for i, t in enumerate(ttls):
        rows.append([t] + [f"{c.success[i]:.4f}" for c in result.curves])
    print()
    print(
        format_table(
            headers, rows, title="FIG8: flood success rate (40,000-node network)"
        )
    )

    zipf = result.curve("Zipf").success
    low = result.curve("Uniform (1 replicas)").success
    mid = result.curve("Uniform (9 replicas)").success
    hi = result.curve("Uniform (39 replicas)").success
    assert 0.02 <= zipf[2] <= 0.10  # paper: ~5% at TTL 3
    assert 0.45 <= hi[2] <= 0.80  # paper: ~62% predicted for 0.1%
    assert zipf[2] < mid[2]  # Zipf hugs the low-replication curves
    assert zipf[2] >= low[2]
