"""X-CACHE — Ultrapeer result caching under the measured workload.

A second deployed mechanism (next to QRP) whose behaviour the paper's
temporal findings predict: the stable popular core caches well, the
Zipf long tail of distinct queries does not, and transient bursts —
single repeated terms — cache almost perfectly after their first miss.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.overlay.result_cache import CacheConfig, simulate_cache


def test_result_cache_under_workload(benchmark, bundle):
    workload = bundle.workload

    def run():
        out = {}
        for cap in (64, 512, 4_096):
            out[cap] = simulate_cache(
                workload, CacheConfig(capacity=cap), max_queries=60_000
            )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"{cap:,}",
            format_percent(r.hit_rate),
            format_percent(r.hit_rate_persistent),
            format_percent(r.hit_rate_transient),
            format_percent(r.stale_miss_fraction),
        )
        for cap, r in sorted(reports.items())
    ]
    print()
    print(
        format_table(
            ["cache capacity", "hit rate", "persistent", "transient", "stale misses"],
            rows,
            title="X-CACHE: exact-match result caching (60k queries, 1h TTL)",
        )
    )

    big = reports[4_096]
    # The long tail defeats exact-match caching overall...
    assert big.hit_rate < 0.6
    # ...but burst queries (one repeated term) cache almost perfectly.
    assert big.hit_rate_transient > 0.8
    assert big.hit_rate_transient > big.hit_rate_persistent
