"""X-CACHE — Ultrapeer result caching under the measured workload.

A second deployed mechanism (next to QRP) whose behaviour the paper's
temporal findings predict: the stable popular core caches well, the
Zipf long tail of distinct queries does not, and transient bursts —
single repeated terms — cache almost perfectly after their first miss.
"""

from __future__ import annotations

import numpy as np

from repro.core.reporting import format_percent, format_table
from repro.overlay.network import UnstructuredNetwork
from repro.overlay.result_cache import CacheConfig, simulate_cache
from repro.overlay.topology import two_tier_gnutella


def test_result_cache_under_workload(benchmark, bundle, content):
    workload = bundle.workload
    topology = two_tier_gnutella(content.n_peers, ultrapeer_fraction=0.3, seed=29)
    network = UnstructuredNetwork(topology, content)
    n = min(60_000, workload.n_queries)
    # Price each replayed query: the caching ultrapeer's expanding-ring
    # search, batched (one BFS for the fixed source, deduped matching).
    queries = [workload.query_words(i) for i in range(n)]
    priced = network.query_batch(
        np.zeros(n, dtype=np.int64), queries, ttl_schedule=(1, 2, 3, 5)
    )

    def run():
        out = {}
        for cap in (64, 512, 4_096):
            out[cap] = simulate_cache(
                workload,
                CacheConfig(capacity=cap),
                max_queries=60_000,
                flood_messages=priced.messages,
            )
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            f"{cap:,}",
            format_percent(r.hit_rate),
            format_percent(r.hit_rate_persistent),
            format_percent(r.hit_rate_transient),
            format_percent(r.stale_miss_fraction),
            format_percent(r.messages_saved_fraction),
        )
        for cap, r in sorted(reports.items())
    ]
    print()
    print(
        format_table(
            [
                "cache capacity",
                "hit rate",
                "persistent",
                "transient",
                "stale misses",
                "flood msgs saved",
            ],
            rows,
            title="X-CACHE: exact-match result caching (60k queries, 1h TTL)",
        )
    )

    big = reports[4_096]
    # The long tail defeats exact-match caching overall...
    assert big.hit_rate < 0.6
    # ...but burst queries (one repeated term) cache almost perfectly.
    assert big.hit_rate_transient > 0.8
    assert big.hit_rate_transient > big.hit_rate_persistent
    # A hit avoids a real expanding-ring search, so saved traffic tracks
    # (but need not equal) the hit rate.
    assert 0.0 < big.messages_saved_fraction < 1.0
