"""X-SYN-CHURN — Adaptive synopses under peer churn.

Static synopses describe the population that was online when they
were built; as it churns out (and new peers arrive unadvertised),
their guidance decays.  The adaptive policy re-advertises every epoch,
so churn *widens* its margin — the dynamic-network argument for the
paper's proposal.
"""

from __future__ import annotations

from repro.core.reporting import format_percent, format_table
from repro.core.synopsis import SynopsisConfig, run_synopsis_experiment
from repro.overlay.churn import ChurnConfig, ChurnTimeline


def test_synopsis_policies_under_churn(benchmark, bundle, content):
    churn = ChurnTimeline(
        ChurnConfig(
            n_peers=content.n_peers,
            horizon_s=bundle.workload.config.duration_s,
            seed=5,
        )
    )
    cfg = SynopsisConfig(n_queries=600)

    def run():
        base = run_synopsis_experiment(bundle, cfg, content=content)
        under = run_synopsis_experiment(bundle, cfg, content=content, churn=churn)
        return base, under

    base, under = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for policy in cfg.policies:
        rows.append(
            (
                policy,
                format_percent(base.outcome(policy).success_rate),
                format_percent(under.outcome(policy).success_rate),
            )
        )
    print()
    print(
        format_table(
            ["policy", "success (static net)", "success (churning net)"],
            rows,
            title="X-SYN-CHURN: synopsis policies when ~1/3 of peers are offline",
        )
    )

    # Adaptivity keeps its lead when the network churns.
    assert (
        under.outcome("adaptive").success_rate
        >= under.outcome("static-query").success_rate
    )
    assert (
        under.outcome("adaptive").success_rate
        > under.outcome("random").success_rate
    )
