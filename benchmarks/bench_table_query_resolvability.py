"""T-RESOLV — How many results could queries get with global knowledge?

The query-side complement of T-RARE: the paper's objects are so thinly
replicated, and query terms so mismatched with annotations, that the
overwhelming majority of real queries are *rare* (< 20 results, Loo et
al.) even for an oracle — before any search strategy spends a message.
"""

from __future__ import annotations

from repro.analysis.resolvability import measure_resolvability
from repro.core.reporting import format_percent, format_table


def test_query_resolvability(benchmark, bundle, content):
    def run():
        return measure_resolvability(
            bundle.workload, content, n_samples=1_500, seed=2
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("queries sampled", f"{report.n_queries:,}"),
        ("unresolvable anywhere (0 results)", format_percent(report.unresolvable_fraction)),
        (
            f"rare (< {report.rare_threshold} results, Loo et al.)",
            format_percent(report.rare_fraction),
        ),
        ("median available results", f"{report.median_results:.0f}"),
        ("90th-percentile results", f"{report.quantile(0.9):.0f}"),
        ("99th-percentile results", f"{report.quantile(0.99):.0f}"),
    ]
    print()
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="T-RESOLV: oracle result availability for real queries",
        )
    )

    # The hybrid's flood phase is doomed before it starts:
    assert report.rare_fraction > 0.6
    assert report.unresolvable_fraction > 0.3
