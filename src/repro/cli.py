"""Command-line interface: ``python -m repro <command>``.

Thin argparse dispatch onto the experiment functions, so a downstream
user can regenerate any paper artifact without writing code::

    python -m repro gen-trace --out trace.npz
    python -m repro analyze trace.npz
    python -m repro fig 8 --workers 4
    python -m repro reach
    python -m repro hybrid
    python -m repro mismatch
    python -m repro synopsis
    python -m repro cache info
    python -m repro fig 8 --metrics metrics.json --workers 2
    python -m repro stats metrics.json
    python -m repro serve --nodes 5000 --port 8642
    python -m repro load --port 8642 --qps 100 --duration 10
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

import numpy as np

__all__ = ["main", "build_parser"]

_METRICS_HELP = (
    "write a repro-metrics/1 JSON manifest (counters, timers, stage "
    "spans) of this run to the given path; inspect it with 'repro stats'"
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the need for query-centric unstructured "
            "peer-to-peer overlays' (Acosta & Chandra, IPPS 2008)."
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the hottest "
        "functions by cumulative time (place before the subcommand)",
    )
    parser.add_argument("--metrics", default=None, metavar="OUT", help=_METRICS_HELP)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen-trace", help="generate and save a Gnutella share trace")
    gen.add_argument("--out", required=True, help="output .npz path")
    gen.add_argument("--peers", type=int, default=None, help="number of peers")
    gen.add_argument("--seed", type=int, default=0)

    analyze = sub.add_parser("analyze", help="replication statistics of a saved trace")
    analyze.add_argument("trace", help="path to a trace saved by gen-trace")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(1, 2, 3, 4, 5, 6, 7, 8))
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for fig 8 (0 = one per CPU); "
        "results are identical for any value",
    )

    reach = sub.add_parser("reach", help="the §V TTL reach table (T-REACH)")
    reach.add_argument("--workers", type=int, default=1)
    hybrid = sub.add_parser("hybrid", help="the §V hybrid-vs-DHT table (T-HYBRID)")
    hybrid.add_argument("--workers", type=int, default=1)
    sub.add_parser("mismatch", help="the §IV mismatch headline values (Figs. 5-7)")
    sub.add_parser("synopsis", help="the §VII adaptive-synopsis experiment (X-SYN)")
    sub.add_parser("resolvability", help="oracle query resolvability (T-RESOLV)")
    sub.add_parser("workload", help="query-workload fact sheet")
    sub.add_parser("calibrate", help="calibration certificates for both traces")
    sub.add_parser("report", help="run everything; verdict on every headline claim")

    export = sub.add_parser(
        "export", help="run the main experiments and write CSVs + manifest"
    )
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument(
        "--full", action="store_true", help="full Monte-Carlo sample counts"
    )

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk artifact cache"
    )
    cache.add_argument("action", choices=("info", "clear"))

    stats = sub.add_parser(
        "stats", help="render a --metrics manifest written by an earlier run"
    )
    stats.add_argument("manifest", help="path to a repro-metrics/1 JSON file")

    serve = sub.add_parser(
        "serve", help="run the overlay query service (HTTP/JSON)"
    )
    serve.add_argument("--nodes", type=int, default=5_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642, help="0 picks a free port"
    )
    serve.add_argument("--shards", type=int, default=1)
    serve.add_argument(
        "--bfs-workers", type=int, default=1,
        help="worker processes of the sharded BFS runner (needs --shards > 1)",
    )
    serve.add_argument(
        "--engine-workers", type=int, default=1,
        help="engine fan-out width per micro-batch",
    )
    serve.add_argument("--max-queue", type=int, default=256)
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--timeout", type=float, default=10.0,
        help="default per-request deadline in seconds",
    )
    serve.add_argument("--drain-timeout", type=float, default=30.0)
    serve.add_argument(
        "--ready-file", default=None,
        help="write 'host port' here once listening (CI handshake)",
    )

    load = sub.add_parser(
        "load", help="open-loop load driver against a running service"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=8642)
    load.add_argument(
        "--nodes", type=int, default=5_000,
        help="must match the server's --nodes (shared query vocabulary)",
    )
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--qps", type=float, default=50.0)
    load.add_argument("--duration", type=float, default=5.0)
    load.add_argument(
        "--arrivals", choices=("uniform", "poisson", "burst"),
        default="uniform", help="arrival-time profile",
    )
    load.add_argument("--burst-factor", type=float, default=4.0)
    load.add_argument(
        "--zipf", type=float, default=0.9,
        help="Zipf exponent of query popularity over the pool",
    )
    load.add_argument("--pool", type=int, default=64)
    load.add_argument(
        "--batch", type=int, default=1, help="queries per request"
    )
    load.add_argument("--ttl", type=int, default=3)
    load.add_argument("--min-results", type=int, default=1)
    load.add_argument("--timeout", type=float, default=5.0)
    load.add_argument("--out", default=None, help="write the JSON report here")

    # Accept --metrics after the subcommand too (the natural place to
    # type it).  SUPPRESS keeps a subparser that didn't see the flag
    # from clobbering the main parser's value with a default.
    for action in sub.choices.values():
        action.add_argument(
            "--metrics",
            default=argparse.SUPPRESS,
            metavar="OUT",
            help=_METRICS_HELP,
        )
    return parser


def _cmd_gen_trace(args: argparse.Namespace) -> int:
    from repro.tracegen.catalog import MusicCatalog
    from repro.tracegen.gnutella_trace import GnutellaShareTrace, GnutellaTraceConfig
    from repro.tracegen.io import save_trace

    catalog = MusicCatalog()
    kwargs = {"seed": args.seed}
    if args.peers is not None:
        kwargs["n_peers"] = args.peers
    trace = GnutellaShareTrace(catalog, GnutellaTraceConfig(**kwargs))
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {trace.n_peers:,} peers, "
        f"{trace.n_instances:,} instances, {trace.n_unique_names:,} unique names"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.replication import summarize_replication
    from repro.analysis.zipf_fit import fit_zipf
    from repro.core.reporting import format_percent, format_table
    from repro.tracegen.io import load_trace

    trace = load_trace(args.trace)
    counts = trace.replica_counts()
    s = summarize_replication(counts, trace.n_peers)
    fit = fit_zipf(counts[counts > 0])
    print(
        format_table(
            ["metric", "value"],
            [
                ("peers", f"{s.n_peers:,}"),
                ("instances", f"{s.n_instances:,}"),
                ("unique names", f"{s.n_objects:,}"),
                ("singleton fraction", format_percent(s.singleton_fraction)),
                ("mean replicas", f"{s.mean_replicas:.2f}"),
                ("objects on >= 20 peers", format_percent(s.at_least_20_peers)),
                ("Zipf exponent", f"{fit.exponent:.2f}"),
            ],
            title=f"Replication analysis of {args.trace}",
        )
    )
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.core.reporting import format_percent, format_table

    n = args.number
    if n in (1, 2, 3):
        from repro.analysis.replication import summarize_replication
        from repro.core.experiment import build_content_index, build_trace_bundle

        bundle = build_trace_bundle()
        if n == 1:
            counts = bundle.trace.replica_counts()
            s = summarize_replication(counts, bundle.trace.n_peers)
            print(
                format_table(
                    ["metric", "value"],
                    [
                        ("unique names", f"{s.n_objects:,}"),
                        ("singleton fraction", format_percent(s.singleton_fraction)),
                        ("mean replicas", f"{s.mean_replicas:.2f}"),
                    ],
                    title="FIG1: Gnutella object replicas",
                )
            )
        elif n == 2:
            from repro.analysis.tokenize import sanitize_name

            names = bundle.trace.unique_names()
            sanitized = {sanitize_name(x) for x in names}
            print(
                f"FIG2: {len(names):,} raw uniques -> {len(sanitized):,} sanitized "
                f"({format_percent(1 - len(sanitized) / len(names))} recovered)"
            )
        else:
            content = build_content_index(bundle.trace)
            counts = content.term_peer_counts()
            counts = counts[counts > 0]
            print(
                f"FIG3: {counts.size:,} unique terms, "
                f"{format_percent(float(np.mean(counts == 1)))} single-peer"
            )
        return 0
    if n == 4:
        from repro.tracegen import presets
        from repro.tracegen.catalog import MusicCatalog
        from repro.tracegen.itunes_trace import ITunesShareTrace

        itunes = ITunesShareTrace(
            MusicCatalog(presets.CATALOG_ITUNES), presets.ITUNES_DEFAULT
        )
        rows = []
        for field, values in (
            ("song", itunes.song_ids),
            ("genre", itunes.genre_ids),
            ("album", itunes.album_ids),
            ("artist", itunes.artist_ids),
        ):
            counts = itunes.clients_per_value(values)
            counts = counts[counts > 0]
            rows.append(
                (field, f"{counts.size:,}", format_percent(float(np.mean(counts == 1))))
            )
        print(format_table(["field", "uniques", "single-client"], rows, title="FIG4"))
        return 0
    if n in (5, 6, 7):
        return _cmd_mismatch(args)
    # n == 8
    from repro.core.flood_sim import FloodSimConfig, run_fig8

    result = run_fig8(
        FloodSimConfig(n_eval_objects=80, seed=args.seed, n_workers=args.workers)
    )
    headers = ["TTL"] + [c.label for c in result.curves]
    rows = []
    for i, ttl in enumerate(result.curves[0].ttls):
        rows.append([ttl] + [f"{c.success[i]:.4f}" for c in result.curves])
    print(format_table(headers, rows, title="FIG8: flood success rate"))
    return 0


def _cmd_reach(args: argparse.Namespace) -> int:
    from repro.core.reach import PAPER_REACH, ReachConfig, measure_reach
    from repro.core.reporting import format_percent, format_table

    result = measure_reach(ReachConfig(n_sources=40, n_workers=args.workers))
    rows = [
        (
            ttl,
            format_percent(frac),
            f"{nodes:,.0f}",
            format_percent(PAPER_REACH[ttl]) if ttl in PAPER_REACH else "-",
        )
        for ttl, frac, nodes in result.as_rows()
    ]
    print(format_table(["TTL", "reach", "nodes", "paper"], rows, title="T-REACH"))
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from repro.core.hybrid_eval import HybridEvalConfig, evaluate_hybrid
    from repro.core.reporting import format_table

    result = evaluate_hybrid(
        HybridEvalConfig(n_eval_objects=80, n_workers=args.workers)
    )
    print(format_table(["metric", "value"], result.as_rows(), title="T-HYBRID"))
    return 0


def _cmd_mismatch(args: argparse.Namespace) -> int:
    from repro.core.mismatch import run_mismatch_analysis
    from repro.core.reporting import format_percent, format_table

    report = run_mismatch_analysis()
    rows = [
        ("popular-set stability (FIG6)", format_percent(report.stability_after_warmup)),
        ("max query/file similarity (FIG7)", format_percent(report.max_file_similarity)),
        ("overall query/file similarity", format_percent(report.overall_similarity)),
    ]
    for s, c in sorted(report.transient_counts.items()):
        rows.append((f"mean transients @ {s / 60:.0f} min (FIG5)", f"{c.mean():.2f}"))
    print(format_table(["metric", "value"], rows, title="§IV mismatch analysis"))
    return 0


def _cmd_synopsis(args: argparse.Namespace) -> int:
    from repro.core.reporting import format_percent, format_table
    from repro.core.synopsis import SynopsisConfig, run_synopsis_experiment

    result = run_synopsis_experiment(config=SynopsisConfig())
    rows = [
        (
            o.policy,
            format_percent(o.success_rate),
            format_percent(o.success_transient),
            f"{o.mean_messages:.0f}",
        )
        for o in result.outcomes
    ]
    print(
        format_table(
            ["policy", "success", "transient success", "msgs"], rows, title="X-SYN"
        )
    )
    return 0


def _cmd_resolvability(args: argparse.Namespace) -> int:
    from repro.analysis.resolvability import measure_resolvability
    from repro.core.experiment import build_content_index, build_trace_bundle
    from repro.core.reporting import format_percent, format_table

    bundle = build_trace_bundle()
    content = build_content_index(bundle.trace)
    report = measure_resolvability(bundle.workload, content, n_samples=1_000)
    print(
        format_table(
            ["metric", "value"],
            [
                ("unresolvable queries", format_percent(report.unresolvable_fraction)),
                ("rare queries (Loo et al.)", format_percent(report.rare_fraction)),
                ("median available results", f"{report.median_results:.0f}"),
            ],
            title="T-RESOLV",
        )
    )
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.analysis.workload_stats import summarize_workload
    from repro.core.experiment import build_trace_bundle
    from repro.core.reporting import format_percent, format_table

    bundle = build_trace_bundle()
    s = summarize_workload(bundle.workload)
    hist = ", ".join(
        f"{i}:{c:,}" for i, c in enumerate(s.terms_per_query_hist) if c
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("queries", f"{s.n_queries:,}"),
                ("duration", f"{s.duration_s / 86_400:.1f} days"),
                ("mean rate", f"{s.mean_rate_per_hour:,.0f} queries/hour"),
                ("peak rate", f"{s.peak_rate_per_hour:,.0f} queries/hour"),
                ("terms per query", f"{s.terms_per_query_mean:.2f} (hist {hist})"),
                ("distinct terms", f"{s.distinct_terms:,}"),
                ("top-10 term share", format_percent(s.top10_term_share)),
                ("term Zipf exponent", f"{s.query_term_zipf_exponent:.2f}"),
            ],
            title="Query-workload fact sheet",
        )
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import check_gnutella_trace, check_itunes_trace
    from repro.core.experiment import build_trace_bundle
    from repro.core.reporting import format_table
    from repro.tracegen import presets
    from repro.tracegen.catalog import MusicCatalog
    from repro.tracegen.itunes_trace import ITunesShareTrace

    bundle = build_trace_bundle()
    gnutella = check_gnutella_trace(bundle.trace)
    itunes = check_itunes_trace(
        ITunesShareTrace(MusicCatalog(presets.CATALOG_ITUNES), presets.ITUNES_DEFAULT)
    )
    headers = ["target", "paper", "measured", "band", "status"]
    print(
        format_table(
            headers,
            [c.as_row() for c in gnutella],
            title="Gnutella trace calibration (§III-A)",
        )
    )
    print()
    print(
        format_table(
            headers, [c.as_row() for c in itunes], title="iTunes trace calibration (Fig. 4)"
        )
    )
    return 0 if all(c.passed for c in gnutella + itunes) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.paper_report import build_report, render_report

    claims = build_report()
    print(render_report(claims))
    return 0 if all(c.holds for c in claims) else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import export_all

    manifest = export_all(args.out, seed=args.seed, quick=not args.full)
    print(f"wrote {args.out}/manifest.json plus {len(manifest)} headline values")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.core.reporting import format_bytes, format_table
    from repro.runtime.cache import BLOB_PRODUCERS, cache_info, clear_cache

    if args.action == "clear":
        removed = clear_cache()
        print(f"removed {removed} cached artifact(s)")
        return 0
    info = cache_info()
    rows = [
        ("path", info.path),
        ("enabled", "yes" if info.enabled else "no (REPRO_CACHE=off)"),
        ("entries", f"{info.n_entries:,}"),
        ("size", format_bytes(info.total_bytes)),
    ]
    for name, count in sorted(info.sections.items()):
        rows.append((f"  {name}", f"{count:,} entr{'y' if count == 1 else 'ies'}"))
    print(format_table(["key", "value"], rows, title="Artifact cache"))
    if info.entries:
        entry_rows = [
            (e.producer, e.key, e.format, format_bytes(e.n_bytes))
            for e in info.entries
        ]
        print()
        print(
            format_table(
                ["producer", "key", "format", "size"],
                entry_rows,
                title="Cache entries",
            )
        )
        legacy = sorted(
            {e.producer for e in info.entries
             if e.format == "pickle" and e.producer in BLOB_PRODUCERS}
        )
        if legacy:
            print()
            print(
                f"note: producer(s) {', '.join(legacy)} have legacy pickle "
                "entries; they "
                "still load, but re-running the producer (or `repro cache "
                "clear`) migrates them to the zero-copy mmap-blob format."
            )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.reporting import format_table
    from repro.obs import load_manifest

    try:
        doc = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    header = f"Run metrics: repro {' '.join(doc['argv'])} (exit {doc['exit_code']})"
    counters = doc["metrics"]["counters"]
    gauges = doc["metrics"]["gauges"]
    timers = doc["metrics"]["timers"]
    sections: list[str] = []
    if counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [(name, f"{value:,}") for name, value in sorted(counters.items())],
                title="Counters",
            )
        )
    if gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [(name, f"{value:g}") for name, value in sorted(gauges.items())],
                title="Gauges",
            )
        )
    if timers:
        sections.append(
            format_table(
                ["timer", "count", "total", "mean"],
                [
                    (
                        name,
                        f"{t['count']:,}",
                        f"{t['total_s']:.3f}s",
                        f"{t['mean_s'] * 1e3:.2f}ms",
                    )
                    for name, t in sorted(timers.items())
                ],
                title="Timers",
            )
        )
    # Headline derived rate: queries/sec of the batched engine.
    batch_q = counters.get("batch.queries", 0)
    batch_t = timers.get("batch.evaluate", {}).get("total_s", 0.0)
    if batch_q and batch_t > 0:
        sections.append(f"batch throughput: {batch_q / batch_t:,.0f} queries/sec")
    if doc["spans"]:
        sections.append(
            format_table(
                ["stage", "duration"],
                [
                    ("  " * s["depth"] + s["name"], f"{s['duration_s'] * 1e3:.1f}ms")
                    for s in doc["spans"]
                ],
                title="Stages",
            )
        )
    print("\n\n".join([header, *sections]))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.runtime.shm import cleanup_on_signal
    from repro.serve.server import OverlayQueryServer
    from repro.serve.service import ServicePolicy
    from repro.serve.state import ServiceConfig, ServiceState

    # Installed before any shm segment exists: a SIGTERM during the
    # (potentially long) artifact build must still unlink everything.
    # While the event loop runs it takes over the same signals for the
    # graceful-drain path.
    uninstall = cleanup_on_signal()
    try:
        config = ServiceConfig(
            n_nodes=args.nodes,
            seed=args.seed,
            n_shards=args.shards,
            bfs_workers=args.bfs_workers,
            engine_workers=args.engine_workers,
        )
        policy = ServicePolicy(
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            default_timeout_s=args.timeout,
        )
        with ServiceState.from_config(config) as state:
            server = OverlayQueryServer(
                state, policy=policy, host=args.host, port=args.port
            )

            def announce(srv: OverlayQueryServer) -> None:
                print(
                    f"serving {state.n_nodes:,} nodes on "
                    f"http://{srv.host}:{srv.port}",
                    flush=True,
                )
                if args.ready_file:
                    Path(args.ready_file).write_text(f"{srv.host} {srv.port}\n")

            asyncio.run(
                server.run(
                    drain_timeout_s=args.drain_timeout, ready=announce
                )
            )
    finally:
        uninstall()
    print("drained and shut down cleanly")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio
    import json
    from pathlib import Path

    from repro.core.experiment import build_trace_bundle
    from repro.core.reporting import format_table
    from repro.serve.load import LoadConfig, build_query_pool, run_load
    from repro.tracegen.gnutella_trace import GnutellaTraceConfig

    config = LoadConfig(
        qps=args.qps,
        duration_s=args.duration,
        profile=args.arrivals,
        burst_factor=args.burst_factor,
        zipf_exponent=args.zipf,
        pool_size=args.pool,
        batch_size=args.batch,
        ttl=args.ttl,
        min_results=args.min_results,
        timeout_s=args.timeout,
        seed=args.seed,
    )
    # Same trace config as the server's build: the query pool draws
    # from the vocabulary the service actually indexed.
    bundle = build_trace_bundle(
        trace_config=GnutellaTraceConfig(n_peers=args.nodes, seed=args.seed)
    )
    pool = build_query_pool(bundle.workload, config.pool_size)
    report = asyncio.run(
        run_load(
            args.host, args.port, config, queries=pool, n_nodes=args.nodes
        )
    )
    print(
        format_table(
            ["metric", "value"],
            report.as_rows(),
            title=f"Load report ({args.arrivals} @ {args.qps:g} qps)",
        )
    )
    if args.out:
        Path(args.out).write_text(json.dumps(report.as_dict(), indent=2))
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


_COMMANDS = {
    "gen-trace": _cmd_gen_trace,
    "export": _cmd_export,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
    "fig": _cmd_fig,
    "reach": _cmd_reach,
    "hybrid": _cmd_hybrid,
    "mismatch": _cmd_mismatch,
    "synopsis": _cmd_synopsis,
    "resolvability": _cmd_resolvability,
    "workload": _cmd_workload,
    "calibrate": _cmd_calibrate,
    "cache": _cmd_cache,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "load": _cmd_load,
}


def _run_profiled(
    command: Callable[[argparse.Namespace], int], args: argparse.Namespace
) -> int:
    """Run ``command`` under cProfile; print a top-25 cumulative table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    code = profiler.runcall(command, args)
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(25)
    print(stream.getvalue(), end="")
    return int(code)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    With ``--metrics OUT`` the whole command runs inside a
    ``cli.<command>`` span with the ``cli.command`` timer, and the
    metrics registry + span trace are written to ``OUT`` as a
    ``repro-metrics/1`` manifest afterwards.  Instrumentation is
    observational only: command output and figure values are bitwise
    identical with and without the flag.
    """
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    metrics_out = getattr(args, "metrics", None)
    if metrics_out is None:
        if args.profile:
            return _run_profiled(command, args)
        return command(args)

    from repro.obs import build_manifest, metrics, span, write_manifest

    registry = metrics()
    code = 1
    try:
        with registry.timer("cli.command"), span(f"cli.{args.command}"):
            if args.profile:
                code = _run_profiled(command, args)
            else:
                code = command(args)
    finally:
        from repro.obs import completed_spans

        doc = build_manifest(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            snapshot=registry.snapshot(),
            spans=completed_spans(),
            exit_code=code,
            seed=getattr(args, "seed", None),
        )
        out = write_manifest(metrics_out, doc)
        print(f"wrote metrics manifest {out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
