"""repro — reproduction of Acosta & Chandra, *On the need for
query-centric unstructured peer-to-peer overlays* (IPPS 2008).

Public API layout
-----------------
``repro.tracegen``
    Synthetic Gnutella / iTunes / query traces (the paper's data gates,
    substituted per DESIGN.md §2).
``repro.overlay``
    Gnutella-style unstructured overlay: topologies, flooding, random
    walks.
``repro.dht``
    Chord-style structured overlay with a distributed keyword index.
``repro.hybrid``
    Flood-then-DHT hybrid search and its cost model.
``repro.crawler``
    Cruiser-style crawls and Phex-style query monitoring over the
    simulated network.
``repro.analysis``
    Tokenization, popularity/replication statistics, Zipf fits,
    Jaccard timelines, transient-term detection.
``repro.core``
    The paper's experiments: flood-success simulation (Fig. 8), TTL
    reach, hybrid-vs-DHT evaluation, the query/annotation mismatch
    pipeline (Figs. 5-7) and the adaptive-synopsis extension.
"""

__version__ = "0.1.0"

from repro import analysis, core, crawler, dht, hybrid, overlay, tracegen, utils

__all__ = [
    "analysis",
    "core",
    "crawler",
    "dht",
    "hybrid",
    "overlay",
    "tracegen",
    "utils",
    "__version__",
]
