"""Unified workload replay over pluggable search strategies.

Everything the repository compares — floods, QRP floods, expanding
rings, walks, DHT lookups, hybrids — answers the same two questions
per query: did it succeed, and what did it cost.  The replay engine
runs any set of :class:`SearchStrategy` implementations over an
identical query sample and aggregates
:class:`~repro.hybrid.cost_model.StrategyStats`, so comparisons are
one call instead of a hand-rolled loop.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.experiment import TraceBundle
from repro.dht.keyword_index import KeywordIndex
from repro.hybrid.cost_model import StrategyStats, aggregate
from repro.hybrid.search import HybridSearch
from repro.overlay.expanding_ring import expanding_ring_search
from repro.overlay.network import UnstructuredNetwork
from repro.utils.rng import derive

__all__ = [
    "SearchStrategy",
    "FloodStrategy",
    "WalkStrategy",
    "ExpandingRingStrategy",
    "DhtStrategy",
    "HybridStrategy",
    "replay",
]


class SearchStrategy(Protocol):
    """One pluggable search mechanism."""

    name: str

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        """Run one query; return ``(succeeded, messages)``."""
        ...


class FloodStrategy:
    """Plain TTL flooding."""

    def __init__(self, network: UnstructuredNetwork, ttl: int = 3) -> None:
        self.network = network
        self.ttl = ttl
        self.name = f"flood (TTL {ttl})"

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        out = self.network.query_flood(source, terms, self.ttl)
        return out.succeeded, float(out.messages)

    def search_batch(
        self,
        sources: np.ndarray,
        queries: Sequence[list[str]],
        *,
        n_workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized replay: one batched pass over the whole sample."""
        out = self.network.query_batch(
            sources, queries, ttl=self.ttl, n_workers=n_workers
        )
        return out.success, out.messages.astype(np.float64)


class WalkStrategy:
    """k-walker random walk."""

    def __init__(
        self, network: UnstructuredNetwork, *, walkers: int = 16, ttl: int = 64,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.walkers = walkers
        self.ttl = ttl
        self._seed = seed
        self._count = 0
        self.name = f"{walkers}-walker walk"

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        self._count += 1
        out = self.network.query_walk(
            source, terms, walkers=self.walkers, ttl=self.ttl,
            seed=derive(self._seed, "walk", self._count),
        )
        return out.succeeded, float(out.messages)


class ExpandingRingStrategy:
    """Iterative TTL deepening."""

    def __init__(
        self, network: UnstructuredNetwork, ttl_schedule: tuple[int, ...] = (1, 2, 3)
    ) -> None:
        self.network = network
        self.ttl_schedule = ttl_schedule
        self.name = "expanding ring"

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        out = expanding_ring_search(
            self.network, source, terms, ttl_schedule=self.ttl_schedule
        )
        return out.succeeded, float(out.messages)

    def search_batch(
        self,
        sources: np.ndarray,
        queries: Sequence[list[str]],
        *,
        n_workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized replay: every ring is a slice of one cached BFS."""
        out = self.network.query_batch(
            sources, queries, ttl_schedule=self.ttl_schedule, n_workers=n_workers
        )
        return out.success, out.messages.astype(np.float64)


class DhtStrategy:
    """Structured keyword lookup."""

    def __init__(self, index: KeywordIndex, *, intersection: str = "bloom") -> None:
        self.index = index
        self.intersection = intersection
        self.name = f"DHT ({intersection})"

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        out = self.index.query(
            terms, source % self.index.ring.n_nodes, intersection=self.intersection
        )
        return out.succeeded, float(out.messages)


class HybridStrategy:
    """Flood-then-DHT."""

    def __init__(self, hybrid: HybridSearch) -> None:
        self.hybrid = hybrid
        self.name = f"hybrid (TTL {hybrid.flood_ttl} -> DHT)"

    def search(self, source: int, terms: list[str]) -> tuple[bool, float]:
        out = self.hybrid.query(source, terms)
        return out.succeeded, float(out.messages)


def replay(
    bundle: TraceBundle,
    strategies: list[SearchStrategy],
    *,
    n_queries: int = 100,
    source_pool: np.ndarray | None = None,
    seed: int = 0,
    n_workers: int = 1,
) -> list[StrategyStats]:
    """Run every strategy over one identical query/source sample.

    Strategies exposing a ``search_batch`` method (floods, expanding
    rings) are replayed through the batched query engine — identical
    results, one deduplicated pass — with ``n_workers`` controlling
    its shared-memory fan-out.  The rest fall back to the per-query
    loop.
    """
    if not strategies:
        raise ValueError("need at least one strategy")
    if n_queries < 1:
        raise ValueError("n_queries must be positive")
    workload = bundle.workload
    rng = derive(seed, "replay")
    picks = rng.integers(0, workload.n_queries, size=n_queries)
    if source_pool is None:
        source_pool = np.arange(bundle.trace.n_peers)
    sources = source_pool[rng.integers(0, source_pool.size, size=n_queries)]
    queries = [workload.query_words(int(qi)) for qi in picks]

    results: list[StrategyStats] = []
    for strategy in strategies:
        batch = getattr(strategy, "search_batch", None)
        if batch is not None:
            ok, msgs = batch(sources, queries, n_workers=n_workers)
        else:
            ok = np.zeros(n_queries, dtype=bool)
            msgs = np.zeros(n_queries, dtype=np.float64)
            for i, src in enumerate(sources):
                ok[i], msgs[i] = strategy.search(int(src), queries[i])
        results.append(aggregate(strategy.name, ok, msgs))
    return results
