"""Shared experiment infrastructure.

Every experiment in :mod:`repro.core` is a pure function of an
explicit config dataclass (with a seed), so each paper figure/table is
regenerable bit-for-bit.  This module holds the common pieces: the
calibrated Fig. 8 network factory and the standard trace bundle the
workload experiments share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.overlay.content import SharedContentIndex
from repro.overlay.topology import Topology, two_tier_gnutella
from repro.runtime.cache import cached_call, config_digest
from repro.tracegen.catalog import CatalogConfig, MusicCatalog
from repro.tracegen.gnutella_trace import GnutellaShareTrace, GnutellaTraceConfig
from repro.tracegen.query_trace import (
    QueryWorkload,
    QueryWorkloadConfig,
    file_term_peer_counts,
)

__all__ = [
    "Fig8TopologyConfig",
    "build_fig8_topology",
    "TraceBundle",
    "build_trace_bundle",
    "build_content_index",
]


@dataclass(frozen=True)
class Fig8TopologyConfig:
    """The 40,000-node Gnutella network of the paper's §V simulation.

    Defaults are calibrated so that flooding from ultrapeer sources
    reproduces the paper's measured TTL reach profile (~0.05% @ TTL 1,
    >1,000 nodes @ TTL 3, ~26% @ TTL 4, ~83% @ TTL 5); see
    tests/core/test_reach.py.
    """

    n_nodes: int = 40_000
    ultrapeer_fraction: float = 0.3
    up_up_degree: float = 8.0
    leaf_up_connections: int = 3
    seed: int = 0
    #: Streaming generation block size (rows per derived RNG block).
    #: ``None`` keeps the batch draw; setting it selects a *different*
    #: deterministic graph (see ``two_tier_gnutella``), so it is part
    #: of the cache digest, not an execution knob.  Million-node runs
    #: need it — the batch path materializes the full int64 edge list.
    edge_block: int | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.edge_block is not None and self.edge_block < 1:
            raise ValueError("edge_block must be positive when set")


#: Bump when two_tier_gnutella's construction changes meaning (v2:
#: CSR indices narrowed to INDEX_DTYPE/int32 — cached int64 artifacts
#: must not be served).
_TOPOLOGY_CACHE_VERSION = 2


def build_fig8_topology(config: Fig8TopologyConfig | None = None) -> Topology:
    """Construct the calibrated two-tier simulation topology.

    Served from the on-disk artifact cache when this exact config was
    built before (``REPRO_CACHE=off`` disables; see
    :mod:`repro.runtime.cache`).
    """
    cfg = config or Fig8TopologyConfig()
    return cached_call(
        "fig8-topology",
        _TOPOLOGY_CACHE_VERSION,
        config_digest(cfg),
        lambda: two_tier_gnutella(
            cfg.n_nodes,
            ultrapeer_fraction=cfg.ultrapeer_fraction,
            up_up_degree=cfg.up_up_degree,
            leaf_up_connections=cfg.leaf_up_connections,
            seed=cfg.seed,
            edge_block=cfg.edge_block,
        ),
    )


@dataclass
class TraceBundle:
    """The standard data bundle: catalog + share trace + query workload."""

    catalog: MusicCatalog
    trace: GnutellaShareTrace
    workload: QueryWorkload
    file_term_counts: np.ndarray


#: Bump when the trace generators change meaning.
#: v2: posting/instance arrays narrowed to INDEX_DTYPE and the bundle
#: joined the mmap-blob codec.
_BUNDLE_CACHE_VERSION = 2


def build_trace_bundle(
    catalog_config: CatalogConfig | None = None,
    trace_config: GnutellaTraceConfig | None = None,
    workload_config: QueryWorkloadConfig | None = None,
) -> TraceBundle:
    """Generate the calibrated default traces in one call.

    Served from the on-disk artifact cache when these exact configs
    were generated before (``None`` hashes as the defaults it stands
    for; ``REPRO_CACHE=off`` disables).
    """
    catalog_cfg = catalog_config or CatalogConfig()
    trace_cfg = trace_config or GnutellaTraceConfig()
    workload_cfg = workload_config or QueryWorkloadConfig()

    def compute() -> TraceBundle:
        catalog = MusicCatalog(catalog_cfg)
        trace = GnutellaShareTrace(catalog, trace_cfg)
        counts = file_term_peer_counts(trace)
        workload = QueryWorkload(catalog, counts, workload_cfg)
        return TraceBundle(
            catalog=catalog, trace=trace, workload=workload, file_term_counts=counts
        )

    return cached_call(
        "trace-bundle",
        _BUNDLE_CACHE_VERSION,
        config_digest(catalog_cfg, trace_cfg, workload_cfg),
        compute,
    )


#: Bump when SharedContentIndex construction (tokenization, posting
#: layout) changes meaning.  v2: posting arrays narrowed to
#: INDEX_DTYPE.
_CONTENT_CACHE_VERSION = 2


def build_content_index(
    trace: GnutellaShareTrace,
    *,
    stream_block: int | None = None,
    n_shards: int = 1,
) -> SharedContentIndex:
    """Build (or load) the content index over a share trace.

    Tokenizing every observed name dominates index construction at
    paper scale, so the index is served from the on-disk artifact
    cache, keyed on the trace's config digest — valid because the
    trace is a pure function of its configs (``REPRO_CACHE=off``
    disables; see :mod:`repro.runtime.cache`).

    ``stream_block`` / ``n_shards`` are pure execution knobs of the
    streaming builder (see :class:`SharedContentIndex`): every setting
    produces bitwise-identical arrays, so they are deliberately *not*
    part of the cache key — a cache hit serves the same index however
    it was first built.
    """
    return cached_call(
        "content-index",
        _CONTENT_CACHE_VERSION,
        config_digest(trace.catalog.config, trace.config),
        lambda: SharedContentIndex(
            trace, stream_block=stream_block, n_shards=n_shards
        ),
    )
