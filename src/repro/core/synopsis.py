"""Adaptive content synopses — the paper's proposed direction (§VII, ref [9]).

The position paper closes by sketching the fix its measurements
motivate: peers publish compact *synopses* of their content to their
neighbors, and the synopses are chosen **query-centrically** — biased
toward the terms users are currently searching for (including
transiently popular ones) instead of the terms that happen to be
common among files.  Because popular file terms and popular query
terms barely overlap (< 20% Jaccard), a content-centric synopsis
wastes its capacity summarizing terms nobody asks for.

The simulation: every peer owns a capacity-``B`` Bloom synopsis of a
*selected subset* of its file terms, shared with direct neighbors.  A
search is a budgeted synopsis-guided walk — at each hop the walker
prefers an unvisited neighbor whose synopsis claims all query terms.
Selection policies:

``random``
    no synopses at all (pure random walk baseline);
``content``
    each peer advertises its terms that are most popular *among files*
    network-wide (the content-centric strawman);
``static-query``
    terms most popular in the *historical* query workload (query-centric,
    no adaptation);
``adaptive``
    terms scored by an exponentially-decayed count of recently observed
    query terms, re-selected every epoch — this tracks transient bursts,
    per the authors' INFOCOM'08 follow-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import TraceBundle, build_trace_bundle
from repro.overlay.churn import ChurnTimeline
from repro.overlay.content import SharedContentIndex
from repro.overlay.topology import Topology, flat_random
from repro.utils.bloom import optimal_parameters
from repro.utils.rng import derive

__all__ = [
    "SynopsisConfig",
    "PolicyOutcome",
    "SynopsisResult",
    "PeerSynopses",
    "run_synopsis_experiment",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix(x: np.ndarray, salt: int) -> np.ndarray:
    z = (x.astype(np.uint64) + np.uint64(salt)) & _MASK64
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
    return z ^ (z >> np.uint64(31))


class PeerSynopses:
    """All peers' Bloom synopses as one bit matrix.

    Row ``p`` is peer ``p``'s filter; the layout makes "which peers
    claim term t" a single vectorized gather across the network, which
    is what the guided walk consults at every hop.
    """

    def __init__(self, n_peers: int, capacity: int, fp_rate: float = 0.02) -> None:
        self.m_bits, self.k_hashes = optimal_parameters(capacity, fp_rate)
        self.bits = np.zeros((n_peers, self.m_bits), dtype=bool)

    def _positions(self, term_ids: np.ndarray) -> np.ndarray:
        ids = np.atleast_1d(np.asarray(term_ids, dtype=np.uint64))
        h1 = _mix(ids, 0x9E3779B97F4A7C15)
        h2 = _mix(ids, 0xD1B54A32D192ED03) | np.uint64(1)
        j = np.arange(self.k_hashes, dtype=np.uint64)
        return ((h1[:, None] + j[None, :] * h2[:, None]) % np.uint64(self.m_bits)).astype(
            np.int64
        )

    def clear(self) -> None:
        """Drop every synopsis (epoch rebuild)."""
        self.bits[:] = False

    def add(self, peer: int, term_ids: np.ndarray) -> None:
        """Insert terms into one peer's synopsis."""
        if term_ids.size:
            self.bits[peer, self._positions(term_ids).ravel()] = True

    def peers_claiming(self, term_ids: np.ndarray) -> np.ndarray:
        """Bool vector over peers: synopsis contains *all* given terms."""
        pos = self._positions(term_ids)  # (n_terms, k)
        return self.bits[:, pos.ravel()].all(axis=1)


@dataclass(frozen=True)
class SynopsisConfig:
    """Parameters of the synopsis experiment."""

    #: synopsis capacity in terms — deliberately far below a peer's
    #: full vocabulary, which is what makes selection policy matter.
    capacity: int = 48
    fp_rate: float = 0.02
    walk_budget: int = 120
    n_queries: int = 600
    #: adaptive-rebuild epoch length.  Must be shorter than burst
    #: lifetimes (hours) or the adaptive policy reacts too late.
    epoch_s: float = 3600.0
    #: exponential decay applied to trending scores between epochs.
    decay: float = 0.5
    #: weight of the historical query-popularity prior the adaptive
    #: policy starts from (it then tracks recent terms on top).
    history_prior: float = 0.5
    avg_degree: float = 8.0
    #: fraction of the trace (by time) used to build the historical
    #: query-popularity scores; evaluation queries come from the rest,
    #: so the static-query policy never sees the future.
    train_fraction: float = 0.15
    policies: tuple[str, ...] = ("random", "content", "static-query", "adaptive")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.walk_budget < 1:
            raise ValueError("walk_budget must be positive")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        if self.history_prior < 0.0:
            raise ValueError("history_prior must be non-negative")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        known = {"random", "content", "static-query", "adaptive"}
        unknown = set(self.policies) - known
        if unknown:
            raise ValueError(f"unknown policies: {sorted(unknown)}")


@dataclass(frozen=True)
class PolicyOutcome:
    """Aggregate outcome of one selection policy.

    ``success_transient`` isolates queries injected by transient
    bursts — the class the adaptive policy exists for; ``nan`` when the
    sample contains none.
    """

    policy: str
    success_rate: float
    mean_messages: float
    mean_hops_to_hit: float
    success_transient: float
    success_persistent: float
    n_transient: int


@dataclass(frozen=True)
class SynopsisResult:
    """All policies, identical query sample and budget."""

    outcomes: list[PolicyOutcome]
    n_queries: int
    walk_budget: int

    def outcome(self, policy: str) -> PolicyOutcome:
        """Look up one policy's outcome."""
        for o in self.outcomes:
            if o.policy == policy:
                return o
        raise KeyError(policy)


def _peer_term_sets(content: SharedContentIndex) -> list[np.ndarray]:
    """Distinct term ids per peer."""
    terms = content._posting_terms
    peers = content.instance_peer[content._posting_instances]
    pairs = np.unique(peers.astype(np.int64) * content.term_index.n_terms + terms)
    peer_of_pair = pairs // content.term_index.n_terms
    term_of_pair = pairs % content.term_index.n_terms
    out: list[np.ndarray] = []
    boundaries = np.searchsorted(peer_of_pair, np.arange(content.n_peers + 1))
    for p in range(content.n_peers):
        out.append(term_of_pair[boundaries[p] : boundaries[p + 1]])
    return out


def _build_synopses(
    synopses: PeerSynopses,
    peer_terms: list[np.ndarray],
    scores: np.ndarray,
    capacity: int,
    include: np.ndarray | None = None,
) -> None:
    """Fill each peer's synopsis with its top-``capacity`` terms by score.

    ``include`` masks which peers advertise at all — under churn, only
    peers online at build time publish a synopsis.
    """
    synopses.clear()
    for p, terms in enumerate(peer_terms):
        if include is not None and not include[p]:
            continue
        if terms.size == 0:
            continue
        if terms.size <= capacity:
            chosen = terms
        else:
            order = np.argsort(scores[terms], kind="stable")[::-1]
            chosen = terms[order[:capacity]]
        synopses.add(p, chosen)


def _guided_walk(
    topology: Topology,
    source: int,
    claim: np.ndarray | None,
    is_match: np.ndarray,
    budget: int,
    rng: np.random.Generator,
    online: np.ndarray | None = None,
) -> tuple[bool, int]:
    """One budgeted walk; returns (succeeded, messages_used).

    ``online`` restricts which neighbors can be stepped to (and which
    peers can answer) under churn.
    """
    def answers(v: int) -> bool:
        return bool(is_match[v]) and (online is None or bool(online[v]))

    if answers(source):
        return True, 0
    visited = {source}
    current = source
    for step in range(1, budget + 1):
        neigh = topology.neighbors_of(current)
        if online is not None:
            neigh = neigh[online[neigh]]
        if neigh.size == 0:
            return False, step - 1
        nxt = -1
        if claim is not None:
            promising = neigh[claim[neigh]]
            fresh = promising[[int(v) not in visited for v in promising]]
            if fresh.size:
                nxt = int(fresh[rng.integers(0, fresh.size)])
        if nxt < 0:
            unvisited = neigh[[int(v) not in visited for v in neigh]]
            pool = unvisited if unvisited.size else neigh
            nxt = int(pool[rng.integers(0, pool.size)])
        visited.add(nxt)
        current = nxt
        if answers(current):
            return True, step
    return False, budget


def run_synopsis_experiment(
    bundle: TraceBundle | None = None,
    config: SynopsisConfig | None = None,
    *,
    topology: Topology | None = None,
    content: SharedContentIndex | None = None,
    churn: "ChurnTimeline | None" = None,
) -> SynopsisResult:
    """Compare synopsis-selection policies on the same query sample.

    Queries are drawn from the workload in time order and partitioned
    into epochs; the adaptive policy rebuilds its synopses at every
    epoch boundary from decayed query-term counts, while the static
    policies keep their initial selection.

    With a :class:`~repro.overlay.churn.ChurnTimeline`, only peers
    online at build time advertise synopses, walkers only traverse
    online peers, and queries originate at online peers — so static
    synopses go stale as the initial population churns out, while the
    adaptive policy re-advertises every epoch.
    """
    cfg = config or SynopsisConfig()
    if bundle is None:
        bundle = build_trace_bundle()
    if content is None:
        content = SharedContentIndex(bundle.trace)
    if topology is None:
        topology = flat_random(
            content.n_peers, cfg.avg_degree, derive(cfg.seed, "synopsis", "topology")
        )
    workload = bundle.workload
    rng = derive(cfg.seed, "synopsis", "queries")

    # Vocab-rank -> content-term-id mapping (-1 = term on no file).
    vocab_content = np.asarray(
        [
            content.term_id(w) if content.term_id(w) is not None else -1
            for w in workload.vocab_words
        ],
        dtype=np.int64,
    )

    # Train/eval split by time: historical scores from the prefix,
    # evaluation queries evenly sampled from the remainder.
    cutoff = cfg.train_fraction * workload.config.duration_s
    n_train = int(np.searchsorted(workload.timestamps, cutoff))
    train_terms = vocab_content[workload.term_ids[: workload.term_offsets[n_train]]]
    train_terms = train_terms[train_terms >= 0]

    eval_pool = np.arange(n_train, workload.n_queries, dtype=np.int64)
    if eval_pool.size < cfg.n_queries:
        raise ValueError("not enough post-training queries to sample")
    pick = eval_pool[
        np.linspace(0, eval_pool.size - 1, cfg.n_queries).astype(np.int64)
    ]
    query_terms: list[np.ndarray] = []  # content-term-id space
    for qi in pick:
        ids = vocab_content[workload.query_terms(int(qi))]
        query_terms.append(ids[ids >= 0])
    sources = rng.integers(0, content.n_peers, size=cfg.n_queries)

    # Ground-truth matching peers per query (file-level AND matching).
    match_masks: list[np.ndarray | None] = []
    for qi, ids in zip(pick, query_terms):
        ranks = workload.query_terms(int(qi))
        if ids.size < ranks.size or ids.size == 0:
            match_masks.append(None)  # an unknown term can match nothing
            continue
        words = [workload.vocab_words[int(r)] for r in ranks]
        peers = content.matching_peers(words)
        mask = np.zeros(content.n_peers, dtype=bool)
        mask[peers] = True
        match_masks.append(mask if peers.size else None)

    peer_terms = _peer_term_sets(content)
    n_terms = content.term_index.n_terms
    file_scores = content.term_peer_counts().astype(np.float64)
    # Historical query popularity (training prefix only).
    hist_scores = np.bincount(train_terms, minlength=n_terms).astype(np.float64)

    # Full-stream per-epoch term counts over the evaluation span: every
    # peer observes passing queries, so the adaptive trend learns from
    # the whole workload, not just the evaluated sample.
    duration = workload.config.duration_s
    n_epochs = max(1, int(np.ceil((duration - cutoff) / cfg.epoch_s)))
    epoch_of_query = np.clip(
        ((workload.timestamps - cutoff) / cfg.epoch_s).astype(np.int64), 0, n_epochs - 1
    )
    stream_terms = vocab_content[workload.term_ids]
    stream_epoch = np.repeat(epoch_of_query, np.diff(workload.term_offsets))
    keep = (stream_terms >= 0) & (np.repeat(workload.timestamps, np.diff(workload.term_offsets)) >= cutoff)
    epoch_counts = np.bincount(
        stream_epoch[keep] * n_terms + stream_terms[keep],
        minlength=n_epochs * n_terms,
    ).reshape(n_epochs, n_terms)

    # Evaluation queries grouped by epoch (pick is already time-ordered).
    query_epoch = np.clip(
        ((workload.timestamps[pick] - cutoff) / cfg.epoch_s).astype(np.int64),
        0,
        n_epochs - 1,
    )

    # Per-epoch churn state (None entries when churn is disabled).
    def epoch_time(e: int) -> float:
        return min(cutoff + e * cfg.epoch_s, duration - 1e-6)

    if churn is not None:
        if churn.n_peers != content.n_peers:
            raise ValueError("churn timeline must cover every peer")
        horizon = churn.config.horizon_s
        epoch_online = [
            churn.online_mask(min(epoch_time(e), horizon)) for e in range(n_epochs)
        ]
    else:
        epoch_online = [None] * n_epochs

    outcomes: list[PolicyOutcome] = []
    for policy in cfg.policies:
        synopses: PeerSynopses | None = None
        if policy != "random":
            synopses = PeerSynopses(content.n_peers, cfg.capacity, cfg.fp_rate)
            if policy == "content":
                _build_synopses(
                    synopses, peer_terms, file_scores, cfg.capacity, epoch_online[0]
                )
            elif policy == "static-query":
                _build_synopses(
                    synopses, peer_terms, hist_scores, cfg.capacity, epoch_online[0]
                )
        # The adaptive policy starts from (a scaled-down copy of) the
        # historical query popularity and layers recency on top; the
        # prior is normalized to roughly one epoch's worth of counts so
        # fresh bursts can actually displace it.
        epoch_volume = max(1.0, float(epoch_counts.sum()) / n_epochs)
        hist_total = float(hist_scores.sum())
        prior_scale = cfg.history_prior * epoch_volume / hist_total if hist_total else 0.0
        trend = hist_scores * prior_scale
        walk_rng = derive(cfg.seed, "synopsis", "walk", policy)
        successes = np.zeros(cfg.n_queries, dtype=bool)
        messages = np.zeros(cfg.n_queries, dtype=np.float64)
        hit_hops: list[int] = []
        q = 0
        for e in range(n_epochs):
            online = epoch_online[e]
            if policy == "adaptive" and (
                q < cfg.n_queries and query_epoch[q] == e
            ):
                _build_synopses(synopses, peer_terms, trend, cfg.capacity, online)
            while q < cfg.n_queries and query_epoch[q] == e:
                mask = match_masks[q]
                ids = query_terms[q]
                if mask is None:
                    messages[q] = cfg.walk_budget
                    q += 1
                    continue
                claim = (
                    synopses.peers_claiming(ids)
                    if synopses is not None and ids.size
                    else None
                )
                source = int(sources[q])
                if online is not None and not online[source]:
                    # The querier is by definition online: remap the
                    # sampled source deterministically onto the online set.
                    online_ids = np.flatnonzero(online)
                    if online_ids.size == 0:
                        messages[q] = cfg.walk_budget
                        q += 1
                        continue
                    source = int(online_ids[source % online_ids.size])
                ok, used = _guided_walk(
                    topology, source, claim, mask, cfg.walk_budget, walk_rng, online
                )
                successes[q] = ok
                messages[q] = used if ok else cfg.walk_budget
                if ok:
                    hit_hops.append(used)
                q += 1
            trend = trend * cfg.decay + epoch_counts[e]
        transient = workload.is_burst[pick]
        matchable = np.asarray([m is not None for m in match_masks])
        t_mask = transient & matchable
        p_mask = ~transient & matchable
        outcomes.append(
            PolicyOutcome(
                policy=policy,
                success_rate=float(successes.mean()),
                mean_messages=float(messages.mean()),
                mean_hops_to_hit=float(np.mean(hit_hops)) if hit_hops else float("nan"),
                success_transient=(
                    float(successes[t_mask].mean()) if t_mask.any() else float("nan")
                ),
                success_persistent=(
                    float(successes[p_mask].mean()) if p_mask.any() else float("nan")
                ),
                n_transient=int(t_mask.sum()),
            )
        )
    return SynopsisResult(
        outcomes=outcomes, n_queries=cfg.n_queries, walk_budget=cfg.walk_budget
    )
