"""Hybrid vs DHT evaluation — §V/§VII text claims (experiment T-HYBRID).

The paper's argument chain:

1. at TTL 3 a flood reaches over a thousand nodes (§V);
2. under the measured Zipf placement that flood succeeds only ~5%,
   where a uniform model with 0.1% replication predicts ~62%;
3. therefore a hybrid system pays the flood *and* the DHT lookup for
   ~95% of queries — strictly worse than the DHT alone.

This experiment measures each quantity on the calibrated simulator and
assembles the comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.core.flood_sim import PlacementSpec, run_flood_success
from repro.dht.chord import ChordRing
from repro.overlay.flooding import FloodDepthCache, flood_depths
from repro.overlay.topology import Topology
from repro.hybrid.cost_model import predicted_uniform_success
from repro.runtime.parallel import pmap
from repro.runtime.shm import SharedTopology, SharedTopologySpec, attach_topology
from repro.utils.rng import derive

__all__ = ["HybridEvalConfig", "HybridEvalResult", "evaluate_hybrid"]


@dataclass(frozen=True)
class HybridEvalConfig:
    """Parameters of the hybrid-vs-DHT comparison."""

    topology: Fig8TopologyConfig = field(default_factory=Fig8TopologyConfig)
    flood_ttl: int = 3
    n_eval_objects: int = 150
    n_flood_probes: int = 30
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    dht_lookup_samples: int = 200
    #: mean distinct terms per query, for DHT cost scaling.
    terms_per_query: float = 2.5
    seed: int = 0
    #: process-pool width for the flood probes and per-object floods
    #: (1 = serial, 0 = one per CPU); results are worker-count
    #: independent.
    n_workers: int = 1


@dataclass(frozen=True)
class HybridEvalResult:
    """Every quantity of the §V comparison."""

    flood_ttl: int
    nodes_reached: float
    flood_messages: float
    flood_success: float
    predicted_success_0p1pct: float
    dht_hops_per_lookup: float
    dht_messages_per_query: float
    hybrid_messages_per_query: float
    dht_only_messages_per_query: float

    @property
    def hybrid_overhead(self) -> float:
        """Hybrid cost relative to the pure DHT."""
        return self.hybrid_messages_per_query / self.dht_only_messages_per_query

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable (metric, value) rows."""
        return [
            ("flood TTL", str(self.flood_ttl)),
            ("nodes reached by flood", f"{self.nodes_reached:.0f}"),
            ("flood messages", f"{self.flood_messages:.0f}"),
            ("flood success (Zipf placement)", f"{self.flood_success:.3f}"),
            ("success predicted by uniform 0.1% model", f"{self.predicted_success_0p1pct:.3f}"),
            ("DHT hops per lookup", f"{self.dht_hops_per_lookup:.2f}"),
            ("DHT messages per query", f"{self.dht_messages_per_query:.1f}"),
            ("hybrid messages per query", f"{self.hybrid_messages_per_query:.1f}"),
            ("DHT-only messages per query", f"{self.dht_only_messages_per_query:.1f}"),
            ("hybrid / DHT cost ratio", f"{self.hybrid_overhead:.1f}x"),
        ]


def _probe_fallback(topology: Topology, source: int, ttl: int) -> tuple[float, float]:
    """One probe flood: (peers reached, messages sent)."""
    depth, msgs = flood_depths(topology, source, ttl)
    return float(np.count_nonzero(depth >= 0) - 1), float(msgs)


def _probe_task(
    source: int,
    rng: np.random.Generator,
    *,
    spec: SharedTopologySpec,
    ttl: int,
) -> tuple[float, float]:
    """Worker task: one deterministic probe flood (``rng`` unused)."""
    return _probe_fallback(attach_topology(spec), source, ttl)


def evaluate_hybrid(config: HybridEvalConfig | None = None) -> HybridEvalResult:
    """Measure the hybrid-vs-DHT comparison on the calibrated simulator.

    ``config.n_workers > 1`` fans the probe floods and the per-object
    success floods out over a process pool; every worker count yields
    the same result.
    """
    cfg = config or HybridEvalConfig()
    topology = build_fig8_topology(cfg.topology)
    rng = derive(cfg.seed, "hybrid-eval")

    # Flood phase: reach and message cost at the hybrid's TTL.
    forwarding = np.flatnonzero(topology.forwards)
    sources = forwarding[rng.integers(0, forwarding.size, size=cfg.n_flood_probes)]
    source_list = [int(s) for s in sources]
    if cfg.n_workers == 1:
        # Serial path: probes share one BFS cache (repeated sources
        # flood once), with results identical to _probe_fallback.
        cache = FloodDepthCache(topology, max_entries=max(1, len(source_list)))
        probes = []
        for s in source_list:
            entry = cache.entry(s, cfg.flood_ttl)
            probes.append(
                (
                    float(entry.reached(cfg.flood_ttl) - 1),
                    float(entry.messages(cfg.flood_ttl)),
                )
            )
    else:
        with SharedTopology(topology) as share:
            task = partial(_probe_task, spec=share.spec, ttl=cfg.flood_ttl)
            probes = pmap(
                task,
                source_list,
                seed=cfg.seed,
                key="hybrid-probes",
                n_workers=cfg.n_workers,
            )
    reached = np.asarray([p[0] for p in probes])
    messages = np.asarray([p[1] for p in probes])

    # Flood success under the measured Zipf placement.
    curve = run_flood_success(
        topology,
        cfg.placement,
        ttls=(cfg.flood_ttl,),
        n_eval_objects=cfg.n_eval_objects,
        seed=cfg.seed,
        n_workers=cfg.n_workers,
    )
    flood_success = float(curve.success[0])

    # What the optimistic uniform model would have predicted.
    predicted = predicted_uniform_success(0.001, int(reached.mean()))

    # DHT lookup cost on a ring the size of the network.
    ring = ChordRing(topology.n_nodes, seed=cfg.seed)
    hops = ring.mean_lookup_hops(cfg.dht_lookup_samples, seed=cfg.seed)
    dht_per_query = hops * cfg.terms_per_query

    hybrid = float(messages.mean()) + (1.0 - flood_success) * dht_per_query
    return HybridEvalResult(
        flood_ttl=cfg.flood_ttl,
        nodes_reached=float(reached.mean()),
        flood_messages=float(messages.mean()),
        flood_success=flood_success,
        predicted_success_0p1pct=predicted,
        dht_hops_per_lookup=float(hops),
        dht_messages_per_query=float(dht_per_query),
        hybrid_messages_per_query=hybrid,
        dht_only_messages_per_query=float(dht_per_query),
    )
