"""Mismatch sensitivity: the paper's counterfactual, quantified.

The position's causal chain is: query/annotation mismatch (Fig. 7)
⇒ queries target effectively-unreplicated content ⇒ floods fail
(Fig. 8) ⇒ hybrids lose to DHTs.  This experiment turns the first
arrow into a dial: sweep the workload's ``match_fraction`` (how much
of the query vocabulary aligns with popular file terms), measure the
resulting Fig. 7 similarity level, and measure what an oracle-limited
search could resolve — showing how much of the search failure is
attributable to the mismatch itself rather than to Zipf placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.analysis.popularity import top_k_set
from repro.analysis.jaccard import jaccard
from repro.analysis.resolvability import measure_resolvability
from repro.core.experiment import build_content_index
from repro.overlay.content import SharedContentIndex
from repro.runtime.parallel import pmap
from repro.tracegen.catalog import CatalogConfig, MusicCatalog
from repro.tracegen.gnutella_trace import GnutellaShareTrace, GnutellaTraceConfig
from repro.tracegen.query_trace import (
    QueryWorkload,
    QueryWorkloadConfig,
    file_term_peer_counts,
)

__all__ = ["MismatchSensitivityConfig", "SensitivityPoint", "run_mismatch_sensitivity"]


@dataclass(frozen=True)
class MismatchSensitivityConfig:
    """Sweep parameters."""

    match_fractions: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 1.0)
    n_resolvability_samples: int = 600
    top_k: int = 100
    catalog: CatalogConfig | None = None
    trace: GnutellaTraceConfig | None = None
    seed: int = 0
    #: process-pool width for the sweep points (1 = serial, 0 = one
    #: per CPU); results are worker-count independent because every
    #: point is a pure function of (match_fraction, seed).
    n_workers: int = 1

    def __post_init__(self) -> None:
        if not self.match_fractions:
            raise ValueError("need at least one match fraction")
        if any(not 0.0 <= m <= 1.0 for m in self.match_fractions):
            raise ValueError("match fractions must be probabilities")


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep point: workload alignment in, search feasibility out."""

    match_fraction: float
    #: measured Fig. 7-style overall query/file similarity.
    query_file_similarity: float
    #: fraction of queries with zero results even for an oracle.
    unresolvable_fraction: float
    #: fraction of queries rare by the Loo et al. threshold.
    rare_fraction: float
    #: median peers holding any result.
    median_result_peers: float


def _sweep_point(
    mf: float,
    rng: np.random.Generator,
    *,
    catalog: MusicCatalog,
    term_counts: np.ndarray,
    content: SharedContentIndex,
    popular_file: set[str],
    top_k: int,
    n_samples: int,
    seed: int,
) -> SensitivityPoint:
    """One sweep point — a pure function of ``(mf, seed)``.

    All randomness flows through the explicit ``seed`` (the workload
    and resolvability sampling derive their own streams from it), so
    the ``pmap``-supplied task ``rng`` goes unused and serial/parallel
    sweeps agree bitwise.
    """
    workload = QueryWorkload(
        catalog,
        term_counts,
        QueryWorkloadConfig(match_fraction=mf, seed=seed),
    )
    totals = np.zeros(workload.config.vocab_size, dtype=np.int64)
    np.add.at(totals, workload.term_ids, 1)
    query_top = {workload.vocab_words[i] for i in top_k_set(totals, top_k)}
    similarity = jaccard(query_top, popular_file)
    resolv = measure_resolvability(
        workload,
        content,
        n_samples=n_samples,
        seed=seed,
    )
    answered = resolv.peer_counts[resolv.result_counts > 0]
    return SensitivityPoint(
        match_fraction=mf,
        query_file_similarity=similarity,
        unresolvable_fraction=resolv.unresolvable_fraction,
        rare_fraction=resolv.rare_fraction,
        median_result_peers=float(np.median(answered)) if answered.size else 0.0,
    )


def run_mismatch_sensitivity(
    config: MismatchSensitivityConfig | None = None,
) -> list[SensitivityPoint]:
    """Sweep workload/annotation alignment; measure search feasibility.

    The share trace is generated once; each sweep point regenerates
    only the query workload with a different ``match_fraction``.  With
    ``config.n_workers > 1`` the points run on a process pool (each
    point is seed-pure, so the sweep is worker-count independent).
    """
    cfg = config or MismatchSensitivityConfig()
    catalog = MusicCatalog(cfg.catalog)
    trace = GnutellaShareTrace(catalog, cfg.trace)
    content = build_content_index(trace)
    term_counts = file_term_peer_counts(trace)
    popular_file = {
        catalog.lexicon.word(int(i)) for i in top_k_set(term_counts, cfg.top_k)
    }
    task = partial(
        _sweep_point,
        catalog=catalog,
        term_counts=term_counts,
        content=content,
        popular_file=popular_file,
        top_k=cfg.top_k,
        n_samples=cfg.n_resolvability_samples,
        seed=cfg.seed,
    )
    return pmap(
        task,
        cfg.match_fractions,
        seed=cfg.seed,
        key="mismatch-sensitivity",
        n_workers=cfg.n_workers,
    )
