"""The query/annotation mismatch pipeline — paper Figs. 5, 6, 7.

Orchestrates the trace bundle and the temporal analyses into the three
§IV results:

* **Fig. 5** — number of transiently popular query terms per
  evaluation interval, for several interval lengths (low mean, high
  variance);
* **Fig. 6** — consecutive-interval Jaccard of the popular query-term
  sets (unstable early, then > 90%);
* **Fig. 7** — per-interval Jaccard between popular query terms and
  popular file-annotation terms (< 20% throughout).

File terms come from tokenizing the *observed* (noisy) names via the
shared content index — the same measurement path the paper used — and
are compared with query terms as strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.jaccard import jaccard, jaccard_timeline
from repro.analysis.popularity import top_k_set
from repro.analysis.temporal import (
    IntervalCounts,
    TransientReport,
    detect_transient_terms,
    interval_term_counts,
    popular_sets_cumulative,
)
from repro.core.experiment import TraceBundle, build_trace_bundle
from repro.overlay.content import SharedContentIndex

__all__ = ["MismatchConfig", "MismatchReport", "run_mismatch_analysis"]


@dataclass(frozen=True)
class MismatchConfig:
    """Parameters of the §IV analysis."""

    #: evaluation interval lengths, seconds (Fig. 5 sweeps these).
    intervals_s: tuple[float, ...] = (600.0, 1800.0, 3600.0, 7200.0)
    #: the interval Figs. 6 and 7 are plotted at (paper: 60 minutes).
    primary_interval_s: float = 3600.0
    #: size of the "popular" sets.
    top_k: int = 100
    #: transient detection parameters (see analysis.temporal).
    train_fraction: float = 0.1
    z_threshold: float = 6.0
    min_count: int = 5

    def __post_init__(self) -> None:
        if self.primary_interval_s not in self.intervals_s:
            raise ValueError("primary_interval_s must be one of intervals_s")
        if self.top_k < 1:
            raise ValueError("top_k must be positive")


@dataclass(frozen=True)
class MismatchReport:
    """All series of Figs. 5-7 plus the headline scalars."""

    config: MismatchConfig
    #: Fig. 5: interval length -> per-evaluation-interval transient counts.
    transient_counts: dict[float, np.ndarray]
    transient_reports: dict[float, TransientReport]
    #: Fig. 6: consecutive-interval Jaccard of popular query terms.
    stability_timeline: np.ndarray
    #: Fig. 7: per-interval Jaccard of query terms vs popular file terms.
    file_similarity_timeline: np.ndarray
    #: overall Jaccard between whole-trace popular query and file terms.
    overall_similarity: float
    #: per-interval fraction of observed query terms that exist on ANY
    #: file — the paper's "similarity between the query terms for the
    #: interval and the terms of all shared objects" (~5%..coverage
    #: readings vary; both the Jaccard and coverage views stay low).
    coverage_timeline: np.ndarray

    @property
    def stability_after_warmup(self) -> float:
        """Mean Fig. 6 Jaccard after the stabilization prefix."""
        series = self.stability_timeline
        warm = max(2, series.size // 10)
        return float(np.nanmean(series[warm:]))

    @property
    def max_file_similarity(self) -> float:
        """Largest Fig. 7 value — the paper's '< 20%' claim bound."""
        return float(np.nanmax(self.file_similarity_timeline))


def _popular_file_terms(content: SharedContentIndex, k: int) -> set[str]:
    """Top-k file terms by distinct-peer count, as strings (F*)."""
    counts = content.term_peer_counts()
    return {content.term_index.term_string(t) for t in top_k_set(counts, k)}


def run_mismatch_analysis(
    bundle: TraceBundle | None = None,
    config: MismatchConfig | None = None,
    *,
    content: SharedContentIndex | None = None,
) -> MismatchReport:
    """Run the full §IV pipeline on a trace bundle."""
    cfg = config or MismatchConfig()
    if bundle is None:
        bundle = build_trace_bundle()
    workload = bundle.workload
    if content is None:
        content = SharedContentIndex(bundle.trace)

    def counts_at(interval_s: float) -> IntervalCounts:
        return interval_term_counts(
            workload.timestamps,
            workload.term_offsets,
            workload.term_ids,
            n_terms=workload.config.vocab_size,
            interval_s=interval_s,
            duration_s=workload.config.duration_s,
        )

    # Fig. 5 — transient term counts per interval length.
    transient_counts: dict[float, np.ndarray] = {}
    transient_reports: dict[float, TransientReport] = {}
    for interval_s in cfg.intervals_s:
        report = detect_transient_terms(
            counts_at(interval_s),
            train_fraction=cfg.train_fraction,
            z_threshold=cfg.z_threshold,
            min_count=cfg.min_count,
        )
        transient_counts[interval_s] = report.counts
        transient_reports[interval_s] = report

    # Fig. 6 — popular-set stability at the primary interval.
    primary = counts_at(cfg.primary_interval_s)
    popular = popular_sets_cumulative(primary, k=cfg.top_k)
    stability = jaccard_timeline(popular)

    # Fig. 7 — per-interval popular query terms vs popular file terms.
    file_terms = _popular_file_terms(content, cfg.top_k)
    per_interval_words = [
        {workload.vocab_words[i] for i in top_k_set(primary.counts[t], cfg.top_k)}
        for t in range(primary.n_intervals)
    ]
    file_similarity = np.asarray(
        [jaccard(words, file_terms) for words in per_interval_words]
    )

    # §IV-C scalar: how many observed query terms exist on any file.
    exists_on_a_file = np.asarray(
        [content.term_id(w) is not None for w in workload.vocab_words]
    )
    coverage = np.asarray(
        [
            float(exists_on_a_file[np.flatnonzero(primary.counts[t] > 0)].mean())
            if (primary.counts[t] > 0).any()
            else float("nan")
            for t in range(primary.n_intervals)
        ]
    )

    total_counts = primary.totals()
    overall_query_words = {
        workload.vocab_words[i] for i in top_k_set(total_counts, cfg.top_k)
    }
    overall = jaccard(overall_query_words, file_terms)

    return MismatchReport(
        config=cfg,
        transient_counts=transient_counts,
        transient_reports=transient_reports,
        stability_timeline=stability,
        file_similarity_timeline=file_similarity,
        overall_similarity=overall,
        coverage_timeline=coverage,
    )
