"""Result export: regenerate every paper artifact into a results directory.

A downstream user who wants to plot the figures needs the raw series,
not console tables.  ``export_all`` runs the main experiments and
writes one CSV per figure/table plus a JSON manifest of headline
scalars — the machine-readable counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.obs import span

__all__ = ["write_csv", "export_all"]


def write_csv(path: str | Path, headers: list[str], rows: list[tuple]) -> None:
    """Write one CSV file (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all(out_dir: str | Path, *, seed: int = 0, quick: bool = True) -> dict:
    """Run the main experiments and write their data under ``out_dir``.

    Returns the manifest dict (also written to ``manifest.json``).
    ``quick`` trims the Monte-Carlo sample counts for interactive use.
    """
    from repro.analysis.replication import summarize_replication
    from repro.core.experiment import build_trace_bundle
    from repro.core.flood_sim import FloodSimConfig, run_fig8
    from repro.core.hybrid_eval import HybridEvalConfig, evaluate_hybrid
    from repro.core.mismatch import run_mismatch_analysis
    from repro.core.reach import ReachConfig, measure_reach
    from repro.overlay.content import SharedContentIndex
    from repro.utils.stats import ccdf

    out = Path(out_dir)
    n_eval = 60 if quick else 200
    manifest: dict = {"seed": seed, "quick": quick}

    with span("export.trace"):
        bundle = build_trace_bundle()
        content = SharedContentIndex(bundle.trace)

    # FIG1: replica CCDF.
    with span("export.fig1"):
        counts = bundle.trace.replica_counts()
        live = counts[counts > 0]
        x, p = ccdf(live)
        write_csv(out / "fig1_replica_ccdf.csv", ["replicas", "p_at_least"],
                  list(zip(x.tolist(), p.tolist())))
        summary = summarize_replication(live, bundle.trace.n_peers)
    manifest["fig1"] = {
        "singleton_fraction": summary.singleton_fraction,
        "mean_replicas": summary.mean_replicas,
        "unique_names": summary.n_objects,
    }

    # FIG3: term CCDF.
    with span("export.fig3"):
        term_counts = content.term_peer_counts()
        tx, tp = ccdf(term_counts[term_counts > 0])
        write_csv(out / "fig3_term_ccdf.csv", ["peers_with_term", "p_at_least"],
                  list(zip(tx.tolist(), tp.tolist())))

    # FIG5-7: mismatch pipeline series.
    with span("export.mismatch"):
        report = run_mismatch_analysis(bundle, content=content)
    for interval_s, series in report.transient_counts.items():
        write_csv(
            out / f"fig5_transients_{int(interval_s)}s.csv",
            ["interval_index", "transient_terms"],
            list(enumerate(series.tolist())),
        )
    write_csv(
        out / "fig6_stability.csv",
        ["interval_index", "jaccard"],
        [(i, v) for i, v in enumerate(report.stability_timeline.tolist())],
    )
    write_csv(
        out / "fig7_query_file_similarity.csv",
        ["interval_index", "jaccard"],
        [(i, v) for i, v in enumerate(report.file_similarity_timeline.tolist())],
    )
    manifest["fig6_stability_after_warmup"] = report.stability_after_warmup
    manifest["fig7_max_similarity"] = report.max_file_similarity

    # FIG8: all success curves.
    with span("export.fig8"):
        fig8 = run_fig8(FloodSimConfig(n_eval_objects=n_eval, seed=seed))
    rows = []
    for i, ttl in enumerate(fig8.curves[0].ttls):
        rows.append(tuple([ttl] + [float(c.success[i]) for c in fig8.curves]))
    write_csv(
        out / "fig8_flood_success.csv",
        ["ttl"] + [c.label for c in fig8.curves],
        rows,
    )
    manifest["fig8_zipf_ttl3"] = float(fig8.curve("Zipf").success[2])

    # T-REACH and T-HYBRID.
    with span("export.reach"):
        reach = measure_reach(ReachConfig(n_sources=20 if quick else 50, seed=seed))
        write_csv(
            out / "table_reach.csv",
            ["ttl", "fraction", "nodes"],
            reach.as_rows(),
        )
    with span("export.hybrid"):
        hybrid = evaluate_hybrid(HybridEvalConfig(n_eval_objects=n_eval, seed=seed))
        write_csv(out / "table_hybrid.csv", ["metric", "value"], hybrid.as_rows())
    manifest["hybrid_overhead"] = hybrid.hybrid_overhead
    manifest["flood_success_ttl3"] = hybrid.flood_success

    (out / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return manifest
