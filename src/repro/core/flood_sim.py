"""Flood success-rate simulation — paper Fig. 8 (experiment FIG8).

The paper varies the query TTL on a 40,000-node Gnutella network and
compares success rates when objects are placed uniformly at random
(1/4/9/19/39 replicas) versus with the Zipf replica-count distribution
measured in the crawl (mean ≈ 5 replicas).  The headline: the Zipf
curve hugs the *lowest* uniform-replication curve, because the median
object has ~1 replica no matter how fat the head is.

Implementation note: instead of flooding from every candidate source,
we run one multi-source BFS *from the replica set* per evaluated
object.  On an undirected topology with forwarding interiors, a source
``s`` finds a replica within TTL ``t`` iff ``depth(s) <= t`` in that
BFS — so a single BFS yields the success probability over all sources
and all TTLs at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.obs import span
from repro.overlay.flooding import flood_depths
from repro.overlay.topology import Topology
from repro.runtime.cache import cached_call, config_digest
from repro.runtime.parallel import pmap
from repro.runtime.shards import ShardedFloodRunner
from repro.runtime.shm import SharedTopology, SharedTopologySpec, attach_topology
from repro.utils.rng import derive

__all__ = [
    "PlacementSpec",
    "zipf_replica_counts",
    "FloodSimConfig",
    "FloodSimCurve",
    "FloodSimResult",
    "run_flood_success",
    "run_fig8",
]


@dataclass(frozen=True)
class PlacementSpec:
    """How object replicas are placed.

    ``kind == "uniform"``: every object has exactly ``n_replicas``
    copies on uniformly random nodes.

    ``kind == "zipf"``: an object universe of ``universe`` objects has
    replica counts following a truncated Zipf with ``exponent``,
    floored at one copy and scaled so the mean is ``mean_replicas``
    (the paper's measured mean of 5).

    ``query_model`` selects which object a query targets:
    ``"uniform"`` (any existing object equally — the paper's setting),
    ``"popularity"`` (proportional to replica count — the optimistic
    assumption of prior work), or ``"mismatch"`` (Zipf query popularity
    *independently permuted* against replica counts — the paper's
    measured query/annotation disconnect).
    """

    kind: str = "zipf"
    n_replicas: int = 1
    universe: int = 10_000
    exponent: float = 1.0
    mean_replicas: float = 5.0
    query_model: str = "uniform"

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "zipf"):
            raise ValueError(f"unknown placement kind: {self.kind!r}")
        if self.query_model not in ("uniform", "popularity", "mismatch"):
            raise ValueError(f"unknown query model: {self.query_model!r}")
        if self.kind == "uniform" and self.n_replicas < 1:
            raise ValueError("uniform placement needs at least one replica")
        if self.kind == "zipf":
            if self.universe < 2:
                raise ValueError("zipf placement needs a universe of >= 2 objects")
            if self.mean_replicas < 1.0:
                raise ValueError("mean_replicas must be >= 1")

    def label(self) -> str:
        """Legend label matching the paper's Fig. 8."""
        if self.kind == "uniform":
            return f"Uniform ({self.n_replicas} replicas)"
        if self.query_model == "uniform":
            return "Zipf"
        return f"Zipf ({self.query_model} queries)"


def zipf_replica_counts(universe: int, exponent: float, mean_replicas: float) -> np.ndarray:
    """Integer replica counts: Zipf head, floor of one, target mean.

    Solves for the scale ``K`` such that
    ``mean(max(1, round(K / rank^s))) == mean_replicas`` by bisection;
    monotonicity in ``K`` makes this exact to integer rounding.
    """
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks**-exponent

    def mean_for(k: float) -> float:
        return float(np.maximum(1, np.rint(k * weights)).mean())

    lo, hi = 0.0, 4.0 * mean_replicas
    while mean_for(hi) < mean_replicas:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for sane inputs
            raise RuntimeError("replica-count calibration diverged")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if mean_for(mid) < mean_replicas:
            lo = mid
        else:
            hi = mid
    return np.maximum(1, np.rint(hi * weights)).astype(np.int64)


@dataclass(frozen=True)
class FloodSimConfig:
    """Parameters of a Fig. 8 run.

    ``n_workers`` controls the process-pool fan-out of the per-object
    floods (1 = serial, 0 = one per CPU).  ``n_shards > 1`` partitions
    the topology into that many node-range shards and runs every BFS
    through the shard-parallel driver (``n_workers`` then sizes the
    per-level expansion pool instead of a per-object pool).  Both are
    execution knobs only: every worker and shard count produces
    bitwise-identical curves, and both are excluded from the
    artifact-cache key.
    """

    topology: Fig8TopologyConfig = field(default_factory=Fig8TopologyConfig)
    ttls: tuple[int, ...] = (1, 2, 3, 4, 5)
    n_eval_objects: int = 150
    uniform_replicas: tuple[int, ...] = (1, 4, 9, 19, 39)
    zipf: PlacementSpec = field(default_factory=PlacementSpec)
    seed: int = 0
    n_workers: int = 1
    n_shards: int = 1


@dataclass(frozen=True)
class FloodSimCurve:
    """One success-rate curve."""

    label: str
    ttls: tuple[int, ...]
    success: np.ndarray


@dataclass(frozen=True)
class FloodSimResult:
    """All Fig. 8 curves."""

    curves: list[FloodSimCurve]

    def curve(self, label: str) -> FloodSimCurve:
        """Look a curve up by its legend label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(label)


def _profile_from_depth(
    depth: np.ndarray, forwards: np.ndarray, replicas: np.ndarray, max_ttl: int
) -> np.ndarray:
    """Success profile given a replica-set BFS depth map.

    A source succeeds at TTL ``t`` when its depth is within ``t``.
    Sources already holding a replica are excluded (they would not
    search for it).  Shared by the single-segment and sharded paths:
    equal depth maps give equal profiles.
    """
    eligible = forwards.copy()
    eligible[replicas] = False
    n_sources = int(eligible.sum())
    if n_sources == 0:
        raise ValueError("no eligible query sources")
    d = depth[eligible]
    found_at = np.bincount(d[d >= 1], minlength=max_ttl + 1)
    return np.cumsum(found_at)[1:] / n_sources  # index t-1 => TTL t


def _success_profile(
    topology: Topology, replicas: np.ndarray, max_ttl: int
) -> np.ndarray:
    """P(flood from a random ultrapeer source finds a replica) per TTL.

    One multi-source BFS from the replica set.
    """
    depth, _ = flood_depths(topology, replicas, max_ttl)
    return _profile_from_depth(depth, topology.forwards, replicas, max_ttl)


def _success_profile_sharded(
    runner: ShardedFloodRunner, replicas: np.ndarray, max_ttl: int
) -> np.ndarray:
    """:func:`_success_profile` through the shard-parallel driver."""
    depth, _ = runner.flood_depths(replicas, max_ttl)
    return _profile_from_depth(
        depth, runner.shard_set.forwards, replicas, max_ttl
    )


def _sample_objects(
    spec: PlacementSpec, counts: np.ndarray, n_eval: int, rng: np.random.Generator
) -> np.ndarray:
    if spec.query_model == "uniform":
        return rng.integers(0, counts.size, size=n_eval)
    if spec.query_model == "popularity":
        p = counts / counts.sum()
        return rng.choice(counts.size, size=n_eval, p=p)
    # mismatch: Zipf query popularity over a random permutation of the
    # objects — the query-popular objects are not the replicated ones.
    perm = rng.permutation(counts.size)
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    q = ranks**-spec.exponent
    q /= q.sum()
    return perm[rng.choice(counts.size, size=n_eval, p=q)]


def _profile_task(
    replicas: np.ndarray,
    *,
    spec: SharedTopologySpec,
    max_ttl: int,
) -> np.ndarray:
    """Worker task: one multi-source BFS against the shared topology.

    The flood is a pure function of the (pre-drawn) replica set — the
    replica placement randomness stays on the coordinator's stream,
    which is what makes serial and parallel runs bitwise-identical —
    so the task runs with ``needs_rng=False``.
    """
    return _success_profile(attach_topology(spec), replicas, max_ttl)


def run_flood_success(
    topology: Topology,
    spec: PlacementSpec,
    *,
    ttls: tuple[int, ...] = (1, 2, 3, 4, 5),
    n_eval_objects: int = 150,
    seed: int = 0,
    n_workers: int = 1,
    shared: SharedTopology | None = None,
    runner: ShardedFloodRunner | None = None,
) -> FloodSimCurve:
    """Estimate the success-rate curve for one placement spec.

    All placement randomness is drawn up front on a single stream
    derived from ``seed`` (exactly the stream the serial implementation
    consumed); with ``n_workers > 1`` only the deterministic per-object
    floods fan out, reading the topology from shared memory.  Pass a
    pre-published ``shared`` handle to amortize the segment copy across
    several curves on the same topology, or a sharded ``runner`` to
    run each replica-set BFS shard-parallel instead (the per-object
    fan-out is then skipped — parallelism lives inside each flood).
    """
    rng = derive(seed, "floodsim", spec.label())
    max_ttl = int(max(ttls))
    n = topology.n_nodes
    if spec.kind == "uniform":
        sizes = np.full(n_eval_objects, spec.n_replicas, dtype=np.int64)
    else:
        counts = zipf_replica_counts(spec.universe, spec.exponent, spec.mean_replicas)
        objects = _sample_objects(spec, counts, n_eval_objects, rng)
        sizes = counts[objects]
    replica_sets = [rng.choice(n, size=min(int(s), n), replace=False) for s in sizes]
    if runner is not None:
        profiles = [
            _success_profile_sharded(runner, r, max_ttl) for r in replica_sets
        ]
    elif n_workers <= 1 or len(replica_sets) <= 1:
        profiles = [_success_profile(topology, r, max_ttl) for r in replica_sets]
    else:
        share = SharedTopology(topology) if shared is None else shared
        try:
            task = partial(_profile_task, spec=share.spec, max_ttl=max_ttl)
            profiles = pmap(
                task,
                replica_sets,
                seed=seed,
                key=f"floodsim-bfs/{spec.label()}",
                n_workers=n_workers,
                needs_rng=False,
            )
        finally:
            if shared is None:
                share.close()
    acc = np.zeros(max_ttl, dtype=np.float64)
    for profile in profiles:
        acc += profile
    acc /= n_eval_objects
    ttl_idx = np.asarray(ttls, dtype=np.int64) - 1
    return FloodSimCurve(label=spec.label(), ttls=tuple(ttls), success=acc[ttl_idx])


#: Bump when the Fig. 8 computation changes meaning.
_FIG8_CACHE_VERSION = 1


def _run_fig8_uncached(cfg: FloodSimConfig) -> FloodSimResult:
    topology = build_fig8_topology(cfg.topology)
    specs = [cfg.zipf] + [
        PlacementSpec(kind="uniform", n_replicas=r) for r in cfg.uniform_replicas
    ]

    def curves_with(
        shared: SharedTopology | None, runner: ShardedFloodRunner | None
    ) -> list[FloodSimCurve]:
        return [
            run_flood_success(
                topology,
                spec,
                ttls=cfg.ttls,
                n_eval_objects=cfg.n_eval_objects,
                seed=cfg.seed,
                n_workers=cfg.n_workers,
                shared=shared,
                runner=runner,
            )
            for spec in specs
        ]

    if cfg.n_shards > 1:
        # Shard the topology once; every curve's replica-set BFS runs
        # through the shard-parallel driver (workers expand shard
        # frontiers concurrently when n_workers > 1).
        with ShardedFloodRunner(
            topology, n_shards=cfg.n_shards, n_workers=cfg.n_workers
        ) as sharded:
            return FloodSimResult(curves=curves_with(None, sharded))
    if cfg.n_workers == 1:
        return FloodSimResult(curves=curves_with(None, None))
    # Publish the topology once; all six curves' worker floods attach
    # to the same segments.
    with SharedTopology(topology) as share:
        return FloodSimResult(curves=curves_with(share, None))


def run_fig8(config: FloodSimConfig | None = None) -> FloodSimResult:
    """Regenerate every curve of the paper's Fig. 8.

    The result is served from the artifact cache when an identical
    config (ignoring the ``n_workers``/``n_shards`` execution knobs)
    was computed before; set ``REPRO_CACHE=off`` to force
    recomputation.
    """
    cfg = config or FloodSimConfig()
    digest = config_digest(cfg, exclude=("n_workers", "n_shards"))
    with span("fig8.run", n_eval_objects=cfg.n_eval_objects, workers=cfg.n_workers):
        return cached_call(
            "fig8-result", _FIG8_CACHE_VERSION, digest, lambda: _run_fig8_uncached(cfg)
        )
