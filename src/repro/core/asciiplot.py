"""Terminal plotting: log-log scatter and line charts in ASCII.

The paper's figures are log-log popularity plots and time series; the
benches print tables, but a shape is easier to eyeball as a picture.
No plotting dependency is available offline, so this renders charts
into character grids — enough to see a Zipf tail or a success-curve
crossover directly in the terminal.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_loglog", "line_chart"]


def _render(grid: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in grid)


def scatter_loglog(
    x: np.ndarray,
    y: np.ndarray,
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    marker: str = "*",
) -> str:
    """Log-log scatter plot as text.

    Points with non-positive coordinates are dropped (log scale).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must be aligned")
    keep = (x > 0) & (y > 0)
    x, y = x[keep], y[keep]
    if x.size == 0:
        raise ValueError("nothing to plot on log axes")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    lx, ly = np.log10(x), np.log10(y)
    x0, x1 = float(lx.min()), float(lx.max())
    y0, y1 = float(ly.min()), float(ly.max())
    xspan = max(x1 - x0, 1e-12)
    yspan = max(y1 - y0, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    cols = np.minimum(((lx - x0) / xspan * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((ly - y0) / yspan * (height - 1)).astype(int), height - 1)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"1e{y1:+.1f}"
        elif i == height - 1:
            label = f"1e{y0:+.1f}"
        lines.append(f"{label:>8s} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9s} 1e{x0:+.1f}" + " " * max(0, width - 16) + f"1e{x1:+.1f}")
    return "\n".join(lines)


def line_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Multi-series line chart on linear axes.

    ``series`` maps labels to ``(x, y)`` arrays; each series gets a
    distinct marker and the legend maps markers back to labels.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    markers = "*o+x#@%&"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    x0, x1 = float(np.nanmin(all_x)), float(np.nanmax(all_x))
    y0, y1 = float(np.nanmin(all_y)), float(np.nanmax(all_y))
    xspan = max(x1 - x0, 1e-12)
    yspan = max(y1 - y0, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (label, (x, y)), marker in zip(series.items(), markers):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        keep = ~(np.isnan(x) | np.isnan(y))
        cols = np.minimum(((x[keep] - x0) / xspan * (width - 1)).astype(int), width - 1)
        rows = np.minimum(((y[keep] - y0) / yspan * (height - 1)).astype(int), height - 1)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker
        legend.append(f"{marker} = {label}")
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{y1:.3g}"
        elif i == height - 1:
            label = f"{y0:.3g}"
        lines.append(f"{label:>8s} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9s} {x0:<10.3g}" + " " * max(0, width - 22) + f"{x1:>10.3g}")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
