"""The paper's experiments: reach, flood success, hybrid comparison,
query/annotation mismatch, and the adaptive-synopsis extension."""

from repro.core.asciiplot import line_chart, scatter_loglog
from repro.core.export import export_all, write_csv
from repro.core.experiment import (
    Fig8TopologyConfig,
    TraceBundle,
    build_fig8_topology,
    build_trace_bundle,
)
from repro.core.flood_sim import (
    FloodSimConfig,
    FloodSimCurve,
    FloodSimResult,
    PlacementSpec,
    run_fig8,
    run_flood_success,
    zipf_replica_counts,
)
from repro.core.hybrid_eval import HybridEvalConfig, HybridEvalResult, evaluate_hybrid
from repro.core.mismatch import MismatchConfig, MismatchReport, run_mismatch_analysis
from repro.core.paper_report import Claim, build_report, render_report
from repro.core.replay import (
    DhtStrategy,
    ExpandingRingStrategy,
    FloodStrategy,
    HybridStrategy,
    SearchStrategy,
    WalkStrategy,
    replay,
)
from repro.core.reach import PAPER_REACH, ReachConfig, ReachResult, measure_reach
from repro.core.reporting import format_percent, format_series, format_table
from repro.core.sensitivity import (
    MismatchSensitivityConfig,
    SensitivityPoint,
    run_mismatch_sensitivity,
)
from repro.core.synopsis import (
    PeerSynopses,
    PolicyOutcome,
    SynopsisConfig,
    SynopsisResult,
    run_synopsis_experiment,
)

__all__ = [
    "line_chart",
    "scatter_loglog",
    "export_all",
    "write_csv",
    "MismatchSensitivityConfig",
    "SensitivityPoint",
    "run_mismatch_sensitivity",
    "Fig8TopologyConfig",
    "TraceBundle",
    "build_fig8_topology",
    "build_trace_bundle",
    "FloodSimConfig",
    "FloodSimCurve",
    "FloodSimResult",
    "PlacementSpec",
    "run_fig8",
    "run_flood_success",
    "zipf_replica_counts",
    "HybridEvalConfig",
    "HybridEvalResult",
    "evaluate_hybrid",
    "MismatchConfig",
    "MismatchReport",
    "run_mismatch_analysis",
    "PAPER_REACH",
    "DhtStrategy",
    "ExpandingRingStrategy",
    "FloodStrategy",
    "HybridStrategy",
    "SearchStrategy",
    "WalkStrategy",
    "replay",
    "Claim",
    "build_report",
    "render_report",
    "ReachConfig",
    "ReachResult",
    "measure_reach",
    "format_percent",
    "format_series",
    "format_table",
    "PeerSynopses",
    "PolicyOutcome",
    "SynopsisConfig",
    "SynopsisResult",
    "run_synopsis_experiment",
]
