"""Plain-text table/series rendering for benches and examples."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_percent", "format_bytes"]


def format_percent(x: float, digits: int = 2) -> str:
    """``0.0532`` -> ``"5.32%"``."""
    return f"{100.0 * x:.{digits}f}%"


def format_bytes(n: int | float) -> str:
    """Human-readable size in binary units: ``1536`` -> ``"1.5 KiB"``.

    The repository convention is binary units with IEC suffixes
    everywhere sizes are reported (cache inventories, shm segments);
    decimal "MB" labels over ``/ 1e6`` arithmetic are a lint-by-review
    bug this helper exists to prevent.
    """
    size = float(n)
    if size < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence, y: Sequence[float], *, x_label: str = "x", y_label: str = "y",
    y_format: str = "{:.4f}", title: str | None = None
) -> str:
    """Render an (x, y) series as a two-column table."""
    rows = [(xi, y_format.format(float(yi))) for xi, yi in zip(x, y)]
    return format_table([x_label, y_label], rows, title=title)
