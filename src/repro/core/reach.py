"""TTL reach measurement (paper §V text table, experiment T-REACH).

"For each of the TTL values of 1, 2, 3, 4 and 5, on average the query
reached 0.05%, ..., 26.25% and 82.95% of the peers, respectively."
This experiment regenerates that series on the calibrated topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.experiment import Fig8TopologyConfig, build_fig8_topology
from repro.overlay.flooding import reach_fractions
from repro.overlay.topology import Topology
from repro.utils.rng import derive

__all__ = ["ReachConfig", "ReachResult", "measure_reach"]

#: The paper's reported mean reach fractions (TTL 1, 4, 5; the TTL 2-3
#: values are illegible in the archived text and TTL 3 is only bounded
#: by "over a thousand nodes").
PAPER_REACH = {1: 0.0005, 4: 0.2625, 5: 0.8295}


@dataclass(frozen=True)
class ReachConfig:
    """Parameters of the reach measurement."""

    topology: Fig8TopologyConfig = field(default_factory=Fig8TopologyConfig)
    ttls: tuple[int, ...] = (1, 2, 3, 4, 5)
    n_sources: int = 50
    seed: int = 0
    #: process-pool width for the per-source floods (1 = serial,
    #: 0 = one per CPU); results are worker-count independent.
    n_workers: int = 1


@dataclass(frozen=True)
class ReachResult:
    """Measured mean reach fraction per TTL."""

    ttls: tuple[int, ...]
    fractions: np.ndarray
    n_nodes: int

    def nodes_reached(self) -> np.ndarray:
        """Mean absolute node counts per TTL."""
        return self.fractions * self.n_nodes

    def as_rows(self) -> list[tuple[int, float, float]]:
        """``(ttl, fraction, nodes)`` rows for reporting."""
        return [
            (t, float(f), float(f * self.n_nodes))
            for t, f in zip(self.ttls, self.fractions)
        ]


def measure_reach(
    config: ReachConfig | None = None, topology: Topology | None = None
) -> ReachResult:
    """Measure mean flood reach per TTL from ultrapeer sources.

    Sources are ultrapeers: a leaf's query enters the flood at its
    ultrapeers, so ultrapeer origins are what the network-level reach
    statistics see (this is also how the topology was calibrated).
    """
    cfg = config or ReachConfig()
    topo = topology if topology is not None else build_fig8_topology(cfg.topology)
    rng = derive(cfg.seed, "reach", "sources")
    forwarding = np.flatnonzero(topo.forwards)
    sources = forwarding[rng.integers(0, forwarding.size, size=cfg.n_sources)]
    fractions = reach_fractions(
        topo, sources, list(cfg.ttls), n_workers=cfg.n_workers
    )
    return ReachResult(ttls=cfg.ttls, fractions=fractions, n_nodes=topo.n_nodes)
