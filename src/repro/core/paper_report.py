"""One-shot reproduction report: every headline claim, checked.

``build_report()`` runs the full experiment suite at reduced scale and
returns a structured list of claims with paper value, measured value
and verdict — the programmatic equivalent of EXPERIMENTS.md, used by
``python -m repro report`` and the release-gate integration test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Claim", "build_report", "render_report"]


@dataclass(frozen=True)
class Claim:
    """One paper claim and its measured verdict."""

    ident: str
    statement: str
    paper: str
    measured: str
    holds: bool


def build_report(seed: int = 0) -> list[Claim]:
    """Run the suite and evaluate every §III-§VII headline claim."""
    from repro.analysis.replication import summarize_replication
    from repro.analysis.resolvability import measure_resolvability
    from repro.core.experiment import build_trace_bundle
    from repro.core.hybrid_eval import HybridEvalConfig, evaluate_hybrid
    from repro.core.mismatch import run_mismatch_analysis
    from repro.core.synopsis import SynopsisConfig, run_synopsis_experiment
    from repro.overlay.content import SharedContentIndex

    claims: list[Claim] = []

    bundle = build_trace_bundle()
    content = SharedContentIndex(bundle.trace)

    s = summarize_replication(bundle.trace.replica_counts(), bundle.trace.n_peers)
    claims.append(
        Claim(
            "FIG1",
            "~70% of object names are singletons",
            "70.5%",
            f"{s.singleton_fraction:.1%}",
            0.6 <= s.singleton_fraction <= 0.8,
        )
    )
    claims.append(
        Claim(
            "T-RARE",
            "fewer than 4% of objects on >= 20 peers",
            "<4%",
            f"{s.at_least_20_peers:.2%}",
            s.at_least_20_peers < 0.04,
        )
    )

    report = run_mismatch_analysis(bundle, content=content)
    claims.append(
        Claim(
            "FIG6",
            "popular query terms stable across intervals",
            ">90%",
            f"{report.stability_after_warmup:.1%}",
            report.stability_after_warmup > 0.9,
        )
    )
    claims.append(
        Claim(
            "FIG7",
            "query/file term similarity low at every interval",
            "<20%",
            f"max {report.max_file_similarity:.1%}",
            report.max_file_similarity < 0.2,
        )
    )
    primary = report.transient_counts[report.config.primary_interval_s]
    claims.append(
        Claim(
            "FIG5",
            "transiently popular terms: low mean, high variance",
            "mean < 10",
            f"mean {primary.mean():.1f}, var {primary.var():.1f}",
            primary.mean() < 10 and primary.var() > 0.2,
        )
    )

    resolv = measure_resolvability(bundle.workload, content, n_samples=800, seed=seed)
    claims.append(
        Claim(
            "T-RESOLV",
            "most queries are rare even for an oracle",
            "(implied)",
            f"{resolv.rare_fraction:.1%} rare",
            resolv.rare_fraction > 0.6,
        )
    )

    hybrid = evaluate_hybrid(HybridEvalConfig(n_eval_objects=60, seed=seed))
    claims.append(
        Claim(
            "FIG8",
            "TTL-3 flood success under Zipf placement",
            "~5%",
            f"{hybrid.flood_success:.1%}",
            0.02 <= hybrid.flood_success <= 0.10,
        )
    )
    claims.append(
        Claim(
            "T-HYBRID",
            "uniform 0.1% model overpredicts flood success",
            "62% predicted",
            f"{hybrid.predicted_success_0p1pct:.1%} predicted",
            hybrid.predicted_success_0p1pct / max(hybrid.flood_success, 1e-9) > 5,
        )
    )
    claims.append(
        Claim(
            "T-HYBRID",
            "hybrid search costs more than a pure DHT",
            "worse than DHT",
            f"{hybrid.hybrid_overhead:.0f}x DHT cost",
            hybrid.hybrid_overhead > 5,
        )
    )

    syn = run_synopsis_experiment(
        bundle, SynopsisConfig(n_queries=600, seed=seed), content=content
    )
    adaptive = syn.outcome("adaptive")
    static = syn.outcome("static-query")
    content_c = syn.outcome("content")
    claims.append(
        Claim(
            "X-SYN",
            "query-centric synopses beat content-centric ones",
            "(position)",
            f"{static.success_rate:.1%} vs {content_c.success_rate:.1%}",
            static.success_rate > content_c.success_rate,
        )
    )
    claims.append(
        Claim(
            "X-SYN",
            "adapting to transient terms lifts the transient class",
            "(ref [9])",
            f"{adaptive.success_transient:.1%} vs {static.success_transient:.1%}",
            adaptive.success_transient > static.success_transient,
        )
    )
    return claims


def render_report(claims: list[Claim]) -> str:
    """Text rendering of the claim table."""
    from repro.core.reporting import format_table

    rows = [
        (c.ident, c.statement, c.paper, c.measured, "HOLDS" if c.holds else "FAILS")
        for c in claims
    ]
    n_hold = sum(c.holds for c in claims)
    table = format_table(
        ["id", "claim", "paper", "measured", "verdict"],
        rows,
        title="Reproduction report — every headline claim",
    )
    return f"{table}\n\n{n_hold}/{len(claims)} claims hold."
