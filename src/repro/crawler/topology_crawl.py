"""Cruiser-style topology crawl (paper §II-A, ref [10]).

The paper's measurement pipeline starts by crawling the overlay: from
bootstrap peers, repeatedly ask discovered peers for their neighbor
lists.  Real crawls are lossy — peers are busy, firewalled, or gone —
so the crawl sees a *sampled* subgraph.  The simulation reproduces
that methodology over a synthetic topology, letting the test suite
quantify how crawl loss biases the downstream statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.topology import Topology
from repro.utils.rng import make_rng

__all__ = ["TopologyCrawlResult", "crawl_topology"]


@dataclass(frozen=True)
class TopologyCrawlResult:
    """Outcome of a topology crawl."""

    discovered: np.ndarray  # peers whose existence the crawler learned
    responded: np.ndarray  # peers that answered the neighbor request
    n_requests: int

    @property
    def n_discovered(self) -> int:
        """Number of peers discovered."""
        return self.discovered.size

    @property
    def response_rate(self) -> float:
        """Fraction of contacted peers that answered."""
        return self.responded.size / max(1, self.n_requests)


def crawl_topology(
    topology: Topology,
    *,
    bootstrap: np.ndarray | list[int] | None = None,
    p_response: float = 0.85,
    seed: int | np.random.Generator = 0,
) -> TopologyCrawlResult:
    """BFS crawl with per-peer response failures.

    A peer that fails to respond is still *discovered* (its address
    appeared in someone's neighbor list) but contributes no edges —
    exactly Cruiser's behaviour with busy/firewalled peers.
    """
    if not 0.0 < p_response <= 1.0:
        raise ValueError("p_response must be in (0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    if bootstrap is None:
        bootstrap = [0]
    responds = rng.random(topology.n_nodes) < p_response

    discovered = np.zeros(topology.n_nodes, dtype=bool)
    contacted = np.zeros(topology.n_nodes, dtype=bool)
    frontier = np.unique(np.asarray(bootstrap, dtype=np.int64))
    discovered[frontier] = True
    n_requests = 0
    while frontier.size:
        to_contact = frontier[~contacted[frontier]]
        contacted[to_contact] = True
        n_requests += to_contact.size
        answering = to_contact[responds[to_contact]]
        new: list[np.ndarray] = []
        for v in answering:
            new.append(topology.neighbors_of(int(v)))
        if new:
            candidates = np.unique(np.concatenate(new))
            fresh = candidates[~discovered[candidates]]
            discovered[fresh] = True
            frontier = fresh
        else:
            frontier = np.empty(0, dtype=np.int64)
    return TopologyCrawlResult(
        discovered=np.flatnonzero(discovered),
        responded=np.flatnonzero(contacted & responds),
        n_requests=n_requests,
    )
