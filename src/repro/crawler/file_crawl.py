"""File crawl: collect shared-file lists from discovered peers.

Phase two of the paper's Gnutella measurement: connect to every peer
the topology crawl discovered and request its shared-file list (the
Gnutella ``Browse Host`` style exchange).  Peers fail to answer with
some probability, so the collected trace is a peer-sampled view of the
true shares — the analyses then run on exactly what a real crawler
would have gotten.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tracegen.gnutella_trace import GnutellaShareTrace
from repro.utils.rng import make_rng
from repro.utils.stats import encode_pairs

__all__ = ["FileCrawlResult", "crawl_files"]


@dataclass(frozen=True)
class FileCrawlResult:
    """The crawled (peer-sampled) share trace.

    ``name_ids``/``peer_of_instance`` use the same id spaces as the
    source trace, so every analysis in :mod:`repro.analysis` applies
    unchanged.
    """

    source: GnutellaShareTrace
    crawled_peers: np.ndarray
    name_ids: np.ndarray
    peer_of_instance: np.ndarray

    @property
    def n_instances(self) -> int:
        """Instances collected."""
        return self.name_ids.size

    @property
    def n_unique_names(self) -> int:
        """Distinct names observed in the crawl."""
        return int(np.unique(self.name_ids).size)

    def replica_counts(self) -> np.ndarray:
        """Clients-per-name counts over the crawled subset."""
        n_peers = self.source.n_peers
        pairs = np.unique(
            encode_pairs(
                self.name_ids, self.peer_of_instance, n_peers,
                what="name/peer pairs",
            )
        )
        return np.bincount(
            (pairs // n_peers).astype(np.int64), minlength=len(self.source.names)
        )


def crawl_files(
    trace: GnutellaShareTrace,
    peers: np.ndarray | list[int],
    *,
    p_response: float = 0.9,
    seed: int | np.random.Generator = 0,
) -> FileCrawlResult:
    """Request file lists from ``peers``; some won't answer."""
    if not 0.0 < p_response <= 1.0:
        raise ValueError("p_response must be in (0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    peers = np.unique(np.asarray(peers, dtype=np.int64))
    answered = peers[rng.random(peers.size) < p_response]
    mask = np.zeros(trace.n_peers, dtype=bool)
    mask[answered] = True
    take = mask[trace.peer_of_instance]
    return FileCrawlResult(
        source=trace,
        crawled_peers=answered,
        name_ids=trace.name_ids[take],
        peer_of_instance=trace.peer_of_instance[take],
    )
