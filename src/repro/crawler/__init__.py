"""Measurement-methodology simulators: crawls and passive query monitoring."""

from repro.crawler.file_crawl import FileCrawlResult, crawl_files
from repro.crawler.query_monitor import MonitoredTrace, monitor_queries
from repro.crawler.topology_crawl import TopologyCrawlResult, crawl_topology

__all__ = [
    "FileCrawlResult",
    "crawl_files",
    "MonitoredTrace",
    "monitor_queries",
    "TopologyCrawlResult",
    "crawl_topology",
]
