"""Phex-style passive query monitor (paper §II-A).

The paper captured its query trace by running a modified Gnutella
client that logged every query passing through it.  In the simulation,
a monitor node observes exactly those queries whose TTL-scoped flood
reaches it; because flooding reach is symmetric on an undirected
topology, a query from source ``s`` with TTL ``t`` passes the monitor
iff ``s`` lies within the monitor's radius-``t`` ball — one BFS
precomputes the whole observability map.

The monitor therefore sees a *biased sample* of the true workload
(overlay-position bias), which is the methodological caveat the tests
quantify: term popularity *ranks* survive the sampling even though raw
counts do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.flooding import flood_depths
from repro.overlay.topology import Topology
from repro.tracegen.query_trace import QueryWorkload
from repro.utils.rng import make_rng

__all__ = ["MonitoredTrace", "monitor_queries"]


@dataclass(frozen=True)
class MonitoredTrace:
    """Queries the monitor logged, as indexes into the workload."""

    monitor: int
    ttl: int
    observed: np.ndarray  # indexes of observed queries
    sources: np.ndarray  # per-query source node (whole workload)

    @property
    def capture_rate(self) -> float:
        """Fraction of the workload the monitor saw."""
        return self.observed.size / max(1, self.sources.size)

    def observed_term_counts(self, workload: QueryWorkload) -> np.ndarray:
        """Occurrence counts per vocab rank over observed queries only."""
        counts = np.zeros(workload.config.vocab_size, dtype=np.int64)
        for qi in self.observed:
            np.add.at(counts, workload.query_terms(int(qi)), 1)
        return counts


def monitor_queries(
    topology: Topology,
    workload: QueryWorkload,
    *,
    monitor: int = 0,
    ttl: int = 4,
    seed: int | np.random.Generator = 0,
) -> MonitoredTrace:
    """Assign sources to queries and log those reaching the monitor.

    Sources are uniform over forwarding nodes (leaves hand queries to
    their ultrapeers, so the flooding origin is effectively an
    ultrapeer — consistent with how the reach calibration sources
    floods).
    """
    if ttl < 0:
        raise ValueError("ttl must be non-negative")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    forwarding = np.flatnonzero(topology.forwards)
    if forwarding.size == 0:
        raise ValueError("topology has no forwarding nodes")
    sources = forwarding[rng.integers(0, forwarding.size, size=workload.n_queries)]
    # Observability ball: sources whose flood reaches the monitor.
    depth, _ = flood_depths(topology, monitor, ttl)
    observable = depth >= 0
    observed = np.flatnonzero(observable[sources])
    return MonitoredTrace(monitor=monitor, ttl=ttl, observed=observed, sources=sources)
