"""Message-cost comparison of search strategies.

Aggregates per-query outcomes into the strategy-level statistics the
paper's §V/§VII argument turns on: how often the flood phase resolves
the query, what each strategy costs in messages, and the predicted vs
observed flood success rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StrategyStats", "aggregate", "predicted_uniform_success"]


@dataclass(frozen=True)
class StrategyStats:
    """Aggregate outcome of one search strategy over a query batch."""

    name: str
    n_queries: int
    success_rate: float
    fallback_rate: float
    mean_messages: float
    p50_messages: float
    p95_messages: float

    def as_row(self) -> tuple:
        """Tuple form for table rendering."""
        return (
            self.name,
            self.n_queries,
            f"{self.success_rate:.3f}",
            f"{self.fallback_rate:.3f}",
            f"{self.mean_messages:.1f}",
            f"{self.p50_messages:.0f}",
            f"{self.p95_messages:.0f}",
        )


def aggregate(
    name: str,
    successes: np.ndarray,
    messages: np.ndarray,
    fallbacks: np.ndarray | None = None,
) -> StrategyStats:
    """Reduce per-query arrays into :class:`StrategyStats`."""
    successes = np.asarray(successes, dtype=bool)
    messages = np.asarray(messages, dtype=np.float64)
    if successes.shape != messages.shape:
        raise ValueError("successes and messages must be aligned")
    if successes.size == 0:
        raise ValueError("empty query batch")
    fb = (
        float(np.mean(np.asarray(fallbacks, dtype=bool)))
        if fallbacks is not None
        else 0.0
    )
    return StrategyStats(
        name=name,
        n_queries=int(successes.size),
        success_rate=float(successes.mean()),
        fallback_rate=fb,
        mean_messages=float(messages.mean()),
        p50_messages=float(np.percentile(messages, 50)),
        p95_messages=float(np.percentile(messages, 95)),
    )


def predicted_uniform_success(replication_ratio: float, peers_reached: int) -> float:
    """Success a *uniform* placement model predicts for a flood.

    With objects placed independently on a fraction ``r`` of peers, a
    flood probing ``k`` peers succeeds with ``1 - (1 - r)^k`` — the
    calculation that (per the paper) led prior work to expect ~62%
    success at TTL 3 where the real Zipf workload delivers ~5%.
    """
    if not 0.0 <= replication_ratio <= 1.0:
        raise ValueError("replication_ratio must be a probability")
    if peers_reached < 0:
        raise ValueError("peers_reached must be non-negative")
    return 1.0 - (1.0 - replication_ratio) ** peers_reached
