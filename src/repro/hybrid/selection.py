"""Learned search-method selection (paper §VI, ref [20]).

Zaharia & Keshav's GAB selects *which* search mechanism to use per
query — flood for popular content, structured lookup for rare — using
information gossiped about past outcomes.  We reproduce the decision
layer: a selector keeps an exponentially-weighted estimate of flood
success per query term and routes each query to the flood or the DHT
accordingly; the X-SELECT bench compares it against the static
strategies and the oracle.

Under the paper's workload the selector converges to "almost always
DHT" — the learned confirmation of the §VII position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SelectorConfig", "MethodSelector", "SelectionStats"]


@dataclass(frozen=True)
class SelectorConfig:
    """Selector learning parameters."""

    #: EWMA weight of the newest observation.
    learning_rate: float = 0.3
    #: optimistic prior flood-success estimate (try floods initially).
    prior: float = 0.5
    #: flood when the estimated success exceeds this threshold.
    flood_threshold: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 <= self.prior <= 1.0:
            raise ValueError("prior must be a probability")
        if not 0.0 <= self.flood_threshold <= 1.0:
            raise ValueError("flood_threshold must be a probability")


class MethodSelector:
    """Per-term flood-success estimator driving method selection.

    A query's flood-success estimate is the *minimum* over its terms
    (AND semantics: the rarest term caps the flood's chance).
    """

    def __init__(self, n_terms: int, config: SelectorConfig | None = None) -> None:
        if n_terms < 1:
            raise ValueError("n_terms must be positive")
        self.config = config or SelectorConfig()
        self.estimates = np.full(n_terms, self.config.prior, dtype=np.float64)
        self.observations = np.zeros(n_terms, dtype=np.int64)

    def estimate(self, term_ids: np.ndarray) -> float:
        """Estimated flood success for a query (min over terms)."""
        term_ids = np.asarray(term_ids, dtype=np.int64)
        if term_ids.size == 0:
            raise ValueError("a query needs at least one term")
        return float(self.estimates[term_ids].min())

    def choose(self, term_ids: np.ndarray) -> str:
        """``"flood"`` or ``"dht"`` for this query."""
        return (
            "flood"
            if self.estimate(term_ids) >= self.config.flood_threshold
            else "dht"
        )

    def observe(self, term_ids: np.ndarray, flood_succeeded: bool) -> None:
        """Feed back one flood outcome (gossip delivers these too)."""
        lr = self.config.learning_rate
        ids = np.unique(np.asarray(term_ids, dtype=np.int64))
        target = 1.0 if flood_succeeded else 0.0
        self.estimates[ids] = (1 - lr) * self.estimates[ids] + lr * target
        self.observations[ids] += 1


@dataclass(frozen=True)
class SelectionStats:
    """Aggregate outcome of one selection strategy over a replay."""

    name: str
    success_rate: float
    mean_messages: float
    flood_fraction: float

    def as_row(self) -> tuple[str, str, str, str]:
        """Row form for table rendering."""
        return (
            self.name,
            f"{self.success_rate:.3f}",
            f"{self.mean_messages:,.0f}",
            f"{self.flood_fraction:.2f}",
        )
