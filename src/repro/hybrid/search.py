"""Hybrid flood-then-DHT search (Loo et al. [5], the paper's §V target).

The hybrid strategy floods with a small TTL to catch popular content
cheaply, and falls back to the structured keyword index when the flood
returns too few results.  Loo et al. classify a query as *rare* when
it returns fewer than 20 results; the paper's position is that, under
the real (Zipf, mismatched) workload, almost every query takes the
expensive flood *and* the DHT lookup — making the hybrid strictly
worse than the DHT alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dht.keyword_index import KeywordIndex
from repro.overlay.network import SearchOutcome, UnstructuredNetwork

__all__ = ["HybridOutcome", "HybridSearch", "RARE_RESULT_THRESHOLD"]

#: Loo et al.: a query with fewer results than this is "rare".
RARE_RESULT_THRESHOLD = 20


@dataclass(frozen=True)
class HybridOutcome:
    """One hybrid query: flood phase plus optional DHT fallback."""

    flood: SearchOutcome
    fell_back: bool
    dht_hits: np.ndarray | None
    dht_messages: int

    @property
    def n_results(self) -> int:
        """Results returned to the user (flood phase, or DHT when used)."""
        if self.fell_back and self.dht_hits is not None:
            return int(self.dht_hits.size)
        return self.flood.n_results

    @property
    def succeeded(self) -> bool:
        """Did the user get at least one result?"""
        return self.n_results > 0

    @property
    def messages(self) -> int:
        """Total message cost across both phases."""
        return self.flood.messages + self.dht_messages


class HybridSearch:
    """Flood with a small TTL, escalate rare queries to the DHT."""

    def __init__(
        self,
        network: UnstructuredNetwork,
        index: KeywordIndex,
        *,
        flood_ttl: int = 3,
        rare_threshold: int = RARE_RESULT_THRESHOLD,
    ) -> None:
        if flood_ttl < 0:
            raise ValueError("flood_ttl must be non-negative")
        if rare_threshold < 1:
            raise ValueError("rare_threshold must be positive")
        self.network = network
        self.index = index
        self.flood_ttl = flood_ttl
        self.rare_threshold = rare_threshold

    def query(self, source: int, terms: list[str]) -> HybridOutcome:
        """Run one hybrid query from ``source``."""
        flood = self.network.query_flood(source, terms, self.flood_ttl)
        if flood.n_results >= self.rare_threshold:
            return HybridOutcome(
                flood=flood, fell_back=False, dht_hits=None, dht_messages=0
            )
        dht = self.index.query(terms, source % self.index.ring.n_nodes)
        return HybridOutcome(
            flood=flood,
            fell_back=True,
            dht_hits=dht.hit_instances,
            dht_messages=dht.messages,
        )
