"""Hybrid flood-then-DHT search and its message-cost model."""

from repro.hybrid.cost_model import StrategyStats, aggregate, predicted_uniform_success
from repro.hybrid.selection import MethodSelector, SelectionStats, SelectorConfig
from repro.hybrid.search import RARE_RESULT_THRESHOLD, HybridOutcome, HybridSearch

__all__ = [
    "StrategyStats",
    "aggregate",
    "predicted_uniform_success",
    "MethodSelector",
    "SelectionStats",
    "SelectorConfig",
    "RARE_RESULT_THRESHOLD",
    "HybridOutcome",
    "HybridSearch",
]
