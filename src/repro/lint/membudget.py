"""Static memory-footprint estimator: predicted bytes-per-node.

The million-node roadmap item needs an answer to "what does one more
node cost?" *before* anyone allocates 10M-node arrays.  This module
computes it statically: the dtype of every scale-critical array
(Topology CSR, depth-cache maps, content-index postings) is taken from
the v3 array inference (:mod:`repro.lint.arrays`) over the committed
source — so a PR that silently widens ``indices`` back to int64 moves
the predicted budget, and CI catches the regression without running a
simulation.

The per-node entry counts are a declared model, not a measurement:
coefficients come from the Fig. 8 seed configuration
(``Fig8TopologyConfig``: 40k nodes, ultrapeer fraction 0.3, ultrapeer
mesh degree 8, 3 leaf uplinks -> 12k*8/2 + 28k*3 = 132k undirected
edges = 3.3 per node, i.e. 6.6 CSR neighbor entries per node;
``GnutellaTraceConfig``: mean library size 120 -> ~120 instances,
~3.5 posting entries per instance = 420 postings and ~40 distinct
terms per node).  docs/performance.md compares these predictions with
measured RSS.  The committed budget lives in ``lint/mem-budget.json``
(``[tool.simlint] mem-budget``); ``--mem-report`` recomputes and fails
on a >2% bytes-per-node regression, ``--write-mem-budget`` re-pins it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.arrays import ITEMSIZE, ArrayInference
from repro.lint.rules import ProjectContext

__all__ = [
    "MEM_BUDGET_SCHEMA",
    "SCALES",
    "SPECS",
    "ArraySpec",
    "build_report",
    "check_budget",
    "load_budget",
    "render_report",
    "write_budget",
]

MEM_BUDGET_SCHEMA = 1

#: Node counts the report prints totals for (seed, roadmap, stretch).
SCALES = (40_000, 1_000_000, 10_000_000)


@dataclass(frozen=True)
class ArraySpec:
    """One scale-critical array: where its dtype is inferred from and
    how many entries it holds per overlay node.

    ``target`` selects the inference query: ``return[i]`` (the i-th
    element of the function's return summary), ``local:name`` (a local
    in the function's environment), or ``attr:name`` (a ``self.name``
    store).  ``seed_itemsize`` is the element width the v0 seed shipped
    with — the fixed reference the shrink ratio is measured against.
    ``fallback`` is assumed (and reported as such) when the inference
    cannot prove a dtype.
    """

    group: str
    structure: str
    array: str
    qualname: str
    target: str
    per_node: float
    seed_itemsize: int
    fallback: str


SPECS: tuple[ArraySpec, ...] = (
    # CSR adjacency + flood depth maps: the structures every BFS touches.
    ArraySpec(
        group="csr_depth",
        structure="Topology",
        array="offsets",
        qualname="repro.overlay.topology._edges_to_csr",
        target="return[0]",
        per_node=1.0,
        seed_itemsize=8,
        fallback="int64",
    ),
    ArraySpec(
        group="csr_depth",
        structure="Topology",
        array="neighbors",
        qualname="repro.overlay.topology._edges_to_csr",
        target="return[1]",
        per_node=6.6,
        seed_itemsize=8,
        fallback="int64",
    ),
    ArraySpec(
        group="csr_depth",
        structure="Topology",
        array="forwards",
        qualname="repro.overlay.topology.two_tier_gnutella",
        target="local:forwards",
        per_node=1.0,
        seed_itemsize=1,
        fallback="bool",
    ),
    ArraySpec(
        group="csr_depth",
        structure="DepthEntry",
        array="depth",
        qualname="repro.overlay.flooding.FloodDepthCache._bfs_with",
        target="local:depth",
        per_node=1.0,
        seed_itemsize=8,
        fallback="int64",
    ),
    # Sharded flood publish: the per-shard CSR copies the
    # process-parallel driver exports to shared memory
    # (repro.runtime.shards).  Offsets are re-based per shard (one
    # entry per node plus one per shard); neighbors keep global node
    # ids, so both must stay at INDEX_DTYPE width for the sharded
    # footprint to track the single-segment CSR.
    ArraySpec(
        group="sharding",
        structure="TopologyShard",
        array="offsets",
        qualname="repro.overlay.sharding.partition_topology",
        target="local:offsets",
        per_node=1.0,
        seed_itemsize=4,
        fallback="int32",
    ),
    ArraySpec(
        group="sharding",
        structure="TopologyShard",
        array="neighbors",
        qualname="repro.overlay.sharding.partition_topology",
        target="local:neighbors",
        per_node=6.6,
        seed_itemsize=4,
        fallback="int32",
    ),
    # Content-index postings: per-instance, scaled to per-node by the
    # trace's mean library size.
    ArraySpec(
        group="postings",
        structure="GnutellaShareTrace",
        array="peer_of_instance",
        qualname="repro.tracegen.gnutella_trace.GnutellaShareTrace.__init__",
        target="attr:peer_of_instance",
        per_node=120.0,
        seed_itemsize=8,
        fallback="int64",
    ),
    ArraySpec(
        group="postings",
        structure="SharedContentIndex",
        array="_posting_instances",
        qualname="repro.overlay.content.SharedContentIndex.__init__",
        target="attr:_posting_instances",
        per_node=420.0,
        seed_itemsize=8,
        fallback="int64",
    ),
    ArraySpec(
        group="postings",
        structure="SharedContentIndex",
        array="_posting_offsets",
        qualname="repro.overlay.content.SharedContentIndex.__init__",
        target="attr:_posting_offsets",
        per_node=40.0,
        seed_itemsize=8,
        fallback="int64",
    ),
    # Sharded postings publish: per-shard posting CSR segments the
    # batch engine exports to shared memory (repro.runtime.shards).
    # Offsets are re-based per shard (one entry per term plus one per
    # shard); instances keep global ids, so both must stay at
    # INDEX_DTYPE width for the sharded footprint to track the dense
    # posting arrays.  These entries were born int32, so their shrink
    # ratio is measured against a 4-byte seed.
    ArraySpec(
        group="posting_shards",
        structure="PostingShard",
        array="offsets",
        qualname="repro.overlay.content.partition_postings",
        target="local:offsets",
        per_node=40.0,
        seed_itemsize=4,
        fallback="int32",
    ),
    ArraySpec(
        group="posting_shards",
        structure="PostingShard",
        array="instances",
        qualname="repro.overlay.content.partition_postings",
        target="local:instances",
        per_node=420.0,
        seed_itemsize=4,
        fallback="int32",
    ),
)


def _resolve_dtype(spec: ArraySpec, inference: ArrayInference) -> tuple[str, bool]:
    """``(dtype, inferred)`` for one spec; falls back with ``False``."""
    dtype: str | None = None
    if spec.target.startswith("return[") and spec.target.endswith("]"):
        position = int(spec.target[len("return[") : -1])
        summary = inference.returns(spec.qualname)
        if position < len(summary):
            dtype = summary[position].dtype
    elif spec.target.startswith("local:"):
        value = inference.env(spec.qualname).get(spec.target[len("local:") :])
        dtype = value.dtype if value is not None else None
    elif spec.target.startswith("attr:"):
        value = inference.attribute_values(spec.qualname).get(
            spec.target[len("attr:") :]
        )
        dtype = value.dtype if value is not None else None
    if dtype is not None and dtype in ITEMSIZE:
        return dtype, True
    return spec.fallback, False


def build_report(project: ProjectContext) -> dict[str, object]:
    """The full memory-budget report over one indexed project."""
    inference = ArrayInference(project.index)
    groups: dict[str, dict[str, object]] = {}
    for spec in SPECS:
        dtype, inferred = _resolve_dtype(spec, inference)
        bytes_per_node = ITEMSIZE[dtype] * spec.per_node
        seed_bytes_per_node = spec.seed_itemsize * spec.per_node
        group = groups.setdefault(
            spec.group,
            {
                "bytes_per_node": 0.0,
                "seed_bytes_per_node": 0.0,
                "arrays": [],
            },
        )
        group["bytes_per_node"] = round(
            float(group["bytes_per_node"]) + bytes_per_node, 3  # type: ignore[arg-type]
        )
        group["seed_bytes_per_node"] = round(
            float(group["seed_bytes_per_node"]) + seed_bytes_per_node, 3  # type: ignore[arg-type]
        )
        group["arrays"].append(  # type: ignore[union-attr]
            {
                "structure": spec.structure,
                "array": spec.array,
                "dtype": dtype,
                "inferred": inferred,
                "entries_per_node": spec.per_node,
                "bytes_per_node": round(bytes_per_node, 3),
            }
        )
    for group in groups.values():
        seed = float(group["seed_bytes_per_node"])  # type: ignore[arg-type]
        current = float(group["bytes_per_node"])  # type: ignore[arg-type]
        group["ratio_vs_seed"] = round(current / seed, 4) if seed else 1.0
    total_bytes_per_node = sum(
        float(group["bytes_per_node"]) for group in groups.values()  # type: ignore[arg-type]
    )
    totals = [
        {
            "nodes": nodes,
            "bytes": int(round(total_bytes_per_node * nodes)),
            "human": _human_bytes(total_bytes_per_node * nodes),
        }
        for nodes in SCALES
    ]
    return {
        "schema": MEM_BUDGET_SCHEMA,
        "groups": dict(sorted(groups.items())),
        "bytes_per_node": round(total_bytes_per_node, 3),
        "totals": totals,
    }


def _human_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


def render_report(report: dict[str, object]) -> str:
    """Human rendering of :func:`build_report` output."""
    lines = ["simlint memory budget (predicted, static)"]
    groups = report["groups"]
    assert isinstance(groups, dict)
    for name, group in groups.items():
        lines.append(
            f"  {name}: {group['bytes_per_node']} B/node "
            f"(seed {group['seed_bytes_per_node']} B/node, "
            f"ratio {group['ratio_vs_seed']})"
        )
        for entry in group["arrays"]:
            origin = "inferred" if entry["inferred"] else "assumed"
            lines.append(
                f"    {entry['structure']}.{entry['array']}: "
                f"{entry['dtype']} ({origin}) x "
                f"{entry['entries_per_node']}/node = "
                f"{entry['bytes_per_node']} B/node"
            )
    lines.append(f"  total: {report['bytes_per_node']} B/node")
    totals = report["totals"]
    assert isinstance(totals, list)
    for total in totals:
        lines.append(f"    at {total['nodes']:>8} nodes: {total['human']}")
    return "\n".join(lines)


def load_budget(path: Path) -> dict[str, object] | None:
    """The committed budget, or ``None`` when absent/unreadable."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or data.get("schema") != MEM_BUDGET_SCHEMA:
        return None
    return data


def write_budget(path: Path, report: dict[str, object]) -> None:
    """Pin the report as the committed budget (stable formatting)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")


def check_budget(
    report: dict[str, object],
    committed: dict[str, object],
    *,
    tolerance: float,
) -> list[str]:
    """Problems where the current prediction regresses past tolerance.

    Regression means *more* bytes per node than committed (beyond
    ``tolerance``, a fraction); improvements are silent — re-pin with
    ``--write-mem-budget`` to ratchet the budget down.
    """
    problems: list[str] = []
    committed_groups = committed.get("groups")
    if not isinstance(committed_groups, dict):
        return ["committed budget has no groups; rewrite with --write-mem-budget"]
    current_groups = report["groups"]
    assert isinstance(current_groups, dict)
    for name, group in current_groups.items():
        pinned = committed_groups.get(name)
        if not isinstance(pinned, dict) or "bytes_per_node" not in pinned:
            problems.append(
                f"group '{name}' is not in the committed budget; "
                f"re-pin with --write-mem-budget"
            )
            continue
        current = float(group["bytes_per_node"])
        limit = float(pinned["bytes_per_node"]) * (1.0 + tolerance)
        if current > limit:
            problems.append(
                f"group '{name}' predicts {current} B/node, exceeding the "
                f"committed {pinned['bytes_per_node']} B/node by more than "
                f"{tolerance:.0%}"
            )
    return problems
