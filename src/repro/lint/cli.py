"""simlint command line: ``python -m repro.lint [paths] [options]``.

Exit codes follow compiler convention: 0 clean, 1 findings, 2 usage or
configuration error.  ``--format json`` emits a stable machine-readable
schema (documented in docs/static-analysis.md) for CI annotation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import lint_paths
from repro.lint.rules import registered_rules

__all__ = ["main", "build_parser", "render_json"]

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "simlint: AST-based simulation-invariant linter for the repro "
            "codebase (RNG discipline, wall-clock bans, export hygiene)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. SIM001,SIM006)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest ancestor of cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print registered rules and exit",
    )
    return parser


def _parse_codes(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def render_json(
    findings: Sequence[Diagnostic], files_checked: int
) -> dict[str, object]:
    """The ``--format json`` payload (schema version pinned for CI)."""
    counts: dict[str, int] = {}
    for diag in findings:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "diagnostics": [diag.to_dict() for diag in findings],
        "counts": dict(sorted(counts.items())),
    }


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = registered_rules()
    if args.list_rules:
        for code, rule in rules.items():
            print(f"{code}  {rule.summary}")
        return 0

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    for label, raw, codes in (
        ("--select", args.select, select),
        ("--ignore", args.ignore, ignore),
    ):
        if raw is not None and not codes:
            print(f"error: {label} requires at least one rule code", file=sys.stderr)
            return 2
        unknown = sorted(codes - rules.keys()) if codes else []
        if unknown:
            print(
                f"error: {label} names unknown rule(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    if args.config is not None:
        pyproject = Path(args.config)
        if not pyproject.is_file():
            print(f"error: no such config file: {pyproject}", file=sys.stderr)
            return 2
    else:
        pyproject = find_pyproject(Path.cwd())
    try:
        config: LintConfig = load_config(pyproject, select=select, ignore=ignore)
    except TypeError as err:
        print(f"error: bad [tool.simlint] configuration: {err}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    findings, files_checked = lint_paths(args.paths, config)

    if args.format == "json":
        print(json.dumps(render_json(findings, files_checked), indent=2))
    else:
        for diag in findings:
            print(diag.format_human())
        noun = "file" if files_checked == 1 else "files"
        if findings:
            print(f"simlint: {len(findings)} finding(s) in {files_checked} {noun}")
        else:
            print(f"simlint: {files_checked} {noun} clean")
    return 1 if findings else 0
