"""simlint command line: ``python -m repro.lint [paths] [options]``.

Exit codes follow compiler convention: 0 clean, 1 findings, 2 usage or
configuration error.  ``--format json`` emits a stable machine-readable
schema (documented in docs/static-analysis.md) for CI annotation;
``--format sarif`` emits SARIF 2.1.0 for code-scanning uploads.

v2 additions: ``--baseline``/``--write-baseline`` (adopt-then-ratchet
workflow), ``--update-lock`` (re-pin SIM014's producers.lock),
``--fix`` (mechanical SIM012/SIM014 rewrites), ``--stats`` (per-rule
counts and index timings), and ``--index-cache`` (reuse the phase-1
symbol table across CI steps).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintRun, run_lint
from repro.lint.fixes import apply_fixes
from repro.lint.membudget import (
    build_report,
    check_budget,
    load_budget,
    render_report,
    write_budget,
)
from repro.lint.rules import registered_rules
from repro.lint.sarif import render_sarif
from repro.lint.semantic import compute_lock_entries, write_producers_lock

__all__ = ["main", "build_parser", "render_json"]

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "simlint: two-phase static analyzer for the repro codebase — "
            "per-file invariants (RNG discipline, wall-clock bans, export "
            "hygiene) plus cross-module dataflow rules (closure-captured "
            "generators, shm lifecycle, cache purity, version-bump "
            "enforcement)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. SIM001,SIM006)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest ancestor of cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print registered rules and exit",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of accepted findings (default: [tool.simlint] baseline)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report all findings, ignoring any configured baseline",
    )
    parser.add_argument(
        "--update-lock", action="store_true",
        help="re-pin producers.lock to the current producer digests and exit",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (SIM012 with-wrap, SIM014 version bump)",
    )
    parser.add_argument(
        "--mem-report", action="store_true",
        help=(
            "print the static memory-footprint report (predicted "
            "bytes-per-node at 40k/1M/10M nodes) and fail on regression "
            "against the committed mem-budget"
        ),
    )
    parser.add_argument(
        "--write-mem-budget", action="store_true",
        help="pin the current memory-footprint report as the committed budget",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-rule counts, files indexed, and timings to stderr",
    )
    parser.add_argument(
        "--index-cache", default=None, metavar="DIR",
        help="directory for the phase-1 symbol-table cache (CI reuse)",
    )
    return parser


def _parse_codes(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def render_json(
    findings: Sequence[Diagnostic], files_checked: int
) -> dict[str, object]:
    """The ``--format json`` payload (schema version pinned for CI)."""
    counts: dict[str, int] = {}
    for diag in findings:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "diagnostics": [diag.to_dict() for diag in findings],
        "counts": dict(sorted(counts.items())),
    }


def _print_stats(run: LintRun, *, baselined: int) -> None:
    err = sys.stderr
    print("simlint --stats", file=err)
    print(f"  files checked:      {run.files_checked}", file=err)
    if run.project is not None:
        print(f"  files indexed:      {len(run.project.index.modules)}", file=err)
        print(f"  functions indexed:  {len(run.project.index.functions)}", file=err)
        edges = sum(len(sites) for sites in run.project.index.calls.values())
        print(f"  call edges:         {edges}", file=err)
    print(f"  index build:        {run.index_build_seconds:.3f}s", file=err)
    print(f"  total:              {run.total_seconds:.3f}s", file=err)
    print(f"  suppressed:         {run.suppressed}", file=err)
    if baselined:
        print(f"  baselined:          {baselined}", file=err)
    counts = run.rule_counts
    if counts:
        print("  findings by rule:", file=err)
        for code, count in counts.items():
            print(f"    {code}: {count}", file=err)


def _mem_budget_mode(
    args: argparse.Namespace, run: LintRun, config: LintConfig
) -> int:
    """``--mem-report`` / ``--write-mem-budget``: the static memory gate."""
    if run.project is None:
        print("error: nothing was indexed; cannot build mem report", file=sys.stderr)
        return 2
    report = build_report(run.project)
    budget_path = config.mem_budget_path
    if args.write_mem_budget:
        if budget_path is None:
            print(
                "error: --write-mem-budget needs [tool.simlint] mem-budget",
                file=sys.stderr,
            )
            return 2
        write_budget(budget_path, report)
        print(f"simlint: wrote memory budget to {budget_path}")
        return 0
    print(render_report(report))
    if budget_path is None or not budget_path.is_file():
        print(
            "simlint: no committed mem-budget to check against "
            "(set [tool.simlint] mem-budget and run --write-mem-budget)",
            file=sys.stderr,
        )
        return 0
    committed = load_budget(budget_path)
    if committed is None:
        print(f"error: cannot read budget {budget_path}", file=sys.stderr)
        return 2
    problems = check_budget(
        report, committed, tolerance=config.mem_budget_tolerance
    )
    for problem in problems:
        print(f"mem-budget regression: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"simlint: memory budget OK (within {config.mem_budget_tolerance:.0%})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = registered_rules()
    if args.list_rules:
        for code, rule in rules.items():
            print(f"{code}  {rule.summary}")
        return 0

    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    for label, raw, codes in (
        ("--select", args.select, select),
        ("--ignore", args.ignore, ignore),
    ):
        if raw is not None and not codes:
            print(f"error: {label} requires at least one rule code", file=sys.stderr)
            return 2
        unknown = sorted(codes - rules.keys()) if codes else []
        if unknown:
            print(
                f"error: {label} names unknown rule(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    if args.config is not None:
        pyproject = Path(args.config)
        if not pyproject.is_file():
            print(f"error: no such config file: {pyproject}", file=sys.stderr)
            return 2
    else:
        pyproject = find_pyproject(Path.cwd())
    try:
        config: LintConfig = load_config(pyproject, select=select, ignore=ignore)
    except TypeError as err:
        print(f"error: bad [tool.simlint] configuration: {err}", file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    index_cache = Path(args.index_cache) if args.index_cache else None
    run = run_lint(args.paths, config, index_cache=index_cache)

    if args.update_lock:
        lock_path = config.producers_lock_path
        if lock_path is None:
            print(
                "error: --update-lock needs [tool.simlint] producers-lock",
                file=sys.stderr,
            )
            return 2
        if run.project is None:
            print("error: nothing was indexed; cannot compute lock", file=sys.stderr)
            return 2
        entries, problems = compute_lock_entries(run.project)
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
        write_producers_lock(lock_path, entries)
        print(f"simlint: wrote {len(entries)} producer(s) to {lock_path}")
        return 0

    if args.mem_report or args.write_mem_budget:
        return _mem_budget_mode(args, run, config)

    if args.fix:
        result = apply_fixes(run)
        for path, new_source in sorted(result.new_sources.items()):
            Path(path).write_text(new_source, encoding="utf-8")
        for diag in result.fixed:
            print(f"fixed: {diag.format_human()}")
        for diag, reason in result.skipped:
            print(f"not fixed ({reason}): {diag.format_human()}", file=sys.stderr)
        overlaps = [
            diag for diag, reason in result.skipped if "overlap" in reason
        ]
        if overlaps:
            # Overlapping SIM012/SIM014 edits in one file are refused
            # rather than applied blindly; one more pass picks up the
            # survivors once the first rewrite has landed.
            print(
                f"simlint: {len(overlaps)} fix(es) overlapped an earlier "
                f"edit and were skipped; re-run --fix after this pass",
                file=sys.stderr,
            )
        if result.new_sources:
            # Re-lint from disk so the exit code reflects the fixed tree.
            run = run_lint(args.paths, config, index_cache=index_cache)

    findings = run.findings
    baselined = 0
    baseline_path = (
        Path(args.baseline) if args.baseline else config.baseline_path
    )
    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline needs --baseline or "
                "[tool.simlint] baseline",
                file=sys.stderr,
            )
            return 2
        written = write_baseline(baseline_path, findings)
        print(
            f"simlint: baselined {written.total} finding(s) to {baseline_path}"
        )
        return 0
    if baseline_path is not None and not args.no_baseline:
        baseline = load_baseline(baseline_path)
        if baseline is not None:
            result_b = apply_baseline(findings, baseline)
            findings = result_b.new
            baselined = len(result_b.matched)
            for key in result_b.stale:
                print(
                    f"warning: baseline entry no longer matches anything "
                    f"(run --write-baseline to drop it): {key}",
                    file=sys.stderr,
                )

    if args.format == "json":
        print(json.dumps(render_json(findings, run.files_checked), indent=2))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(findings))
    else:
        for diag in findings:
            print(diag.format_human())
        noun = "file" if run.files_checked == 1 else "files"
        suffix = f" ({baselined} baselined)" if baselined else ""
        if findings:
            print(
                f"simlint: {len(findings)} finding(s) in "
                f"{run.files_checked} {noun}{suffix}"
            )
        else:
            print(f"simlint: {run.files_checked} {noun} clean{suffix}")
    if args.stats:
        _print_stats(run, baselined=baselined)
    return 1 if findings else 0
