"""Phase 2 of simlint v2: intraprocedural dataflow primitives.

The SIM010-SIM013 rules all reduce to a handful of questions about one
function body: which locals hold RNG generators, which names a closure
captures, whether a resource escapes to the caller, and whether its
cleanup is guaranteed on every path.  Those primitives live here, rule
policy lives in :mod:`repro.lint.semantic`.

Everything is deliberately conservative: taint only propagates through
assignments the analysis fully understands, and escape analysis says
"escapes" whenever a value flows anywhere it cannot follow.  A
conservative answer can suppress a true finding, never invent a false
one — the right trade for a CI gate.
"""

from __future__ import annotations

import ast
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.lint.index import dotted_name, resolve_alias

__all__ = [
    "assigned_names",
    "cleanup_guaranteed",
    "escapes",
    "free_names",
    "mutation_sites",
    "own_nodes",
    "rng_tainted_names",
    "walk_shallow",
]

#: Annotations that mark a parameter as carrying a live generator.
_GENERATOR_ANNOTATIONS = frozenset(
    {
        "np.random.Generator",
        "numpy.random.Generator",
        "Generator",
    }
)

#: Callables whose result is a live generator (fully-qualified).
_RNG_PRODUCERS = frozenset(
    {
        "repro.utils.rng.make_rng",
        "repro.utils.rng.spawn",
        "repro.utils.rng.derive",
        "numpy.random.default_rng",
    }
)

#: Bare names treated as RNG producers when import resolution cannot
#: see their origin (the repo imports them unqualified everywhere).
_RNG_PRODUCER_NAMES = frozenset({"make_rng", "spawn", "derive", "default_rng"})


#: Materialized body walks, keyed weakly by the function node.  Every
#: rule family re-asks the same "which nodes are my own" question about
#: the same functions; the repeated ``iter_child_nodes`` traversals
#: dominated whole-repo lint time before this memo.  Entries die with
#: their tree, so repeated in-process runs cannot accumulate.
_OWN_NODES_CACHE: "WeakKeyDictionary[ast.AST, tuple[ast.AST, ...]]" = (
    WeakKeyDictionary()
)


def _walk_own(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> Iterator[ast.AST]:
    stack: list[ast.AST] = (
        [func.body] if isinstance(func.body, ast.expr) else list(func.body)  # type: ignore[list-item]
    )
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> Iterator[ast.AST]:
    """Walk a function's own body without descending into nested defs."""
    cached = _OWN_NODES_CACHE.get(func)
    if cached is None:
        cached = tuple(_walk_own(func))
        _OWN_NODES_CACHE[func] = cached
    return iter(cached)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an arbitrary subtree without descending into nested defs.

    Like :func:`own_nodes` but rooted at any node (e.g. one loop body),
    which is what the array rules need when asking "does this loop body
    call anything?" without being confused by a nested helper def.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def mutation_sites(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[str, ast.expr | None]]:
    """``(name, stored_value)`` pairs for in-place stores into a local.

    Covers ``name[...] = value`` subscript stores and ``name[...] += x`` /
    ``name += x`` augmented assignments (value ``None`` — the result is
    not a plain expression the caller can re-infer).  The array analysis
    uses these to widen a local's value range after its creation site.
    """
    for node in own_nodes(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    yield target.value.id, node.value
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript) and isinstance(
                node.target.value, ast.Name
            ):
                yield node.target.value.id, None
            elif isinstance(node.target, ast.Name):
                yield node.target.id, None


def assigned_names(target: ast.expr) -> set[str]:
    """Names bound by an assignment target (unpacking included)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names |= assigned_names(element)
        return names
    if isinstance(target, ast.Starred):
        return assigned_names(target.value)
    return set()


def _is_generator_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
    else:
        chain = dotted_name(annotation)
        text = chain if chain is not None else ""
    return text in _GENERATOR_ANNOTATIONS or text.endswith(".Generator")


def rng_tainted_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> set[str]:
    """Locals of ``func`` that hold a live RNG generator (or list of them).

    Seeds are *not* tainted — an integer seed is exactly what a worker
    closure is supposed to capture and re-derive from.  Taint starts at
    generator-annotated or rng-named parameters and at calls to the
    blessed constructors, then propagates through simple assignments to
    a fixed point.
    """
    tainted: set[str] = set()
    params = (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        + ([func.args.vararg] if func.args.vararg else [])
        + ([func.args.kwarg] if func.args.kwarg else [])
    )
    for param in params:
        if param.arg in ("rng", "rngs", "_rng", "_rngs") or _is_generator_annotation(
            param.annotation
        ):
            tainted.add(param.arg)

    assignments: list[tuple[set[str], ast.expr]] = []
    for node in own_nodes(func):
        if isinstance(node, ast.Assign):
            targets: set[str] = set()
            for target in node.targets:
                targets |= assigned_names(target)
            assignments.append((targets, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            assignments.append((assigned_names(node.target), node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            # ``for task_rng in rngs:`` taints the loop variable.
            assignments.append((assigned_names(node.target), node.iter))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            assignments.append((assigned_names(node.optional_vars), node.context_expr))

    def value_is_tainted(value: ast.expr) -> bool:
        # Taint flows *structurally*: a bare tainted name, an element
        # of / subscript into a tainted container, or a blessed
        # constructor.  ``rng.choice(...)`` merely *consumes* the
        # generator and returns data, so calls never propagate taint
        # through their arguments.
        if isinstance(value, ast.Call):
            chain = dotted_name(value.func)
            if chain is not None:
                resolved = resolve_alias(chain, aliases)
                if resolved in _RNG_PRODUCERS or (
                    "." not in chain and chain in _RNG_PRODUCER_NAMES
                ):
                    return True
                # ``seq.spawn(3)`` / ``rng.spawn()`` style derivations.
                if chain.endswith(".spawn") and chain.split(".")[0] in tainted:
                    return True
            return False
        if isinstance(value, ast.Name):
            return value.id in tainted
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            return any(value_is_tainted(element) for element in value.elts)
        if isinstance(value, ast.Starred):
            return value_is_tainted(value.value)
        if isinstance(value, ast.Subscript):
            return value_is_tainted(value.value)
        if isinstance(value, ast.IfExp):
            return value_is_tainted(value.body) or value_is_tainted(value.orelse)
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            # ``[g for g in rngs]`` re-packages generators; the element
            # expression is checked with comprehension targets mapped
            # to their (possibly tainted) iterables.
            comp_tainted = any(
                value_is_tainted(gen.iter) for gen in value.generators
            )
            if comp_tainted and isinstance(value.elt, ast.Name):
                targets: set[str] = set()
                for gen in value.generators:
                    targets |= assigned_names(gen.target)
                return value.elt.id in targets
            return value_is_tainted(value.elt)
        return False

    changed = True
    while changed:
        changed = False
        for targets, value in assignments:
            if targets <= tainted:
                continue
            if value_is_tainted(value):
                tainted |= targets
                changed = True
    return tainted


def free_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> set[str]:
    """Names a closure reads from its enclosing scope (approximate).

    Every Name load anywhere in the body (nested defs included — their
    captures are the outer closure's captures too), minus parameters
    and names the closure itself binds.
    """
    bound: set[str] = set()
    loads: set[str] = set()

    def visit(
        f: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
    ) -> None:
        args = f.args
        for param in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(param.arg)
        body = f.body if isinstance(f.body, list) else [f.body]
        for stmt in body:
            for node in ast.walk(stmt):  # type: ignore[arg-type]
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Load):
                        loads.add(node.id)
                    else:
                        bound.add(node.id)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    bound.add(node.name)

    visit(func)
    return loads - bound


def escapes(
    name: str, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> bool:
    """Whether the local ``name`` leaves ``func``'s ownership.

    Returning/yielding it, storing it on an object or into a container,
    or passing it to another callable all transfer responsibility to
    someone this analysis cannot see — so the caller is presumed to
    manage the resource and lifecycle rules stand down.
    """
    for node in own_nodes(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(node.value)
            ):
                return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(node.value)
            ):
                return True
        elif isinstance(node, ast.Call):
            # ``f(x)`` or ``container.append(x)`` hand the value off;
            # ``x.close()`` (method *on* the value) does not.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(arg)
                ):
                    return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None or not any(
                isinstance(n, ast.Name) and n.id == name for n in ast.walk(value)
            ):
                continue
            for target in targets:
                # Attribute/subscript stores (self.x = seg, d[k] = seg)
                # publish the value beyond the function's locals.
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
                if isinstance(target, (ast.Tuple, ast.List)) and any(
                    isinstance(e, (ast.Attribute, ast.Subscript))
                    for e in target.elts
                ):
                    return True
    return False


def _calls_method(tree_nodes: list[ast.stmt], name: str, methods: frozenset[str]) -> bool:
    for stmt in tree_nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
    return False


def cleanup_guaranteed(
    name: str,
    assign: ast.stmt,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    cleanup_methods: frozenset[str] = frozenset({"close", "unlink"}),
) -> bool:
    """Whether ``name`` (bound by ``assign``) is released on every path.

    Accepted shapes, checked in the statement block that contains the
    allocation:

    * ``with name:`` / ``with contextlib.closing(name):`` later in the
      same block — the context manager owns the release;
    * a ``try`` statement whose ``finally`` calls ``name.close()`` or
      ``name.unlink()``, appearing as the *next* effective statement
      (nothing that can raise may sit between allocation and ``try``).
    """
    blocks: list[list[ast.stmt]] = [func.body]
    for node in own_nodes(func):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                blocks.append(handler.body)

    for block in blocks:
        if assign not in block:
            continue
        after = block[block.index(assign) + 1 :]
        for i, stmt in enumerate(after):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return i == 0
                    if (
                        isinstance(expr, ast.Call)
                        and any(
                            isinstance(a, ast.Name) and a.id == name
                            for a in expr.args
                        )
                    ):
                        return i == 0
            if isinstance(stmt, ast.Try) and _calls_method(
                stmt.finalbody, name, cleanup_methods
            ):
                return i == 0
        return False
    return False
