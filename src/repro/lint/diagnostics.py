"""Diagnostic records emitted by simlint rules.

A :class:`Diagnostic` is one finding at one source location.  It is
deliberately plain data — rules construct them, the engine filters them
(pragmas, ``--select``/``--ignore``) and the CLI renders them — so the
three layers stay decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding.

    ``line`` is 1-based (as in compiler output); ``col`` is 0-based (as
    in :mod:`ast`).  Field order makes the natural sort order
    path -> line -> col -> code, which is the order findings are shown.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_human(self) -> str:
        """Render as a familiar ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (stable schema, see docs/static-analysis.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
