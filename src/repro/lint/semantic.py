"""The SIM010-SIM014 semantic rule family (cross-module dataflow).

These rules guard exactly the machinery PRs 2-3 added — the ``pmap``
worker streams, the ``SharedTopology``/``SharedPostings`` shm
transports, and the content-addressed artifact cache — where a single
undisciplined call site silently breaks serial≡parallel equivalence or
poisons cached artifacts:

========  ===========================================================
SIM010    no live RNG generator may cross a ``pmap`` task boundary
SIM011    ``derive(...)``/``pmap(key=...)`` constant key tuples must
          not collide under a shared experiment entry point
SIM012    shm allocations release on every path (with / try-finally /
          ownership transfer)
SIM013    ``cached_call`` producers are pure functions of their key
          (no env, wall clock, fresh RNG, or mutated module globals)
SIM014    a producer whose normalized AST digest changed must bump its
          ``version`` (tracked in the committed producers lock)
========  ===========================================================

All five are :class:`~repro.lint.rules.ProjectRule`\\ s: they run over
the phase-1 :class:`~repro.lint.index.ProjectIndex` and the phase-2
dataflow primitives rather than a single file's tree.

The family continues in :mod:`repro.lint.arrays` (v3), which layers
numpy dtype/value-range inference on the same index:

========  ===========================================================
SIM015    no 64-bit array in a hot kernel whose inferred value range
          provably fits int32/int16
SIM016    no hidden-copy constructs (``np.unique`` per iteration,
          chained fancy indexing, redundant ``astype``,
          non-contiguous slices into the shm transport)
SIM017    no per-element Python loops in hot kernels where the
          vectorized primitive exists
========  ===========================================================
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.lint.diagnostics import Diagnostic
from repro.lint.dataflow import (
    cleanup_guaranteed,
    escapes,
    free_names,
    own_nodes,
    rng_tainted_names,
)
from repro.lint.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
    normalized_digest,
    tree_nodes,
)
from repro.lint.rules import ProjectContext, register_rule

__all__ = [
    "CachePurityRule",
    "DerivedSeedCollisionRule",
    "LockEntry",
    "Producer",
    "RngFlowRule",
    "ShmLifecycleRule",
    "VersionBumpRule",
    "compute_lock_entries",
    "find_producers",
    "load_producers_lock",
    "write_producers_lock",
]

LOCK_SCHEMA_VERSION = 1


def _diag(path: str, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


def _name_loads(node: ast.AST) -> set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


# ---------------------------------------------------------------------
# SIM010 — rng-flow across pmap boundaries
# ---------------------------------------------------------------------


@register_rule
class RngFlowRule:
    """SIM010 — no live generator may cross a ``pmap`` task boundary.

    ``pmap`` owes its serial≡parallel bitwise guarantee to every task
    re-deriving its generator from ``(seed, key, index)``.  A generator
    captured by the task closure (or passed through ``partial``/items)
    is *shared state*: serially the tasks advance one stream in order,
    while pickled worker copies all restart from the same state — the
    two schedules diverge silently.
    """

    code = "SIM010"
    summary = "no rng/Generator value may be captured by a pmap task closure"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        for func in ctx.index.functions.values():
            module = ctx.index.modules[func.module]
            yield from self._check_scope(
                ctx, module, func.path, func.node, inherited=set()
            )

    def _check_scope(
        self,
        ctx: ProjectContext,
        module: ModuleInfo,
        path: str,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
        inherited: set[str],
    ) -> Iterator[Diagnostic]:
        tainted = rng_tainted_names(scope, module.aliases) | inherited
        local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        for node in own_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[node.name] = node
                nested.append(node)
        for node in own_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.index.qualified_chain(node.func, module)
            if chain not in ctx.config.parallel_maps:
                continue
            yield from self._check_pmap_call(
                ctx, path, node, tainted, local_defs
            )
        for sub in nested:
            yield from self._check_scope(ctx, module, path, sub, tainted)

    def _check_pmap_call(
        self,
        ctx: ProjectContext,
        path: str,
        call: ast.Call,
        tainted: set[str],
        local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> Iterator[Diagnostic]:
        seen: set[str] = set()

        def leak(node: ast.AST, name: str, how: str) -> Iterator[Diagnostic]:
            if name in seen:
                return
            seen.add(name)
            yield _diag(
                path, node, self.code,
                f"rng generator {name!r} {how} a pmap task boundary; "
                "workers must re-derive via derive(seed, key, i), never "
                "share a live generator",
            )

        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            # A lambda task (or one wrapped in partial) capturing a
            # generator from the enclosing scope.
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    for name in sorted(free_names(sub) & tainted):
                        yield from leak(sub, name, "is captured by a closure crossing")
            # A locally-defined task function capturing a generator.
            for name in sorted(_name_loads(arg)):
                if name in local_defs:
                    captured = free_names(local_defs[name]) & tainted
                    for cap in sorted(captured):
                        yield from leak(arg, cap, f"is captured by task {name}() crossing")
                elif name in tainted:
                    yield from leak(arg, name, "is passed directly across")


# ---------------------------------------------------------------------
# SIM011 — derived-seed collisions
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class _KeySite:
    """One constant-keyed stream derivation site."""

    owner: str  # enclosing function qualname
    path: str
    line: int
    col: int
    keys: tuple[object, ...]  # constant derive keys, or (pmap_key,)
    is_pmap: bool
    #: how the site spells its seed: ("const", v) / ("name", id) /
    #: ("opaque",).  Identical keys only collide when the seeds can be
    #: the same value — distinct constants prove independence, distinct
    #: variable names leave it unprovable either way.
    seed: tuple[object, ...] = ("opaque",)


def _seed_token(expr: ast.expr | None) -> tuple[object, ...]:
    if isinstance(expr, ast.Constant):
        return ("const", expr.value)
    if isinstance(expr, ast.Name):
        return ("name", expr.id)
    return ("opaque",)


@register_rule
class DerivedSeedCollisionRule:
    """SIM011 — constant derive keys must be unique per entry point.

    Two ``derive(seed, *keys)`` call sites with identical constant key
    tuples produce *identical generators* when reached from the same
    experiment (same root seed): their draws are correlated, not
    independent, which silently biases every statistic averaged over
    them.  ``pmap(key=K)`` sites participate as the family
    ``(K, 0), (K, 1), ...`` — the docstring's own warning, enforced.
    """

    code = "SIM011"
    summary = "derive()/pmap(key=...) constant key tuples collide under one entry point"

    def _collect(self, ctx: ProjectContext) -> list[_KeySite]:
        sites: list[_KeySite] = []
        for func in ctx.index.functions.values():
            module = ctx.index.modules[func.module]
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = ctx.index.qualified_chain(node.func, module)
                if chain in ctx.config.derive_functions:
                    if len(node.args) < 2 or node.keywords:
                        continue
                    keys: list[object] = []
                    constant = True
                    for arg in node.args[1:]:
                        if isinstance(arg, ast.Constant):
                            keys.append(arg.value)
                        else:
                            constant = False
                            break
                    if constant:
                        sites.append(
                            _KeySite(
                                owner=func.qualname, path=func.path,
                                line=node.lineno, col=node.col_offset,
                                keys=tuple(keys), is_pmap=False,
                                seed=_seed_token(node.args[0]),
                            )
                        )
                elif chain in ctx.config.parallel_maps:
                    seed_expr = next(
                        (kw.value for kw in node.keywords if kw.arg == "seed"),
                        None,
                    )
                    for kw in node.keywords:
                        if kw.arg == "key" and isinstance(kw.value, ast.Constant):
                            sites.append(
                                _KeySite(
                                    owner=func.qualname, path=func.path,
                                    line=node.lineno, col=node.col_offset,
                                    keys=(kw.value.value,), is_pmap=True,
                                    seed=_seed_token(seed_expr),
                                )
                            )
        return sorted(sites, key=lambda s: (s.path, s.line, s.col))

    @staticmethod
    def _collide(a: _KeySite, b: _KeySite) -> bool:
        # Provably-different or unknowable seeds cannot be shown to
        # yield the same stream; only matching seed spellings collide.
        if a.seed == ("opaque",) or b.seed == ("opaque",) or a.seed != b.seed:
            return False
        if a.is_pmap and b.is_pmap:
            return a.keys[0] == b.keys[0]
        if a.is_pmap != b.is_pmap:
            pmap, drv = (a, b) if a.is_pmap else (b, a)
            # pmap key K spans (K, i) for integer task indices i.
            return (
                len(drv.keys) == 2
                and drv.keys[0] == pmap.keys[0]
                and isinstance(drv.keys[1], int)
                and not isinstance(drv.keys[1], bool)
            )
        return a.keys == b.keys

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        sites = self._collect(ctx)
        for i, later in enumerate(sites):
            for earlier in sites[:i]:
                if (earlier.path, earlier.line) == (later.path, later.line):
                    continue
                if not self._collide(earlier, later):
                    continue
                shared = ctx.index.ancestors(earlier.owner) & ctx.index.ancestors(
                    later.owner
                )
                if not shared:
                    continue
                root = sorted(shared)[0]
                what = "pmap task-stream key" if later.is_pmap else "derive key tuple"
                node = ast.Constant(value=None)
                node.lineno, node.col_offset = later.line, later.col
                yield _diag(
                    later.path, node, self.code,
                    f"{what} {later.keys!r} collides with "
                    f"{earlier.path}:{earlier.line} (both reachable from "
                    f"{root}); identical (seed, key) tuples yield identical "
                    "generators — use distinct stream keys",
                )
                break


# ---------------------------------------------------------------------
# SIM012 — shm lifecycle
# ---------------------------------------------------------------------


@register_rule
class ShmLifecycleRule:
    """SIM012 — shared-memory allocations release on every path.

    A ``SharedTopology``/``SharedPostings``/``SharedMemory`` segment is
    a kernel object: an exception between allocation and ``close()``
    leaks it until reboot.  The allocation must be a ``with`` item,
    be immediately guarded by ``try/finally`` cleanup, or escape to the
    caller (return/yield/store/pass), which transfers ownership.
    """

    code = "SIM012"
    summary = "shm allocation without guaranteed close()/unlink() on every path"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        for func in ctx.index.functions.values():
            module = ctx.index.modules[func.module]
            yield from self._check_scope(ctx, module, func.path, func.node)

    def _is_alloc(
        self, ctx: ProjectContext, module: ModuleInfo, value: ast.expr
    ) -> bool:
        if not isinstance(value, ast.Call):
            return False
        chain = ctx.index.qualified_chain(value.func, module)
        return chain in ctx.config.shm_factories

    def _check_scope(
        self,
        ctx: ProjectContext,
        module: ModuleInfo,
        path: str,
        scope: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Diagnostic]:
        for node in own_nodes(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, module, path, node)
            elif isinstance(node, ast.Expr) and self._is_alloc(
                ctx, module, node.value
            ):
                yield _diag(
                    path, node, self.code,
                    "shm allocation is not bound to a name or context "
                    "manager — its segments can never be released",
                )
            elif isinstance(node, ast.Assign) and self._is_alloc(
                ctx, module, node.value
            ):
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ):
                    continue
                name = node.targets[0].id
                if escapes(name, scope):
                    continue  # ownership transferred to the caller
                if cleanup_guaranteed(name, node, scope):
                    continue
                yield _diag(
                    path, node, self.code,
                    f"shm allocation {name!r} has no guaranteed release: "
                    "use `with`, or follow the allocation immediately with "
                    "try/finally calling close()/unlink() (an exception "
                    "here leaks the kernel segment)",
                )


# ---------------------------------------------------------------------
# Producers (shared by SIM013 / SIM014)
# ---------------------------------------------------------------------


@dataclass
class Producer:
    """One ``cached_call`` registration resolved from the index."""

    name: str | None  # constant producer name, None when dynamic
    version: int | None  # resolved constant version, None when dynamic
    call: ast.Call
    version_node: ast.expr | None
    compute_node: ast.AST | None  # Lambda / FunctionDef of the compute callable
    owner: FunctionInfo
    module: ModuleInfo


#: ``find_producers`` is asked the same question by SIM013 and SIM014;
#: the scan is a full-repo AST walk, so share one answer per index.
_PRODUCERS_CACHE: "WeakKeyDictionary[ProjectIndex, list[Producer]]" = (
    WeakKeyDictionary()
)


def find_producers(ctx: ProjectContext) -> list[Producer]:
    """Every ``cached_call(name, version, digest, compute)`` site."""
    cached = _PRODUCERS_CACHE.get(ctx.index)
    if cached is not None:
        return cached
    producers: list[Producer] = []
    for func in ctx.index.functions.values():
        module = ctx.index.modules[func.module]
        calls: list[ast.Call] = []
        local_defs: dict[str, ast.AST] = {}
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                calls.append(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[node.name] = node
        for node in calls:
            chain = ctx.index.qualified_chain(node.func, module)
            if chain not in ctx.config.cache_registrars:
                continue
            args: dict[str, ast.expr | None] = {
                "name": None, "version": None, "compute": None
            }
            positional = ("name", "version", "digest", "compute")
            for i, arg in enumerate(node.args[:4]):
                args[positional[i]] = arg if positional[i] != "digest" else None
            for kw in node.keywords:
                if kw.arg in args:
                    args[kw.arg] = kw.value

            name_node = args["name"]
            name = (
                name_node.value
                if isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
                else None
            )
            version_node = args["version"]
            version: int | None = None
            if isinstance(version_node, ast.Constant) and isinstance(
                version_node.value, int
            ):
                version = version_node.value
            elif isinstance(version_node, ast.Name):
                version = module.int_constants.get(version_node.id)

            compute_expr = args["compute"]
            compute_node: ast.AST | None = None
            if isinstance(compute_expr, ast.Lambda):
                compute_node = compute_expr
            elif isinstance(compute_expr, ast.Name):
                if compute_expr.id in local_defs:
                    compute_node = local_defs[compute_expr.id]
                else:
                    resolved = ctx.index.resolve_name(
                        compute_expr.id, module, func
                    )
                    if resolved is not None and resolved[1] == "function":
                        compute_node = ctx.index.functions[resolved[0]].node
            producers.append(
                Producer(
                    name=name, version=version, call=node,
                    version_node=version_node, compute_node=compute_node,
                    owner=func, module=module,
                )
            )
    _PRODUCERS_CACHE[ctx.index] = producers
    return producers


def _compute_reachable(
    ctx: ProjectContext, producer: Producer
) -> list[FunctionInfo]:
    """Project functions transitively reachable from the compute callable.

    Functions living in a registrar's own module (the cache machinery
    itself) are excluded: the infrastructure deliberately reads the
    REPRO_CACHE knobs to decide *whether* to cache, which never changes
    the produced value, and hashing it into SIM014 digests would flag
    every producer whenever the cache plumbing is refactored.

    Observational modules (``obs_modules``, e.g. ``repro.obs``) are
    likewise excluded: they time and count what producers do without
    ever feeding a value back, so their clock reads and registry
    updates are not impurities of the producer, and refactoring the
    instrumentation must not churn SIM014 digests.
    """
    if producer.compute_node is None:
        return []
    trusted_modules = {
        registrar.rsplit(".", 1)[0] for registrar in ctx.config.cache_registrars
    }
    obs_prefixes = tuple(ctx.config.obs_modules)

    def is_observational(module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in obs_prefixes
        )
    roots: set[str] = set()
    for node in ast.walk(producer.compute_node):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.index.resolve_call(node, producer.module, producer.owner)
        if resolved is None:
            continue
        qualname, kind = resolved
        roots.add(f"{qualname}.__init__" if kind == "class" else qualname)
    reachable: set[str] = set()
    for root in roots:
        if root in ctx.index.functions:
            reachable.add(root)
            reachable |= ctx.index.reachable_from(root)
    return [
        ctx.index.functions[q]
        for q in sorted(reachable)
        if q in ctx.index.functions
        and ctx.index.functions[q].module not in trusted_modules
        and not is_observational(ctx.index.functions[q].module)
    ]


# ---------------------------------------------------------------------
# SIM013 — cache purity
# ---------------------------------------------------------------------

_WALLCLOCK_FUNCS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_RNG_CONSTRUCTOR_SUFFIXES = ("make_rng", "default_rng")

_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "setdefault", "pop",
     "popitem", "clear", "remove", "discard"}
)


def _mutated_globals(module: ModuleInfo) -> frozenset[str]:
    """Module-level names whose contents change at runtime.

    A read of such a name inside a cached producer makes the artifact
    depend on call history rather than on the cache key.
    """
    top_level: set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    top_level.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            top_level.add(stmt.target.id)
    mutated: set[str] = set()
    for node in tree_nodes(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    mutated.update(n for n in sub.names if n in top_level)
                elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in top_level
                        ):
                            mutated.add(target.value.id)
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _MUTATING_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in top_level
                ):
                    mutated.add(sub.func.value.id)
    return frozenset(mutated)


def _impurities(
    ctx: ProjectContext,
    body: ast.AST,
    module: ModuleInfo,
    mutated: frozenset[str],
) -> Iterator[str]:
    """Impure reads inside one function body (human-readable labels).

    Mutated-global handling recognizes the memoization idiom: a body
    that both reads *and* key-stores into the same global
    (``cache[k] = v`` … ``return cache[k]``) implements a value-neutral
    cache and is not flagged.  Accumulating methods (``.append`` and
    friends) do *not* earn the exemption — a body reading a global it
    appends to returns call-history, which is exactly the poison this
    rule exists to catch.
    """
    writes: set[str] = set()
    store_targets: set[int] = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if isinstance(node.value, ast.Name):
                writes.add(node.value.id)
                store_targets.add(id(node.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            # The method call's own name node is a mutation, not a
            # value read — but it grants no read exemption.
            store_targets.add(id(node.func.value))
    for node in ast.walk(body):
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None:
                continue
            resolved = ctx.index.qualified_chain(node.func, module) or chain
            if resolved in _WALLCLOCK_FUNCS:
                yield f"reads the wall clock via {resolved}()"
            elif resolved in ("os.getenv", "os.environ.get"):
                yield f"reads os.environ via {resolved}()"
            elif resolved.rpartition(".")[2] in _RNG_CONSTRUCTOR_SUFFIXES:
                seed_args = list(node.args) + [kw.value for kw in node.keywords]
                if not seed_args or all(
                    isinstance(a, ast.Constant) and a.value is None
                    for a in seed_args
                ):
                    yield (
                        f"draws fresh OS entropy via {resolved}() with no seed"
                    )
        elif isinstance(node, ast.Attribute):
            chain = dotted_name(node)
            if chain is not None and ctx.index.qualified_chain(
                node, module
            ) == "os.environ":
                yield "reads os.environ"
        elif isinstance(node, ast.Global):
            yield f"declares global {', '.join(node.names)}"
        elif (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mutated
            and node.id not in writes
            and id(node) not in store_targets
        ):
            yield f"reads mutated module global {node.id!r}"


@register_rule
class CachePurityRule:
    """SIM013 — cached producers are pure functions of their cache key.

    ``cached_call`` replays a pickled artifact whenever ``(name,
    version, digest)`` matches; anything the producer reads that is not
    captured by that key — environment variables, the wall clock, fresh
    OS-entropy RNG, module globals mutated at runtime — makes the first
    run's incidental state everyone else's permanent answer.
    """

    code = "SIM013"
    summary = "cached_call producers must not read env/clock/fresh-RNG/mutated globals"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        mutated_cache: dict[str, frozenset[str]] = {}
        for producer in find_producers(ctx):
            if producer.compute_node is None:
                continue
            label = producer.name or "<dynamic>"
            scanned: list[tuple[ast.AST, ModuleInfo, str]] = [
                (producer.compute_node, producer.module, "the producer")
            ]
            for func in _compute_reachable(ctx, producer):
                scanned.append(
                    (func.node, ctx.index.modules[func.module], func.qualname)
                )
            seen: set[str] = set()
            for body, module, where in scanned:
                mutated = mutated_cache.get(module.name)
                if mutated is None:
                    mutated = _mutated_globals(module)
                    mutated_cache[module.name] = mutated
                for impurity in _impurities(ctx, body, module, mutated):
                    via = "" if where == "the producer" else f" (via {where})"
                    message = (
                        f"cached producer {label!r} {impurity}{via}; the "
                        "value is not represented in its cache key, so the "
                        "first run's state poisons every later cache hit"
                    )
                    if message in seen:
                        continue
                    seen.add(message)
                    yield _diag(
                        producer.owner.path, producer.call, self.code, message
                    )


# ---------------------------------------------------------------------
# SIM014 — version-bump enforcement via the producers lock
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class LockEntry:
    """One producer's pinned state in ``producers.lock``."""

    digest: str
    version: int


def load_producers_lock(path: Path) -> dict[str, LockEntry] | None:
    """Parse the lock file; None when absent or unreadable."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "producers" not in data:
        return None
    entries: dict[str, LockEntry] = {}
    raw = data["producers"]
    if not isinstance(raw, dict):
        return None
    for name, entry in raw.items():
        if (
            isinstance(entry, dict)
            and isinstance(entry.get("digest"), str)
            and isinstance(entry.get("version"), int)
        ):
            entries[name] = LockEntry(entry["digest"], entry["version"])
    return entries


def write_producers_lock(path: Path, entries: dict[str, LockEntry]) -> None:
    """Write the lock file (sorted, newline-terminated, diff-friendly)."""
    payload = {
        "schema": LOCK_SCHEMA_VERSION,
        "producers": {
            name: {"digest": entry.digest, "version": entry.version}
            for name, entry in sorted(entries.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def producer_digest(ctx: ProjectContext, producer: Producer) -> str | None:
    """Normalized digest of the compute callable plus reachable code."""
    if producer.compute_node is None:
        return None
    nodes: list[ast.AST] = [producer.compute_node]
    nodes.extend(f.node for f in _compute_reachable(ctx, producer))
    return normalized_digest(*nodes)


def compute_lock_entries(
    ctx: ProjectContext,
) -> tuple[dict[str, LockEntry], list[str]]:
    """Current ``(digest, version)`` per producer, plus skip reasons."""
    entries: dict[str, LockEntry] = {}
    problems: list[str] = []
    for producer in find_producers(ctx):
        where = f"{producer.owner.path}:{producer.call.lineno}"
        if producer.name is None:
            problems.append(f"{where}: producer name is not a string constant")
            continue
        if producer.version is None:
            problems.append(
                f"{where}: version of {producer.name!r} is not a resolvable "
                "int constant"
            )
            continue
        digest = producer_digest(ctx, producer)
        if digest is None:
            problems.append(
                f"{where}: compute callable of {producer.name!r} is not "
                "statically resolvable"
            )
            continue
        existing = entries.get(producer.name)
        if existing is not None and existing.digest != digest:
            problems.append(
                f"{where}: duplicate producer name {producer.name!r} with "
                "diverging code"
            )
            continue
        entries[producer.name] = LockEntry(digest, producer.version)
    return entries, problems


@register_rule
class VersionBumpRule:
    """SIM014 — producer code changes require a ``version`` bump.

    The committed producer lock pins each producer's normalized AST
    digest (compute callable plus every statically-reachable project
    function) against its version.  Editing that code without bumping
    the version silently serves stale artifacts to everyone whose cache
    predates the edit.  ``repro-lint --update-lock`` refreshes the lock
    — the explicit acknowledgment for meaning-preserving refactors.
    """

    code = "SIM014"
    summary = "cached producer changed without a version bump (producers.lock)"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        lock_path = ctx.config.producers_lock_path
        if lock_path is None:
            return
        lock = load_producers_lock(lock_path)
        if lock is None:
            return  # opt-in: no committed lock, no enforcement
        for producer in find_producers(ctx):
            if producer.name is None or producer.version is None:
                continue
            digest = producer_digest(ctx, producer)
            if digest is None:
                continue
            entry = lock.get(producer.name)
            if entry is None:
                yield _diag(
                    producer.owner.path, producer.call, self.code,
                    f"producer {producer.name!r} is not in "
                    f"{lock_path.name}; run `repro-lint --update-lock`",
                )
            elif digest != entry.digest and producer.version == entry.version:
                yield _diag(
                    producer.owner.path, producer.call, self.code,
                    f"code reachable from producer {producer.name!r} changed "
                    f"but version stayed {producer.version}; bump the "
                    "version (stale cached artifacts would be replayed) or "
                    "run `repro-lint --update-lock` if the meaning is "
                    "unchanged",
                )
            elif digest != entry.digest or producer.version != entry.version:
                yield _diag(
                    producer.owner.path, producer.call, self.code,
                    f"{lock_path.name} entry for {producer.name!r} is stale; "
                    "run `repro-lint --update-lock`",
                )
