"""simlint — AST-based static analysis for simulation invariants.

The paper's figures are statistical claims over seeded stochastic
simulations, so the repo's credibility rests on seed-determinism
(:mod:`repro.utils.rng`).  simlint *enforces* that discipline — plus a
handful of correctness invariants — on every commit:

========  ===========================================================
SIM001    randomness flows through ``make_rng``/``spawn``/``derive``
SIM002    no wall-clock reads inside simulation code
SIM003    no mutable default arguments
SIM004    no bare/overbroad ``except`` clauses
SIM005    ``__all__`` declared and accurate in public modules
SIM006    no ``==``/``!=`` against float literals
SIM007    public randomness consumers take an annotated seed/rng param
========  ===========================================================

Run ``python -m repro.lint src`` (or the ``repro-lint`` script), tune
via ``[tool.simlint]`` in pyproject.toml, and suppress a single line
with ``# simlint: ignore[SIMxxx]``.  New rules are one registered class
— see docs/static-analysis.md.
"""

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import discover_files, lint_file, lint_paths
from repro.lint.rules import (
    FileContext,
    Rule,
    register_rule,
    registered_rules,
    rule_codes,
)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "Rule",
    "discover_files",
    "find_pyproject",
    "lint_file",
    "lint_paths",
    "load_config",
    "register_rule",
    "registered_rules",
    "rule_codes",
]
