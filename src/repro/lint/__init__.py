"""simlint — static analysis for simulation invariants, in two phases.

The paper's figures are statistical claims over seeded stochastic
simulations, so the repo's credibility rests on seed-determinism
(:mod:`repro.utils.rng`).  simlint *enforces* that discipline — plus a
handful of correctness invariants — on every commit.

Per-file rules (phase 1, one AST at a time):

========  ===========================================================
SIM001    randomness flows through ``make_rng``/``spawn``/``derive``
SIM002    no wall-clock reads inside simulation code
SIM003    no mutable default arguments
SIM004    no bare/overbroad ``except`` clauses
SIM005    ``__all__`` declared and accurate in public modules
SIM006    no ``==``/``!=`` against float literals
SIM007    public randomness consumers take an annotated seed/rng param
========  ===========================================================

Project rules (phase 2, over the cross-module symbol table and call
graph built by :mod:`repro.lint.index`):

========  ===========================================================
SIM010    no rng/Generator value captured by a pmap task closure
SIM011    no two derive()/pmap-key sites with colliding constant keys
SIM012    shm allocations release their segments on every path
SIM013    cached producers stay pure functions of their cache key
SIM014    producer code changes require a version bump (producers.lock)
========  ===========================================================

Run ``python -m repro.lint src tests benchmarks`` (or the
``repro-lint`` script), tune via ``[tool.simlint]`` in pyproject.toml,
and suppress a single line with ``# simlint: ignore[SIMxxx] reason``
(the reason is mandatory for the SIM01x family).  New rules are one
registered class — see docs/static-analysis.md.
"""

from repro.lint.baseline import (
    Baseline,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.config import LintConfig, TreeRules, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    LintRun,
    Pragma,
    discover_files,
    lint_file,
    lint_paths,
    run_lint,
)
from repro.lint.index import ProjectIndex, build_index
from repro.lint.rules import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    register_rule,
    registered_rules,
    rule_codes,
)
from repro.lint.sarif import render_sarif, to_sarif

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "LintRun",
    "Pragma",
    "ProjectContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "TreeRules",
    "apply_baseline",
    "build_index",
    "discover_files",
    "find_pyproject",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "load_config",
    "register_rule",
    "registered_rules",
    "render_sarif",
    "rule_codes",
    "run_lint",
    "to_sarif",
    "write_baseline",
]
