"""The simlint engine: discover files, parse, run rules, filter.

Suppression happens here, not in rules: a rule always reports what it
sees, and the engine drops diagnostics whose line carries a
``# simlint: ignore[SIMxxx]`` pragma or whose code is deselected.  That
keeps every rule oblivious to configuration mechanics.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint import builtin as _builtin  # noqa: F401  (registers SIM001-SIM007)
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import FileContext, Rule, registered_rules

__all__ = [
    "lint_file",
    "lint_paths",
    "discover_files",
    "parse_pragmas",
    "iter_findings",
]

# ``# simlint: ignore[SIM001, SIM006]`` — codes are explicit; there is
# deliberately no blanket "ignore everything" form.
_PRAGMA_RE = re.compile(r"#\s*simlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


def parse_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes suppressed there."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            if codes:
                pragmas[lineno] = codes
    return pragmas


def discover_files(
    paths: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            posix = candidate.as_posix()
            if any(fnmatch.fnmatch(posix, pattern) for pattern in config.exclude):
                continue
            out.append(candidate)
    return out


def lint_file(
    path: str | Path,
    config: LintConfig,
    *,
    rules: dict[str, Rule] | None = None,
) -> list[Diagnostic]:
    """Lint one file; a syntax error surfaces as a SIM000 diagnostic."""
    path = Path(path)
    if rules is None:
        rules = registered_rules()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [
            Diagnostic(
                path=str(path), line=1, col=0, code="SIM000",
                message=f"cannot read file: {err}",
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return [
            Diagnostic(
                path=str(path), line=err.lineno or 1,
                col=(err.offset or 1) - 1, code="SIM000",
                message=f"syntax error: {err.msg}",
            )
        ]
    ctx = FileContext(
        path=str(path),
        tree=tree,
        source=source,
        config=config,
        lines=tuple(source.splitlines()),
    )
    pragmas = parse_pragmas(source)
    findings: list[Diagnostic] = []
    for code, rule in rules.items():
        if not config.is_rule_enabled(code):
            continue
        for diag in rule.check(ctx):
            if diag.code in pragmas.get(diag.line, frozenset()):
                continue
            findings.append(diag)
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig,
    *,
    rules: dict[str, Rule] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint many paths; returns ``(diagnostics, files_checked)``."""
    files = discover_files(paths, config)
    findings: list[Diagnostic] = []
    for path in files:
        findings.extend(lint_file(path, config, rules=rules))
    return sorted(findings), len(files)


def iter_findings(
    paths: Sequence[str | Path], config: LintConfig
) -> Iterator[Diagnostic]:
    """Convenience generator over :func:`lint_paths` findings."""
    findings, _ = lint_paths(paths, config)
    yield from findings
