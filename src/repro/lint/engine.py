"""The simlint engine: discover, parse, index, run rules, filter.

v2 runs in two phases.  Phase 1 parses every target file once, runs
the per-file rules, and builds the project-wide
:class:`~repro.lint.index.ProjectIndex` (symbol table + call graph).
Phase 2 hands that index to the registered
:class:`~repro.lint.rules.ProjectRule`\\ s (SIM010-SIM014 determinism
and lifecycle rules, SIM015-SIM017 array scale-readiness rules), whose
dataflow analyses span function and module boundaries.

Suppression happens here, not in rules: a rule always reports what it
sees, and the engine drops diagnostics whose line carries a
``# simlint: ignore[SIMxxx]`` pragma or whose code is deselected
(globally or by a ``per-tree`` overlay).  Pragmas for the semantic
SIM01x family must carry a justifying reason after the bracket —
``# simlint: ignore[SIM012] owner outlives workers by design`` — or
the suppression is refused.
"""

from __future__ import annotations

import ast
import fnmatch
import re
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint import arrays as _arrays  # noqa: F401  (registers SIM015-SIM017)
from repro.lint import builtin as _builtin  # noqa: F401  (registers SIM001-SIM007)
from repro.lint import concurrency as _concurrency  # noqa: F401  (SIM018-SIM021)
from repro.lint import semantic as _semantic  # noqa: F401  (registers SIM010-SIM014)
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.index import ProjectIndex, load_or_build_index
from repro.lint.rules import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    registered_rules,
)

__all__ = [
    "LintRun",
    "Pragma",
    "discover_files",
    "iter_findings",
    "lint_file",
    "lint_paths",
    "parse_pragmas",
    "run_lint",
]

# ``# simlint: ignore[SIM001, SIM006] optional reason`` — codes are
# explicit; there is deliberately no blanket "ignore everything" form.
_PRAGMA_RE = re.compile(r"#\s*simlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$")

# Semantic- and concurrency-family suppressions must explain
# themselves: the rules they silence encode cross-module contracts a
# reader cannot re-derive from the single pragma'd line.
_REASON_REQUIRED_RE = re.compile(r"^SIM0(?:1\d|2[01])$")


@dataclass(frozen=True)
class Pragma:
    """One in-line suppression: the codes it names plus its reason text."""

    codes: frozenset[str]
    reason: str = ""


def parse_pragmas(source: str) -> dict[int, Pragma]:
    """Map 1-based line numbers to the :class:`Pragma` present there."""
    pragmas: dict[int, Pragma] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",") if code.strip()
            )
            if codes:
                pragmas[lineno] = Pragma(codes=codes, reason=match.group(2).strip())
    return pragmas


def discover_files(
    paths: Sequence[str | Path], config: LintConfig
) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets.

    ``exclude`` globs apply only to directory *expansion*: a file named
    explicitly on the command line is always linted, so excluded trees
    (e.g. lint-rule fixtures) remain individually checkable.
    """
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
            apply_exclude = True
        else:
            candidates = [path]
            apply_exclude = False
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            posix = candidate.as_posix()
            if apply_exclude and any(
                fnmatch.fnmatch(posix, pattern) for pattern in config.exclude
            ):
                continue
            out.append(candidate)
    return out


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    findings: list[Diagnostic]
    files_checked: int
    project: ProjectContext | None = None
    index_build_seconds: float = 0.0
    total_seconds: float = 0.0
    #: pre-filter counts of suppressed findings, for ``--stats``.
    suppressed: int = 0

    @property
    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.findings:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))


def _parse_one(
    path: Path, config: LintConfig
) -> tuple[FileContext | None, Diagnostic | None]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return None, Diagnostic(
            path=str(path), line=1, col=0, code="SIM000",
            message=f"cannot read file: {err}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return None, Diagnostic(
            path=str(path), line=err.lineno or 1,
            col=(err.offset or 1) - 1, code="SIM000",
            message=f"syntax error: {err.msg}",
        )
    ctx = FileContext(
        path=str(path),
        tree=tree,
        source=source,
        config=config,
        lines=tuple(source.splitlines()),
    )
    return ctx, None


def _filter_findings(
    findings: Iterable[Diagnostic],
    contexts: dict[str, FileContext],
    config: LintConfig,
) -> tuple[list[Diagnostic], int]:
    """Apply pragma suppression and per-tree enablement; count drops."""
    pragma_cache: dict[str, dict[int, Pragma]] = {}
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in findings:
        ctx = contexts.get(diag.path)
        if ctx is not None and not config.is_rule_enabled(
            diag.code, ctx.posix_path
        ):
            suppressed += 1
            continue
        if ctx is None:
            kept.append(diag)
            continue
        pragmas = pragma_cache.get(diag.path)
        if pragmas is None:
            pragmas = parse_pragmas(ctx.source)
            pragma_cache[diag.path] = pragmas
        pragma = pragmas.get(diag.line)
        if pragma is not None and diag.code in pragma.codes:
            if _REASON_REQUIRED_RE.match(diag.code) and not pragma.reason:
                kept.append(
                    replace(
                        diag,
                        message=diag.message
                        + " [pragma refused: SIM01x/SIM02x suppressions "
                        "require a reason after the bracket]",
                    )
                )
            else:
                suppressed += 1
            continue
        kept.append(diag)
    return kept, suppressed


def run_lint(
    paths: Sequence[str | Path],
    config: LintConfig,
    *,
    rules: dict[str, Rule | ProjectRule] | None = None,
    index_cache: Path | None = None,
) -> LintRun:
    """Lint ``paths`` end to end; the full-fidelity engine entry point.

    Returns the :class:`LintRun` with findings sorted, pragmas and
    per-tree selection applied, and the built :class:`ProjectContext`
    attached (for ``--update-lock``, ``--stats``, and tooling).
    """
    start = time.perf_counter()  # simlint: ignore[SIM002] linter self-timing, not simulation output
    if rules is None:
        rules = registered_rules()
    files = discover_files(paths, config)

    contexts: dict[str, FileContext] = {}
    raw: list[Diagnostic] = []
    for path in files:
        ctx, error = _parse_one(path, config)
        if error is not None:
            raw.append(error)
        if ctx is not None:
            contexts[ctx.path] = ctx

    file_rules = {
        code: rule for code, rule in rules.items() if isinstance(rule, Rule)
    }
    project_rules = {
        code: rule
        for code, rule in rules.items()
        if isinstance(rule, ProjectRule) and not isinstance(rule, Rule)
    }

    for ctx in contexts.values():
        for code, rule in file_rules.items():
            if not config.is_rule_enabled(code, ctx.posix_path):
                continue
            raw.extend(rule.check(ctx))

    project: ProjectContext | None = None
    index_seconds = 0.0
    if project_rules or contexts:
        index: ProjectIndex = load_or_build_index(
            [(Path(ctx.path), ctx.tree) for ctx in contexts.values()],
            index_cache,
        )
        index_seconds = index.build_seconds
        project = ProjectContext(index=index, config=config, files=dict(contexts))
        for code, rule in project_rules.items():
            raw.extend(rule.check_project(project))

    findings, suppressed = _filter_findings(raw, contexts, config)
    return LintRun(
        findings=sorted(findings),
        files_checked=len(files),
        project=project,
        index_build_seconds=index_seconds,
        total_seconds=time.perf_counter() - start,  # simlint: ignore[SIM002] linter self-timing, not simulation output
        suppressed=suppressed,
    )


def lint_file(
    path: str | Path,
    config: LintConfig,
    *,
    rules: dict[str, Rule | ProjectRule] | None = None,
) -> list[Diagnostic]:
    """Lint one file (project rules see a single-file index).

    A syntax error surfaces as a SIM000 diagnostic.
    """
    return run_lint([Path(path)], config, rules=rules).findings


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig,
    *,
    rules: dict[str, Rule | ProjectRule] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Lint many paths; returns ``(diagnostics, files_checked)``."""
    run = run_lint(paths, config, rules=rules)
    return run.findings, run.files_checked


def iter_findings(
    paths: Sequence[str | Path], config: LintConfig
) -> Iterator[Diagnostic]:
    """Convenience generator over :func:`lint_paths` findings."""
    findings, _ = lint_paths(paths, config)
    yield from findings
