"""SARIF 2.1.0 output for simlint.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI platforms ingest to annotate pull requests with findings.
This module renders a findings list as a single-run SARIF log: one
``tool.driver`` describing the registered rules, one ``result`` per
diagnostic, file URIs relative to the repository root.

Only the required subset of the spec is emitted — enough to validate
against the 2.1.0 schema and round-trip through code-scanning uploads —
because stdlib-only JSON is a hard constraint here.
"""

from __future__ import annotations

import json
from pathlib import PurePosixPath
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import registered_rules

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "simlint"
_TOOL_VERSION = "4.0.0"
_TOOL_URI = "https://example.invalid/simlint"  # repo-local tool; no homepage

# Per-rule documentation anchors: docs/static-analysis.md carries one
# ``#simNNN`` section per rule, so code-scanning UIs can deep-link the
# rationale next to the finding.
_HELP_URI_TEMPLATE = _TOOL_URI + "/docs/static-analysis.md#{anchor}"


def _relative_uri(path: str) -> str:
    """A forward-slash, non-absolute URI for ``physicalLocation``."""
    posix = PurePosixPath(path.replace("\\", "/"))
    text = str(posix)
    return text.lstrip("/")


def _rule_descriptors(codes: Iterable[str]) -> list[dict[str, object]]:
    rules = registered_rules()
    descriptors: list[dict[str, object]] = []
    for code in sorted(set(codes)):
        rule = rules.get(code)
        summary = getattr(rule, "summary", "") if rule is not None else ""
        descriptors.append(
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": summary or code},
                "defaultConfiguration": {"level": "error"},
                "helpUri": _HELP_URI_TEMPLATE.format(anchor=code.lower()),
            }
        )
    return descriptors


def to_sarif(findings: Sequence[Diagnostic]) -> dict[str, object]:
    """Build the SARIF log object for ``findings``."""
    rule_ids = sorted({diag.code for diag in findings})
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    results: list[dict[str, object]] = []
    for diag in findings:
        results.append(
            {
                "ruleId": diag.code,
                "ruleIndex": rule_index[diag.code],
                "level": "error",
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(diag.path),
                                "uriBaseId": "ROOT",
                            },
                            "region": {
                                "startLine": diag.line,
                                # SARIF columns are 1-based; ast's are 0-based.
                                "startColumn": diag.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "version": _TOOL_VERSION,
                        "informationUri": _TOOL_URI,
                        "rules": _rule_descriptors(rule_ids),
                    }
                },
                "originalUriBaseIds": {"ROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Diagnostic]) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False) + "\n"
