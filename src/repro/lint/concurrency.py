"""The SIM018-SIM021 concurrency rule family (the parallel boundary).

The serial ≡ sharded ≡ parallel bitwise guarantee rests on three
contracts the runtime cannot express in types: worker tasks own no
shared mutable state, attached shm/mmap segments are read-only on the
consumer side, and nothing fork-hostile crosses a task boundary except
the tiny picklable specs.  These rules model that boundary on the
phase-1 call graph:

========  ===========================================================
SIM018    mutable module/closure state mutated inside a parallel task
          and touched outside it — worker-side mutations are silently
          lost (fork) or racy (threads); per-process *memos* whose
          every access is keyed (``d[k]``/``.get``/``.pop``/
          ``.setdefault``) are the sanctioned exception
SIM019    write to an attached shm/mmap array reachable from a
          consumer entry point; taint starts at the configured
          ``attach_functions`` and flows through assignments,
          attribute/subscript projection, returns and call arguments
SIM020    scratch-buffer reuse without epoch/reset discipline: a
          pre-loop buffer painted with a constant stamp and equality-
          read in the same loop, with neither an in-loop un-paint nor
          a loop-varying (epoch) stamp
SIM021    fork-unsafe state crossing the boundary — open shm owner
          handles, live ``MetricsRegistry`` instances, mmap views —
          instead of the picklable ``.spec`` re-attached worker-side
========  ===========================================================

The boundary itself is located syntactically: calls to the configured
``parallel_maps`` entry points plus ``<pool>.submit(fn, ...)``.  Task
roots resolve through names, ``functools.partial`` wrappers and inline
lambdas/defs; from each root the task-side world is the call-graph
closure (``reachable_from``), with ``obs_modules`` excluded exactly as
in the cache-purity rule — observation is allowed on both sides.

SIM019/SIM021 deliberately treat ``.spec`` attribute access as a taint
*sink*: specs are the blessed picklable currency of the transport
layer, and "ship the spec, re-attach in the worker" is the fix both
messages prescribe.  What the static rules claim, the runtime verifies:
``REPRO_SANITIZE=shm`` (see :mod:`repro.runtime.sanitize`) freezes
every attached array and poisons released scratch, so a pattern these
rules missed still faults loudly in the sanitizer CI job.
"""

from __future__ import annotations

import ast
from typing import Iterator
from weakref import WeakKeyDictionary

from repro.lint.dataflow import assigned_names, free_names, own_nodes, walk_shallow
from repro.lint.diagnostics import Diagnostic
from repro.lint.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
    tree_nodes,
)
from repro.lint.rules import ProjectContext, register_rule
from repro.lint.semantic import _MUTATING_METHODS, _diag, _mutated_globals

__all__ = [
    "AttachedWriteRule",
    "ForkUnsafeCaptureRule",
    "ScratchDisciplineRule",
    "SharedMutableStateRule",
]

#: dict methods that keep an access "keyed" for the memo exemption.
_KEYED_METHODS = frozenset({"get", "pop", "setdefault"})

#: ndarray methods that mutate the receiver in place.
_ARRAY_MUTATORS = frozenset(
    {"fill", "sort", "put", "partition", "resize", "itemset", "setfield",
     "setflags", "byteswap"}
)

#: Owner-handle constructors that are fork-hostile beyond the generic
#: ``shm_factories`` list (per-shard segment owners).
_EXTRA_FORK_UNSAFE = frozenset(
    {"repro.runtime.shards.ShardedTopology", "repro.runtime.shards.ShardedPostings"}
)

#: Buffer allocators whose results count as reusable scratch.
_SCRATCH_ALLOCATORS = frozenset(
    {"numpy.zeros", "numpy.empty", "numpy.full", "numpy.zeros_like",
     "numpy.empty_like", "numpy.full_like"}
)


def _truthy_const(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (bool, int))
        and bool(node.value)
    )


def _falsy_const(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (bool, int))
        and not node.value
    )


def _chain_root(expr: ast.expr) -> tuple[str | None, bool]:
    """Root name of an attribute/subscript chain and whether ``.spec``
    appears along it (which clears attach taint)."""
    saw_spec = False
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            saw_spec = saw_spec or node.attr == "spec"
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, saw_spec
        else:
            return None, saw_spec


def _keyed_only(module: ModuleInfo, name: str) -> bool:
    """True when every access to module-global ``name`` is keyed.

    Keyed means: subscript base (``d[k]`` load or store) or receiver of
    ``.get``/``.pop``/``.setdefault`` — the per-process memo shape the
    attach caches use, where racing processes recompute identical
    entries.  Iteration, ``len``, whole-value reads, rebinds and
    read-modify-write (``d[k] += 1``) all refuse the exemption.  The
    top-level statement that initially binds the name is excluded.
    """
    top_binds: set[int] = set()
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                top_binds.add(id(target))
    keyed_ids: set[int] = set()
    rmw_ids: set[int] = set()
    occurrences: list[ast.Name] = []
    for node in tree_nodes(module.tree):
        if isinstance(node, ast.Name) and node.id == name:
            occurrences.append(node)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            keyed_ids.add(id(node.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _KEYED_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            keyed_ids.add(id(node.func.value))
        elif (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Subscript)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == name
        ):
            rmw_ids.add(id(node.target.value))
    return all(
        id(occ) in top_binds or (id(occ) in keyed_ids and id(occ) not in rmw_ids)
        for occ in occurrences
    )


def _mutates_global(
    func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> ast.AST | None:
    """First site where ``func`` mutates module-global ``name``."""
    declared_global = any(
        isinstance(node, ast.Global) and name in node.names
        for node in own_nodes(func)
    )
    for node in own_nodes(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    return node
                if (
                    declared_global
                    and isinstance(target, ast.Name)
                    and target.id == name
                ):
                    return node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return node
    return None


def _captured_mutations(
    task: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> set[str]:
    """Free names of ``task`` that the task body mutates in place."""
    captured = free_names(task)
    declared: set[str] = set()
    mutated: set[str] = set()
    for node in ast.walk(task):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    root, _ = _chain_root(target)
                    if root is not None:
                        mutated.add(root)
                elif isinstance(target, ast.Name) and target.id in declared:
                    mutated.add(target.id)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in (_MUTATING_METHODS | _ARRAY_MUTATORS)
            and isinstance(node.func.value, ast.Name)
        ):
            mutated.add(node.func.value.id)
    return captured & mutated


class _FunctionFacts:
    """One walk's worth of reusable structure for a function body."""

    __slots__ = ("assign_pairs", "calls", "names", "returns")

    def __init__(self, func: FunctionInfo) -> None:
        #: ``(target, value)`` pairs that bind names: plain/annotated
        #: assignments, with-items and for-targets (iter -> element).
        self.assign_pairs: list[tuple[ast.expr, ast.expr]] = []
        self.calls: list[ast.Call] = []
        self.returns: list[ast.expr] = []
        #: Every Name occurring in the body (load or store), for cheap
        #: "does this function touch X at all" queries.
        names: set[str] = set()
        for node in own_nodes(func.node):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self.assign_pairs.append((target, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self.assign_pairs.append((node.target, node.value))
            elif isinstance(node, ast.NamedExpr):
                self.assign_pairs.append((node.target, node.value))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self.assign_pairs.append(
                            (item.optional_vars, item.context_expr)
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self.assign_pairs.append((node.target, node.iter))
            elif isinstance(node, ast.Call):
                self.calls.append(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
        self.names = frozenset(names)


class _BoundarySite:
    """One syntactic parallel fan-out: a ``pmap``-family call or a
    pool ``.submit``."""

    __slots__ = ("call", "func", "kind", "module", "task_args")

    def __init__(
        self, func: FunctionInfo, module: ModuleInfo, call: ast.Call, kind: str
    ) -> None:
        self.func = func
        self.module = module
        self.call = call
        self.kind = kind  # "pmap" | "submit"
        #: Every expression shipped across the boundary.
        self.task_args: list[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords if kw.arg is not None
        ]


class _Scan:
    """Shared per-run precomputation for the concurrency rules."""

    def __init__(self, ctx: ProjectContext) -> None:
        self.facts: dict[str, _FunctionFacts] = {}
        self.sites: list[_BoundarySite] = []
        self.by_module: dict[str, list[FunctionInfo]] = {}
        maps = frozenset(ctx.config.parallel_maps)
        for func in ctx.index.functions.values():
            module = ctx.index.modules[func.module]
            facts = _FunctionFacts(func)
            self.facts[func.qualname] = facts
            self.by_module.setdefault(func.module, []).append(func)
            for call in facts.calls:
                chain = ctx.index.qualified_chain(call.func, module)
                if chain in maps:
                    self.sites.append(_BoundarySite(func, module, call, "pmap"))
                elif (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "submit"
                ):
                    self.sites.append(_BoundarySite(func, module, call, "submit"))


_SCANS: "WeakKeyDictionary[ProjectIndex, _Scan]" = WeakKeyDictionary()


def _scan(ctx: ProjectContext) -> _Scan:
    cached = _SCANS.get(ctx.index)
    if cached is None:
        cached = _Scan(ctx)
        _SCANS[ctx.index] = cached
    return cached


def _resolve_tasks(
    ctx: ProjectContext,
    site: _BoundarySite,
    expr: ast.expr,
    depth: int = 0,
) -> tuple[set[str], list[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]]:
    """Resolve a task-callable expression to indexed qualnames and/or
    inline lambda / local-def nodes."""
    if depth > 4:
        return set(), []
    if isinstance(expr, ast.Lambda):
        return set(), [expr]
    if isinstance(expr, ast.Call):
        chain = ctx.index.qualified_chain(expr.func, site.module) or ""
        if chain.rpartition(".")[2] == "partial" and expr.args:
            return _resolve_tasks(ctx, site, expr.args[0], depth + 1)
        return set(), []
    if isinstance(expr, ast.Name):
        for node in own_nodes(site.func.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == expr.id
            ):
                return set(), [node]
        for target, value in _scan(ctx).facts[site.func.qualname].assign_pairs:
            if (
                isinstance(target, ast.Name)
                and target.id == expr.id
                and value is not expr
            ):
                quals, inline = _resolve_tasks(ctx, site, value, depth + 1)
                if quals or inline:
                    return quals, inline
    chain = dotted_name(expr)
    if chain is not None:
        resolved = ctx.index.resolve_name(chain, site.module, site.func)
        if resolved is not None:
            qualname, kind = resolved
            if kind == "class":
                init = f"{qualname}.__init__"
                return ({init} if init in ctx.index.functions else set()), []
            return {qualname}, []
    return set(), []


def _task_world(ctx: ProjectContext, roots: set[str]) -> set[str]:
    """Call-graph closure of the task roots, observation excluded."""
    obs = tuple(ctx.config.obs_modules)
    world: set[str] = set()
    for root in roots:
        if root in ctx.index.functions:
            world.add(root)
            world |= ctx.index.reachable_from(root)
    return {
        qual
        for qual in world
        if qual in ctx.index.functions
        and not any(
            ctx.index.functions[qual].module == mod
            or ctx.index.functions[qual].module.startswith(mod + ".")
            for mod in obs
        )
    }


# -- SIM018 -----------------------------------------------------------


@register_rule
class SharedMutableStateRule:
    """Mutable state shared across the parallel task boundary."""

    code = "SIM018"
    summary = "mutable module/closure state mutated inside a parallel task"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        scan = _scan(ctx)
        mutated_cache: dict[str, frozenset[str]] = {}
        keyed_cache: dict[tuple[str, str], bool] = {}
        for site in scan.sites:
            task_expr = site.call.args[0] if site.call.args else None
            if task_expr is None:
                continue
            roots, inline = _resolve_tasks(ctx, site, task_expr)
            for task_node in inline:
                for name in sorted(_captured_mutations(task_node)):
                    yield _diag(
                        site.func.path,
                        task_node,
                        self.code,
                        f"parallel task mutates captured {name!r}; worker-side "
                        "mutations never reach the coordinator — return the "
                        "value from the task instead",
                    )
            world = _task_world(ctx, roots)
            seen: set[str] = set()
            for qual in sorted(world):
                func = ctx.index.functions[qual]
                module = ctx.index.modules[func.module]
                mutated = mutated_cache.get(func.module)
                if mutated is None:
                    mutated = _mutated_globals(module)
                    mutated_cache[func.module] = mutated
                for name in sorted(mutated):
                    if (
                        name in seen
                        or name not in scan.facts[qual].names
                        or _mutates_global(func.node, name) is None
                    ):
                        continue
                    keyed = keyed_cache.get((func.module, name))
                    if keyed is None:
                        keyed = _keyed_only(module, name)
                        keyed_cache[(func.module, name)] = keyed
                    if keyed:
                        continue
                    outside = any(
                        other.qualname not in world
                        and name in scan.facts[other.qualname].names
                        for other in scan.by_module.get(func.module, ())
                    )
                    if not outside:
                        continue
                    seen.add(name)
                    yield _diag(
                        site.func.path,
                        site.call,
                        self.code,
                        f"parallel task {qual}() mutates module state "
                        f"{name!r} that is also used outside the task — "
                        "worker-side mutations are lost across the fork; "
                        "return results, or make every access keyed "
                        "(d[k]/.get/.pop/.setdefault) if it is a per-process "
                        "memo",
                    )


# -- SIM019 -----------------------------------------------------------


class _AttachTaint:
    """Interprocedural attach-view taint, computed to a fixed point."""

    def __init__(self, ctx: ProjectContext, scan: _Scan) -> None:
        self.ctx = ctx
        self.scan = scan
        self.attach = frozenset(ctx.config.attach_functions)
        #: Functions whose return value carries an attached view.
        self.returners: set[str] = set()
        #: Parameter names tainted by call sites, per callee qualname.
        self.params: dict[str, set[str]] = {}
        self.locals: dict[str, set[str]] = {}
        self._solve()

    def _attached_call(
        self, call: ast.Call, module: ModuleInfo, func: FunctionInfo
    ) -> bool:
        chain = self.ctx.index.qualified_chain(call.func, module)
        if chain in self.attach:
            return True
        resolved = self.ctx.index.resolve_call(call, module, func)
        if resolved is not None and resolved[0] in (self.attach | self.returners):
            return True
        return False

    def _value_attached(
        self,
        expr: ast.expr,
        tainted: set[str],
        module: ModuleInfo,
        func: FunctionInfo,
    ) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Attribute):
            if expr.attr == "spec":
                return False
            return self._value_attached(expr.value, tainted, module, func)
        if isinstance(expr, (ast.Subscript, ast.Starred)):
            return self._value_attached(expr.value, tainted, module, func)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(
                self._value_attached(e, tainted, module, func) for e in expr.elts
            )
        if isinstance(expr, ast.IfExp):
            return self._value_attached(
                expr.body, tainted, module, func
            ) or self._value_attached(expr.orelse, tainted, module, func)
        if isinstance(expr, ast.NamedExpr):
            return self._value_attached(expr.value, tainted, module, func)
        if isinstance(expr, ast.Call):
            if self._attached_call(expr, module, func):
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "enter_context"
                and expr.args
            ):
                return self._value_attached(expr.args[0], tainted, module, func)
            return False
        return False

    def _function_taint(self, func: FunctionInfo) -> set[str]:
        """Local names of ``func`` holding attached views (fixed point)."""
        module = self.ctx.index.modules[func.module]
        facts = self.scan.facts[func.qualname]
        tainted = set(self.params.get(func.qualname, ()))
        changed = True
        while changed:
            changed = False
            for target, value in facts.assign_pairs:
                if self._value_attached(value, tainted, module, func):
                    fresh = assigned_names(target) - tainted
                    if fresh:
                        tainted |= fresh
                        changed = True
        return tainted

    def _callee_params(
        self, call: ast.Call, module: ModuleInfo, func: FunctionInfo
    ) -> tuple[str, list[str], int] | None:
        """``(qualname, positional param names, self offset)`` of an
        indexed call target."""
        resolved = self.ctx.index.resolve_call(call, module, func)
        if resolved is None:
            return None
        qualname, kind = resolved
        if kind == "class":
            qualname = f"{qualname}.__init__"
        info = self.ctx.index.functions.get(qualname)
        if info is None:
            return None
        args = info.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        offset = 1 if (kind == "class" or info.class_name is not None) else 0
        return qualname, names, offset

    def _solve(self) -> None:
        index = self.ctx.index
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for func in index.functions.values():
                module = index.modules[func.module]
                facts = self.scan.facts[func.qualname]
                tainted = self._function_taint(func)
                self.locals[func.qualname] = tainted
                if func.qualname not in self.returners and any(
                    self._value_attached(value, tainted, module, func)
                    for value in facts.returns
                ):
                    self.returners.add(func.qualname)
                    changed = True
                for call in facts.calls:
                    hot_args = [
                        (i, arg)
                        for i, arg in enumerate(call.args)
                        if self._value_attached(arg, tainted, module, func)
                    ]
                    hot_kwargs = [
                        kw.arg
                        for kw in call.keywords
                        if kw.arg is not None
                        and self._value_attached(kw.value, tainted, module, func)
                    ]
                    if not hot_args and not hot_kwargs:
                        continue
                    target = self._callee_params(call, module, func)
                    if target is None:
                        continue
                    qualname, names, offset = target
                    params = self.params.setdefault(qualname, set())
                    for i, _arg in hot_args:
                        slot = offset + i
                        if slot < len(names) and names[slot] not in params:
                            params.add(names[slot])
                            changed = True
                    for kwname in hot_kwargs:
                        if kwname in names and kwname not in params:
                            params.add(kwname)
                            changed = True


@register_rule
class AttachedWriteRule:
    """Writes to attached shm/mmap views on the consumer side."""

    code = "SIM019"
    summary = "write to an attached shm/mmap array (consumers are read-only)"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        scan = _scan(ctx)
        taint = _AttachTaint(ctx, scan)
        for func in ctx.index.functions.values():
            tainted = taint.locals.get(func.qualname, set())
            if not tainted:
                continue
            module = ctx.index.modules[func.module]
            yield from self._check_writes(ctx, func, module, tainted)

    def _check_writes(
        self,
        ctx: ProjectContext,
        func: FunctionInfo,
        module: ModuleInfo,
        tainted: set[str],
    ) -> Iterator[Diagnostic]:
        def is_tainted_store(target: ast.expr) -> str | None:
            """The offending chain text when a store hits a view."""
            if isinstance(target, ast.Subscript):
                root, spec = _chain_root(target)
                if root in tainted and not spec:
                    return ast.unparse(target)
            elif isinstance(target, ast.Attribute):
                root, spec = _chain_root(target.value)
                if root in tainted and not spec:
                    return ast.unparse(target)
            return None

        for node in own_nodes(func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    offender = is_tainted_store(target)
                    if offender is None and (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and target.id in tainted
                    ):
                        offender = target.id
                    if offender is not None:
                        yield _diag(
                            func.path,
                            node,
                            self.code,
                            f"write to attached shm/mmap view {offender!r} — "
                            "consumers are read-only; copy first "
                            "(np.array(...)) or do this on the owner before "
                            "publishing",
                        )
            elif isinstance(node, ast.Call):
                chain = ctx.index.qualified_chain(node.func, module)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ARRAY_MUTATORS | _MUTATING_METHODS
                ):
                    root, spec = _chain_root(node.func.value)
                    if root in tainted and not spec:
                        yield _diag(
                            func.path,
                            node,
                            self.code,
                            f"in-place .{node.func.attr}() on attached "
                            f"shm/mmap view {root!r} — consumers are "
                            "read-only; copy first (np.array(...))",
                        )
                elif chain == "numpy.copyto" and node.args:
                    root, spec = _chain_root(node.args[0])
                    if root in tainted and not spec:
                        yield _diag(
                            func.path,
                            node,
                            self.code,
                            f"np.copyto into attached shm/mmap view {root!r} "
                            "— consumers are read-only",
                        )
                for kw in node.keywords:
                    if kw.arg == "out":
                        root, spec = _chain_root(kw.value)
                        if root in tainted and not spec:
                            yield _diag(
                                func.path,
                                node,
                                self.code,
                                f"out= targets attached shm/mmap view "
                                f"{root!r} — consumers are read-only",
                            )


# -- SIM020 -----------------------------------------------------------


@register_rule
class ScratchDisciplineRule:
    """Constant-stamp paint buffers reused across loop iterations."""

    code = "SIM020"
    summary = "scratch reuse without epoch/reset discipline"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        scan = _scan(ctx)
        for func in ctx.index.functions.values():
            # Cheap prefilter off the shared scan: most functions bind
            # no scratch buffer, so skip them without re-walking.
            facts = scan.facts[func.qualname]
            module = None
            allocs: dict[str, ast.AST] = {}
            for target, value in facts.assign_pairs:
                if not (
                    isinstance(target, ast.Name) and isinstance(value, ast.Call)
                ):
                    continue
                if module is None:
                    module = ctx.index.modules[func.module]
                chain = ctx.index.qualified_chain(value.func, module) or ""
                if (
                    chain in _SCRATCH_ALLOCATORS
                    or chain.rpartition(".")[2] == "scratch_alloc"
                ):
                    allocs[target.id] = value
            if allocs:
                yield from self._check_function(func, allocs)

    def _check_function(
        self, func: FunctionInfo, allocs: dict[str, ast.AST]
    ) -> Iterator[Diagnostic]:
        for loop in own_nodes(func.node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            inside = {id(n) for n in walk_shallow(loop)}
            candidates = {
                name: site
                for name, site in allocs.items()
                if id(site) not in inside
                and getattr(site, "lineno", 0) < loop.lineno
            }
            if not candidates:
                continue
            yield from self._check_loop(func.path, loop, candidates)

    def _check_loop(
        self, path: str, loop: ast.For | ast.While, buffers: dict[str, ast.AST]
    ) -> Iterator[Diagnostic]:
        varying: set[str] = set()
        if isinstance(loop, ast.For):
            varying |= assigned_names(loop.target)
        body_nodes = [n for n in walk_shallow(loop) if n is not loop]
        for node in body_nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    varying |= assigned_names(target)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                varying.add(node.target.id)
        for name in buffers:
            const_paint: ast.AST | None = None
            varying_stamp = False
            reset = False
            eq_read = False
            for node in body_nodes:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == name
                        ):
                            continue
                        if isinstance(target.slice, ast.Slice):
                            if _falsy_const(node.value):
                                reset = True
                        elif _falsy_const(node.value):
                            reset = True  # in-loop un-paint
                        elif _truthy_const(node.value):
                            const_paint = const_paint or node
                        elif (
                            isinstance(node.value, ast.Name)
                            and node.value.id in varying
                        ):
                            varying_stamp = True
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fill"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                    and node.args
                    and _falsy_const(node.args[0])
                ):
                    reset = True
                elif isinstance(node, ast.Compare) and any(
                    isinstance(op, ast.Eq) for op in node.ops
                ):
                    for side in (node.left, *node.comparators):
                        if (
                            isinstance(side, ast.Subscript)
                            and isinstance(side.value, ast.Name)
                            and side.value.id == name
                        ):
                            eq_read = True
            if const_paint is not None and eq_read and not (reset or varying_stamp):
                yield Diagnostic(
                    path=path,
                    line=getattr(const_paint, "lineno", 1),
                    col=getattr(const_paint, "col_offset", 0),
                    code=self.code,
                    message=(
                        f"scratch buffer {name!r} is painted with a constant "
                        "stamp and equality-read across loop iterations "
                        "without an in-loop reset — stale marks from earlier "
                        "iterations survive; un-paint it each iteration or "
                        "stamp with a per-iteration epoch"
                    ),
                )


# -- SIM021 -----------------------------------------------------------


@register_rule
class ForkUnsafeCaptureRule:
    """Fork-unsafe state shipped across a parallel task boundary."""

    code = "SIM021"
    summary = "fork-unsafe state crosses the parallel boundary"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        scan = _scan(ctx)
        factories = frozenset(ctx.config.shm_factories) | _EXTRA_FORK_UNSAFE
        attach = frozenset(ctx.config.attach_functions)
        for site in scan.sites:
            unsafe = self._unsafe_names(ctx, site, factories, attach)
            reported: set[int] = set()
            for expr in site.task_args:
                desc = self._value_unsafe(ctx, site, expr, unsafe, factories, attach)
                if desc is not None and id(expr) not in reported:
                    reported.add(id(expr))
                    yield _diag(
                        site.func.path,
                        expr,
                        self.code,
                        f"{desc} crosses the parallel boundary here — workers "
                        "cannot inherit it safely; ship the picklable .spec "
                        "and re-attach in the worker",
                    )
                if isinstance(expr, ast.Lambda):
                    for name in sorted(free_names(expr) & unsafe.keys()):
                        yield _diag(
                            site.func.path,
                            expr,
                            self.code,
                            f"task lambda captures {name!r} ({unsafe[name]}) "
                            "— ship the picklable .spec and re-attach in the "
                            "worker",
                        )
                elif isinstance(expr, ast.Name):
                    for node in own_nodes(site.func.node):
                        if (
                            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                            and node.name == expr.id
                        ):
                            for name in sorted(free_names(node) & unsafe.keys()):
                                yield _diag(
                                    site.func.path,
                                    node,
                                    self.code,
                                    f"task {node.name}() captures {name!r} "
                                    f"({unsafe[name]}) — ship the picklable "
                                    ".spec and re-attach in the worker",
                                )

    def _source_desc(
        self,
        ctx: ProjectContext,
        site: _BoundarySite,
        call: ast.Call,
        factories: frozenset[str],
        attach: frozenset[str],
    ) -> str | None:
        chain = ctx.index.qualified_chain(call.func, site.module) or ""
        resolved = ctx.index.resolve_call(call, site.module, site.func)
        qualname = resolved[0] if resolved is not None else ""
        if chain in factories or qualname in factories:
            return "an open shared-memory owner handle"
        if chain in attach or qualname in attach:
            return "an attached shm view"
        if chain == "repro.obs.metrics" or chain.endswith("MetricsRegistry"):
            return "a live MetricsRegistry"
        if chain == "numpy.load" and any(
            kw.arg == "mmap_mode"
            and not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
            for kw in call.keywords
        ):
            return "an mmap-backed array view"
        return None

    def _value_unsafe(
        self,
        ctx: ProjectContext,
        site: _BoundarySite,
        expr: ast.expr,
        unsafe: dict[str, str],
        factories: frozenset[str],
        attach: frozenset[str],
        depth: int = 0,
    ) -> str | None:
        if depth > 6:
            return None
        if isinstance(expr, ast.Name):
            return unsafe.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "spec":
                return None
            return self._value_unsafe(
                ctx, site, expr.value, unsafe, factories, attach, depth + 1
            )
        if isinstance(expr, (ast.Subscript, ast.Starred)):
            return self._value_unsafe(
                ctx, site, expr.value, unsafe, factories, attach, depth + 1
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                desc = self._value_unsafe(
                    ctx, site, element, unsafe, factories, attach, depth + 1
                )
                if desc is not None:
                    return desc
            return None
        if isinstance(expr, ast.Call):
            desc = self._source_desc(ctx, site, expr, factories, attach)
            if desc is not None:
                return desc
            chain = ctx.index.qualified_chain(expr.func, site.module) or ""
            is_wrapper = chain.rpartition(".")[2] == "partial" or (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "enter_context"
            )
            if is_wrapper:
                for sub in (*expr.args, *(kw.value for kw in expr.keywords)):
                    desc = self._value_unsafe(
                        ctx, site, sub, unsafe, factories, attach, depth + 1
                    )
                    if desc is not None:
                        return desc
            return None
        return None

    def _unsafe_names(
        self,
        ctx: ProjectContext,
        site: _BoundarySite,
        factories: frozenset[str],
        attach: frozenset[str],
    ) -> dict[str, str]:
        """Locals of the boundary's enclosing function that hold
        fork-unsafe state (fixed point over its assignments)."""
        facts = _scan(ctx).facts[site.func.qualname]
        unsafe: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for target, value in facts.assign_pairs:
                desc = self._value_unsafe(
                    ctx, site, value, unsafe, factories, attach
                )
                if desc is None:
                    continue
                for name in assigned_names(target):
                    if name not in unsafe:
                        unsafe[name] = desc
                        changed = True
        return unsafe
