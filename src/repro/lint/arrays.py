"""simlint v3: array-aware scale-readiness analysis (SIM015-SIM017).

The million-node roadmap item lives or dies on array width: a 64-bit
CSR index where 32 bits provably suffice doubles the memory ceiling of
every flood, and a hidden copy or per-element Python loop inside a hot
kernel erases the batched engine's throughput.  This module teaches
simlint enough numpy to police that — a small abstract domain
(:class:`ArrayValue`: element dtype plus an inclusive integer value
range) propagated flow-insensitively through assignments, in-place
stores, and indexed function returns along the phase-1 call graph.

The analysis is deliberately conservative in the same sense as
:mod:`repro.lint.dataflow`: ``None`` means "unknown", every join
degrades toward unknown, and a rule only fires on facts the inference
actually proved.  Escape hatches, in order of preference: narrow the
dtype, annotate the parameter (``NDArray[np.int32]``), or suppress
with ``# simlint: ignore[SIM01x] <reason>`` (a reason is mandatory).

Hot set
-------
SIM015-SIM017 only police *hot* functions: everything reachable in the
call graph from the flood/match/batch kernel roots
(``[tool.simlint].hot.roots``, defaulting to ``flood_depths``,
``match_batch`` and ``_evaluate_keys``) plus an explicit
``[tool.simlint].hot`` extra list for entry points the resolver cannot
see (e.g. methods invoked through duck-typed parameters).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.dataflow import (
    free_names,
    mutation_sites,
    own_nodes,
    walk_shallow,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    dotted_name,
    resolve_alias,
)
from repro.lint.rules import ProjectContext, register_rule

__all__ = [
    "ITEMSIZE",
    "ArrayInference",
    "ArrayValue",
    "fits_dtype",
    "hot_functions",
    "narrowest_int_dtype",
]

#: Canonical numpy element sizes in bytes (the subset the repo uses).
ITEMSIZE: dict[str, int] = {
    "bool": 1,
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "uint16": 2,
    "float16": 2,
    "int32": 4,
    "uint32": 4,
    "float32": 4,
    "int64": 8,
    "uint64": 8,
    "float64": 8,
    "intp": 8,
    "complex64": 8,
    "complex128": 16,
}

_INT_RANGES: dict[str, tuple[int, int]] = {
    "int8": (-(2**7), 2**7 - 1),
    "int16": (-(2**15), 2**15 - 1),
    "int32": (-(2**31), 2**31 - 1),
    "int64": (-(2**63), 2**63 - 1),
    "uint8": (0, 2**8 - 1),
    "uint16": (0, 2**16 - 1),
    "uint32": (0, 2**32 - 1),
    "uint64": (0, 2**64 - 1),
}

#: Aliases normalized to canonical dtype names (builtin names included:
#: ``dtype=bool`` / ``dtype=int`` / ``dtype=float`` are numpy idiom).
_DTYPE_ALIASES = {
    "intp": "int64",
    "int": "int64",
    "float": "float64",
    "bool_": "bool",
}
_BUILTIN_DTYPES = {"bool": "bool", "int": "int64", "float": "float64"}


def fits_dtype(vmin: int, vmax: int, dtype: str) -> bool:
    """Whether the inclusive range fits the integer dtype exactly."""
    bounds = _INT_RANGES.get(dtype)
    return bounds is not None and bounds[0] <= vmin and vmax <= bounds[1]


def narrowest_int_dtype(vmin: int, vmax: int) -> str | None:
    """Narrowest dtype (16 then 32 bits, signed preferred) holding the range."""
    for name in ("int16", "uint16", "int32", "uint32", "int64"):
        if fits_dtype(vmin, vmax, name):
            return name
    return None


@dataclass(frozen=True)
class ArrayValue:
    """Abstract value: element dtype + inclusive integer value range.

    ``None`` fields mean "unknown"; ``array`` distinguishes ndarray
    values from scalar constants (whose bounds feed fills and BinOps).
    """

    dtype: str | None = None
    vmin: int | None = None
    vmax: int | None = None
    array: bool = False

    @property
    def has_bounds(self) -> bool:
        return self.vmin is not None and self.vmax is not None


#: The no-information element (every join with it stays unknown-ish).
TOP = ArrayValue()


def _scalar(value: int) -> ArrayValue:
    return ArrayValue(dtype=None, vmin=value, vmax=value, array=False)


def join(a: ArrayValue, b: ArrayValue) -> ArrayValue:
    """Least upper bound: agreement survives, disagreement degrades."""
    dtype = a.dtype if a.dtype == b.dtype else None
    if a.has_bounds and b.has_bounds:
        vmin: int | None = min(a.vmin, b.vmin)  # type: ignore[type-var]
        vmax: int | None = max(a.vmax, b.vmax)  # type: ignore[type-var]
    else:
        vmin = vmax = None
    return ArrayValue(dtype=dtype, vmin=vmin, vmax=vmax, array=a.array or b.array)


def hot_functions(index: ProjectIndex, config: LintConfig) -> frozenset[str]:
    """Qualnames of the hot set: roots + everything reachable from them."""
    hot: set[str] = set()
    for root in tuple(config.hot_roots) + tuple(config.hot_extra):
        if root not in index.functions:
            continue
        hot.add(root)
        hot |= index.reachable_from(root)
    return frozenset(name for name in hot if name in index.functions)


#: numpy callables whose result copies dtype and bounds from arg 0.
_BASE_PRESERVING = frozenset(
    {
        "asarray",
        "array",
        "ascontiguousarray",
        "atleast_1d",
        "unique",
        "sort",
        "ravel",
        "repeat",
        "tile",
        "copy",
    }
)

#: numpy callables returning platform-int index arrays.
_INDEX_PRODUCING = frozenset(
    {"flatnonzero", "argsort", "searchsorted", "bincount", "argmax", "argmin"}
)

#: ndarray methods whose result keeps the receiver's dtype and bounds.
_METHOD_PRESERVING = frozenset(
    {"copy", "ravel", "flatten", "reshape", "squeeze", "take"}
)

#: Allocation callables SIM015 treats as array creation sites, mapped
#: to their default dtype (``None`` = inferred from arguments).
_ALLOC_DEFAULT_DTYPE: dict[str, str | None] = {
    "zeros": "float64",
    "empty": "float64",
    "ones": "float64",
    "full": None,
    "arange": None,
    "zeros_like": None,
    "empty_like": None,
    "ones_like": None,
    "full_like": None,
}


class ArrayInference:
    """Interprocedural dtype / value-range inference over one index.

    Per-function environments are computed on demand and cached;
    return summaries follow resolved call edges with a recursion guard
    (cycles degrade to unknown, never loop).
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._env_cache: dict[str, dict[str, ArrayValue]] = {}
        self._return_cache: dict[str, tuple[ArrayValue, ...]] = {}
        self._env_active: set[str] = set()
        self._return_active: set[str] = set()
        self._const_active: set[tuple[str, str]] = set()

    # -- public queries ------------------------------------------------

    def env(self, qualname: str) -> dict[str, ArrayValue]:
        """The inferred local environment of one indexed function."""
        cached = self._env_cache.get(qualname)
        if cached is not None:
            return cached
        func = self.index.functions.get(qualname)
        if func is None or qualname in self._env_active:
            return {}
        module = self.index.modules[func.module]
        self._env_active.add(qualname)
        try:
            result = self._compute_env(func, module)
        finally:
            self._env_active.discard(qualname)
        self._env_cache[qualname] = result
        return result

    def returns(self, qualname: str) -> tuple[ArrayValue, ...]:
        """Element-wise join of every ``return`` of one function.

        A single-value return summarizes to a 1-tuple; ``return a, b``
        to a 2-tuple; mismatched arities or unresolvable functions to
        the empty tuple (unknown).
        """
        cached = self._return_cache.get(qualname)
        if cached is not None:
            return cached
        func = self.index.functions.get(qualname)
        if func is None or qualname in self._return_active:
            return ()
        module = self.index.modules[func.module]
        self._return_active.add(qualname)
        try:
            env = self.env(qualname)
            summary: tuple[ArrayValue, ...] | None = None
            for node in own_nodes(func.node):
                if not isinstance(node, ast.Return) or node.value is None:
                    continue
                if isinstance(node.value, ast.Tuple):
                    vals = tuple(
                        self.infer(e, env, module, func) for e in node.value.elts
                    )
                else:
                    vals = (self.infer(node.value, env, module, func),)
                if summary is None:
                    summary = vals
                elif len(summary) != len(vals):
                    summary = ()
                    break
                else:
                    summary = tuple(join(a, b) for a, b in zip(summary, vals))
            result = summary if summary is not None else ()
        finally:
            self._return_active.discard(qualname)
        self._return_cache[qualname] = result
        return result

    def attribute_values(self, qualname: str) -> dict[str, ArrayValue]:
        """``self.<attr> = ...`` stores of one method, inferred.

        The memory-footprint estimator reads instance-attribute arrays
        (``self._posting_offsets``) straight out of ``__init__`` bodies.
        """
        func = self.index.functions.get(qualname)
        if func is None:
            return {}
        module = self.index.modules[func.module]
        env = self.env(qualname)
        out: dict[str, ArrayValue] = {}
        for node in own_nodes(func.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    value = self.infer(node.value, env, module, func)
                    prior = out.get(target.attr)
                    out[target.attr] = value if prior is None else join(prior, value)
        return out

    def resolve_dtype(self, node: ast.expr, module: ModuleInfo) -> str | None:
        """Canonical dtype name of a dtype-position expression, if provable.

        Handles ``"int32"`` strings, ``np.int32`` chains, ``np.dtype(X)``
        wrappers, and module-level dtype constants (``INDEX_DTYPE``),
        including constants imported from other indexed modules.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = _DTYPE_ALIASES.get(node.value, node.value)
            return name if name in ITEMSIZE else None
        if isinstance(node, ast.Call):
            chain = self.index.qualified_chain(node.func, module)
            if chain is not None and chain.rpartition(".")[2] == "dtype" and node.args:
                return self.resolve_dtype(node.args[0], module)
            return None
        chain = dotted_name(node)
        if chain is None:
            return None
        resolved = resolve_alias(chain, module.aliases)
        if resolved in _BUILTIN_DTYPES:
            return _BUILTIN_DTYPES[resolved]
        tail = resolved.rpartition(".")[2]
        if resolved.startswith("numpy."):
            tail = _DTYPE_ALIASES.get(tail, tail)
            return tail if tail in ITEMSIZE else None
        # A module-level constant, local or imported from an indexed module.
        found = self._find_constant_expr(chain, module)
        if found is not None:
            const_module, const_name, expr = found
            key = (const_module.name, const_name)
            if key in self._const_active:
                return None
            self._const_active.add(key)
            try:
                return self.resolve_dtype(expr, const_module)
            finally:
                self._const_active.discard(key)
        return None

    # -- expression inference ------------------------------------------

    def infer(
        self,
        node: ast.expr,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> ArrayValue:
        """Abstract value of one expression under ``env``."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                return TOP
            return _scalar(node.value)
        if isinstance(node, ast.Name):
            known = env.get(node.id)
            if known is not None:
                return known
            return self._constant_value(node.id, module)
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                return self.infer(node.value, env, module, func)
            chain = dotted_name(node)
            if chain is not None:
                return self._constant_value(chain, module)
            return TOP
        if isinstance(node, ast.Subscript):
            base = self.infer(node.value, env, module, func)
            return base if base.array else TOP
        if isinstance(node, ast.UnaryOp):
            operand = self.infer(node.operand, env, module, func)
            if isinstance(node.op, ast.UAdd):
                return operand
            if isinstance(node.op, ast.USub) and operand.has_bounds:
                return replace(
                    operand,
                    vmin=-operand.vmax,  # type: ignore[operator]
                    vmax=-operand.vmin,  # type: ignore[operator]
                )
            if isinstance(node.op, ast.USub):
                return replace(operand, vmin=None, vmax=None)
            return TOP
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env, module, func)
        if isinstance(node, ast.Compare):
            any_array = any(
                self.infer(side, env, module, func).array
                for side in [node.left, *node.comparators]
            )
            return ArrayValue(dtype="bool", vmin=0, vmax=1, array=any_array)
        if isinstance(node, ast.IfExp):
            return join(
                self.infer(node.body, env, module, func),
                self.infer(node.orelse, env, module, func),
            )
        if isinstance(node, (ast.List, ast.Tuple)):
            values = [self.infer(e, env, module, func) for e in node.elts]
            if values and all(v.has_bounds for v in values):
                return ArrayValue(
                    dtype=None,
                    vmin=min(v.vmin for v in values),  # type: ignore[type-var]
                    vmax=max(v.vmax for v in values),  # type: ignore[type-var]
                    array=False,
                )
            return TOP
        if isinstance(node, ast.Call):
            return self._infer_call(node, env, module, func)
        return TOP

    def _infer_binop(
        self,
        node: ast.BinOp,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> ArrayValue:
        left = self.infer(node.left, env, module, func)
        right = self.infer(node.right, env, module, func)
        is_array = left.array or right.array
        # NEP 50: array op python-int-scalar keeps the array's dtype;
        # array op array keeps it only when both sides agree.
        if left.array and right.array:
            dtype = left.dtype if left.dtype == right.dtype else None
        elif left.array:
            dtype = left.dtype if not right.array and right.dtype is None else None
        elif right.array:
            dtype = right.dtype if left.dtype is None else None
        else:
            dtype = None
        vmin = vmax = None
        if left.has_bounds and right.has_bounds:
            la, ha, lb, hb = left.vmin, left.vmax, right.vmin, right.vmax
            if isinstance(node.op, ast.Add):
                vmin, vmax = la + lb, ha + hb  # type: ignore[operator]
            elif isinstance(node.op, ast.Sub):
                vmin, vmax = la - hb, ha - lb  # type: ignore[operator]
            elif isinstance(node.op, ast.Mult):
                products = [la * lb, la * hb, ha * lb, ha * hb]  # type: ignore[operator]
                vmin, vmax = min(products), max(products)
        return ArrayValue(dtype=dtype, vmin=vmin, vmax=vmax, array=is_array)

    def _infer_call(
        self,
        node: ast.Call,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> ArrayValue:
        # Project-internal call: use the callee's return summary.
        resolved = self.index.resolve_call(node, module, func)
        if resolved is not None and resolved[1] == "function":
            summary = self.returns(resolved[0])
            return summary[0] if len(summary) == 1 else TOP

        # Method call on a local value (x.astype(...), rng.integers(...)).
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            chain = self.index.qualified_chain(node.func, module)
            is_numpy = chain is not None and chain.startswith("numpy.")
            if not is_numpy:
                if attr == "astype":
                    base = self.infer(node.func.value, env, module, func)
                    dtype = (
                        self.resolve_dtype(node.args[0], module)
                        if node.args
                        else None
                    )
                    return ArrayValue(
                        dtype=dtype, vmin=base.vmin, vmax=base.vmax, array=True
                    )
                if attr in _METHOD_PRESERVING:
                    base = self.infer(node.func.value, env, module, func)
                    return replace(base, array=True) if base.array else base
                if attr in ("max", "min"):
                    base = self.infer(node.func.value, env, module, func)
                    return replace(base, array=False)
                if attr == "integers":
                    return self._infer_integers(node, env, module, func)
                return TOP
            return self._infer_numpy(
                chain.rpartition(".")[2], node, env, module, func  # type: ignore[union-attr]
            )

        chain = self.index.qualified_chain(node.func, module)
        if chain is not None and chain.startswith("numpy."):
            return self._infer_numpy(
                chain.rpartition(".")[2], node, env, module, func
            )
        return TOP

    def _infer_integers(
        self,
        node: ast.Call,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> ArrayValue:
        """``rng.integers(lo, hi)``: dtype kwarg or int64; bounds if const."""
        dtype = self._dtype_kwarg(node, module) or "int64"
        endpoint = any(k.arg == "endpoint" for k in node.keywords)
        args = [self.infer(a, env, module, func) for a in node.args[:2]]
        vmin = vmax = None
        if len(args) >= 1 and args[0].has_bounds and not endpoint:
            if len(args) == 1:
                vmin, vmax = 0, args[0].vmax - 1  # type: ignore[operator]
            elif args[1].has_bounds:
                vmin, vmax = args[0].vmin, args[1].vmax - 1  # type: ignore[operator]
        return ArrayValue(dtype=dtype, vmin=vmin, vmax=vmax, array=True)

    def _dtype_kwarg(self, node: ast.Call, module: ModuleInfo) -> str | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return self.resolve_dtype(keyword.value, module)
        return None

    def _infer_numpy(
        self,
        name: str,
        node: ast.Call,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
        func: FunctionInfo | None,
    ) -> ArrayValue:
        dtype_kw = self._dtype_kwarg(node, module)
        if name in ("zeros", "empty", "ones"):
            dtype = dtype_kw or "float64"
            if name == "zeros":
                return ArrayValue(dtype=dtype, vmin=0, vmax=0, array=True)
            if name == "ones":
                return ArrayValue(dtype=dtype, vmin=1, vmax=1, array=True)
            return ArrayValue(dtype=dtype, array=True)
        if name == "full":
            fill = (
                self.infer(node.args[1], env, module, func)
                if len(node.args) >= 2
                else TOP
            )
            dtype = dtype_kw or ("int64" if fill.has_bounds else None)
            return ArrayValue(
                dtype=dtype, vmin=fill.vmin, vmax=fill.vmax, array=True
            )
        if name == "arange":
            args = [self.infer(a, env, module, func) for a in node.args]
            dtype = dtype_kw or "int64"
            if (
                1 <= len(args) <= 2
                and all(a.has_bounds for a in args)
                and not any(isinstance(a, ast.Starred) for a in node.args)
            ):
                if len(args) == 1:
                    return ArrayValue(
                        dtype=dtype, vmin=0, vmax=max(0, args[0].vmax - 1),  # type: ignore[operator]
                        array=True,
                    )
                return ArrayValue(
                    dtype=dtype,
                    vmin=args[0].vmin,
                    vmax=max(args[0].vmin, args[1].vmax - 1),  # type: ignore[operator,type-var]
                    array=True,
                )
            return ArrayValue(dtype=dtype, array=True)
        if name in _BASE_PRESERVING:
            base = (
                self.infer(node.args[0], env, module, func) if node.args else TOP
            )
            dtype = dtype_kw or base.dtype
            keep_bounds = base.has_bounds and (
                dtype_kw is None
                or fits_dtype(base.vmin, base.vmax, dtype_kw)  # type: ignore[arg-type]
            )
            return ArrayValue(
                dtype=dtype,
                vmin=base.vmin if keep_bounds else None,
                vmax=base.vmax if keep_bounds else None,
                array=True,
            )
        if name == "where" and len(node.args) == 3:
            picked = join(
                self.infer(node.args[1], env, module, func),
                self.infer(node.args[2], env, module, func),
            )
            return replace(picked, array=True)
        if name in ("concatenate", "hstack", "vstack", "stack") and node.args:
            parts = node.args[0]
            if isinstance(parts, (ast.List, ast.Tuple)) and parts.elts:
                merged = self.infer(parts.elts[0], env, module, func)
                for element in parts.elts[1:]:
                    merged = join(merged, self.infer(element, env, module, func))
                return replace(merged, array=True)
            return TOP
        if name in ("minimum", "maximum") and len(node.args) == 2:
            merged = join(
                self.infer(node.args[0], env, module, func),
                self.infer(node.args[1], env, module, func),
            )
            return merged
        if name == "abs" and node.args:
            base = self.infer(node.args[0], env, module, func)
            if base.has_bounds:
                high = max(abs(base.vmin), abs(base.vmax))  # type: ignore[arg-type]
                return replace(base, vmin=0, vmax=high)
            return base
        if name in ("cumsum", "diff") and node.args:
            base = self.infer(node.args[0], env, module, func)
            return ArrayValue(dtype=base.dtype, array=True)
        if name in _INDEX_PRODUCING:
            return ArrayValue(dtype="int64", array=True)
        return TOP

    # -- environments --------------------------------------------------

    def _compute_env(
        self, func: FunctionInfo, module: ModuleInfo
    ) -> dict[str, ArrayValue]:
        node = func.node
        params: dict[str, ArrayValue] = {}
        all_args = (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )
        for arg in all_args:
            seeded = self._annotation_value(arg.annotation, module)
            if seeded is not None:
                params[arg.arg] = seeded

        statements: list[tuple[ast.expr, ast.expr, bool]] = []
        for stmt in own_nodes(node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    statements.append((target, stmt.value, False))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                statements.append((stmt.target, stmt.value, False))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                statements.append((stmt.target, stmt.iter, True))

        env: dict[str, ArrayValue] = dict(params)
        for _ in range(4):
            new_env: dict[str, ArrayValue] = dict(params)

            def merge(name: str, value: ArrayValue) -> None:
                prior = new_env.get(name)
                new_env[name] = value if prior is None else join(prior, value)

            lookup = {**env}
            for target, value, is_loop in statements:
                lookup.update(new_env)
                if is_loop:
                    self._bind_loop(target, value, lookup, new_env, merge, module, func)
                    continue
                if isinstance(target, ast.Name):
                    merge(target.id, self.infer(value, lookup, module, func))
                elif isinstance(target, ast.Tuple) and all(
                    isinstance(e, ast.Name) for e in target.elts
                ):
                    self._bind_tuple(target, value, lookup, merge, module, func)
            self._apply_mutations(func, new_env, module)
            if new_env == env:
                break
            env = new_env
        return env

    def _bind_loop(
        self,
        target: ast.expr,
        iterable: ast.expr,
        lookup: dict[str, ArrayValue],
        env: dict[str, ArrayValue],
        merge: object,
        module: ModuleInfo,
        func: FunctionInfo,
    ) -> None:
        """Bind a for-loop target from its iterable (range or array)."""
        if not isinstance(target, ast.Name):
            return
        bind = merge  # typed narrow for mypy
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "range"
        ):
            args = [self.infer(a, lookup, module, func) for a in iterable.args]
            if 1 <= len(args) <= 2 and all(a.has_bounds for a in args):
                if len(args) == 1:
                    value = ArrayValue(vmin=0, vmax=max(0, args[0].vmax - 1))  # type: ignore[operator]
                else:
                    value = ArrayValue(
                        vmin=args[0].vmin,
                        vmax=max(args[0].vmin, args[1].vmax - 1),  # type: ignore[operator,type-var]
                    )
            else:
                value = TOP
            bind(target.id, value)  # type: ignore[operator]
            return
        iter_value = self.infer(iterable, lookup, module, func)
        if iter_value.array:
            bind(  # type: ignore[operator]
                target.id,
                ArrayValue(
                    dtype=iter_value.dtype,
                    vmin=iter_value.vmin,
                    vmax=iter_value.vmax,
                    array=False,
                ),
            )
        else:
            bind(target.id, TOP)  # type: ignore[operator]

    def _bind_tuple(
        self,
        target: ast.Tuple,
        value: ast.expr,
        lookup: dict[str, ArrayValue],
        merge: object,
        module: ModuleInfo,
        func: FunctionInfo,
    ) -> None:
        """``a, b = f(...)`` / ``a, b = x, y`` unpacking."""
        values: tuple[ArrayValue, ...] = ()
        if isinstance(value, ast.Call):
            resolved = self.index.resolve_call(value, module, func)
            if resolved is not None and resolved[1] == "function":
                values = self.returns(resolved[0])
        elif isinstance(value, ast.Tuple):
            values = tuple(self.infer(e, lookup, module, func) for e in value.elts)
        if len(values) != len(target.elts):
            values = tuple(TOP for _ in target.elts)
        for element, element_value in zip(target.elts, values):
            if isinstance(element, ast.Name):
                merge(element.id, element_value)  # type: ignore[operator]

    def _apply_mutations(
        self,
        func: FunctionInfo,
        env: dict[str, ArrayValue],
        module: ModuleInfo,
    ) -> None:
        """Widen (or forget) bounds for names mutated in place.

        A subscript store widens the target's range by the stored
        value's range when both are known; any mutation the analysis
        cannot bound (augmented assignment, unknown stored value, or a
        name handed to a callee that may write through it — ``out=``)
        forgets the range entirely.
        """
        for name, stored in mutation_sites(func.node):
            current = env.get(name)
            if current is None:
                continue
            if stored is None:
                env[name] = replace(current, vmin=None, vmax=None)
                continue
            value = self.infer(stored, env, module, func)
            if current.has_bounds and value.has_bounds:
                env[name] = replace(
                    current,
                    vmin=min(current.vmin, value.vmin),  # type: ignore[type-var]
                    vmax=max(current.vmax, value.vmax),  # type: ignore[type-var]
                )
            else:
                env[name] = replace(current, vmin=None, vmax=None)

    def _annotation_value(
        self, annotation: ast.expr | None, module: ModuleInfo
    ) -> ArrayValue | None:
        """Array-typed parameter annotations seed the environment.

        ``NDArray[np.int32]`` pins both array-ness and dtype; a bare
        ``np.ndarray`` (the codebase's dominant style) pins array-ness
        only, which is enough for the copy/loop rules to engage.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Subscript):
            chain = self.index.qualified_chain(annotation.value, module)
            if chain is None:
                return None
            tail = chain.rpartition(".")[2]
            if tail not in ("NDArray", "ndarray"):
                return None
            return ArrayValue(
                dtype=self.resolve_dtype(annotation.slice, module), array=True
            )
        chain = self.index.qualified_chain(annotation, module)
        if chain is None:
            return None
        if chain.rpartition(".")[2] in ("NDArray", "ndarray"):
            return ArrayValue(array=True)
        return None

    # -- constants -----------------------------------------------------

    def _find_constant_expr(
        self, chain: str, module: ModuleInfo
    ) -> tuple[ModuleInfo, str, ast.expr] | None:
        """Locate the defining ``NAME = <expr>`` of a constant chain."""
        root, _, rest = chain.partition(".")
        if not rest and root in module.const_exprs:
            return module, root, module.const_exprs[root]
        resolved = resolve_alias(chain, module.aliases)
        head, _, tail = resolved.rpartition(".")
        if tail and head in self.index.modules:
            other = self.index.modules[head]
            if tail in other.const_exprs:
                return other, tail, other.const_exprs[tail]
        return None

    def _constant_value(self, chain: str, module: ModuleInfo) -> ArrayValue:
        """Abstract value of a module-level constant reference."""
        root, _, rest = chain.partition(".")
        if not rest and root in module.int_constants:
            return _scalar(module.int_constants[root])
        resolved = resolve_alias(chain, module.aliases)
        head, _, tail = resolved.rpartition(".")
        if tail and head in self.index.modules:
            other = self.index.modules[head]
            if tail in other.int_constants:
                return _scalar(other.int_constants[tail])
        found = self._find_constant_expr(chain, module)
        if found is None:
            return TOP
        const_module, const_name, expr = found
        key = (const_module.name, const_name)
        if key in self._const_active:
            return TOP
        self._const_active.add(key)
        try:
            return self.infer(expr, {}, const_module, None)
        finally:
            self._const_active.discard(key)

    # -- allocation recognition (SIM015) -------------------------------

    def allocation_dtype(
        self, node: ast.Call, module: ModuleInfo, func: FunctionInfo | None
    ) -> str | None:
        """Element dtype of an array *allocation* call, else ``None``.

        Only genuine creation sites count (``np.zeros``/``empty``/
        ``ones``/``full``/``arange``/``*_like``, ``rng.integers``) —
        views and casts of existing arrays are the producer's problem.
        """
        if isinstance(node.func, ast.Attribute) and node.func.attr == "integers":
            chain = self.index.qualified_chain(node.func, module)
            if chain is None or not chain.startswith("numpy."):
                return self._dtype_kwarg(node, module) or "int64"
        chain = self.index.qualified_chain(node.func, module)
        if chain is None or not chain.startswith("numpy."):
            return None
        name = chain.rpartition(".")[2]
        if name not in _ALLOC_DEFAULT_DTYPE:
            return None
        dtype_kw = self._dtype_kwarg(node, module)
        if dtype_kw is not None:
            return dtype_kw
        if name == "full":
            fill = self.infer(node.args[1], {}, module, func) if len(node.args) >= 2 else TOP
            return "int64" if fill.has_bounds else None
        if name == "arange":
            return "int64"
        return _ALLOC_DEFAULT_DTYPE[name]


# -- rule helpers ------------------------------------------------------


def _captured_names(func: FunctionInfo) -> set[str]:
    """Names read by closures nested inside ``func`` (aliasing hazard)."""
    captured: set[str] = set()
    for node in own_nodes(func.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            captured |= free_names(node)
    return captured


def _passed_to_call(
    name: str, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> bool:
    """Whether ``name`` appears inside any call argument of ``func``.

    A callee holding the array (or a view of it, e.g. ``out=x[1:]``)
    may store values the local bounds analysis never saw, so inferred
    ranges cannot be trusted.  Narrower than :func:`dataflow.escapes`:
    returning the array does not invalidate its *bounds*, only its
    ownership — and SIM015 cares about the former.
    """
    for node in own_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(arg)
            ):
                return True
    return False


def _diag(func: FunctionInfo, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=func.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


# -- SIM015: hot-path 64-bit arrays with provably narrow ranges --------


@register_rule
class HotWideArrayRule:
    """64-bit allocation in a hot function whose values fit 16/32 bits.

    Fires only when the inference *proves* the narrower range: the
    array is created 64-bit and every store into it has known bounds.
    Returning the array is fine (narrowing it is exactly the interface
    change the rule asks for), but handing the name to another callable
    or a closure is not — an ``out=`` alias or helper may write values
    the local analysis never sees, so the rule stands down.  At 10M
    nodes each provably-narrow int64 array wastes 40-60 MB per
    instance — see docs/performance.md's memory budget.
    """

    code = "SIM015"
    summary = "hot-path 64-bit array whose proven value range fits a narrower dtype"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        hot = hot_functions(ctx.index, ctx.config)
        if not hot:
            return
        inference = ArrayInference(ctx.index)
        for qualname in sorted(hot):
            func = ctx.index.functions[qualname]
            module = ctx.index.modules[func.module]
            env = inference.env(qualname)
            captured = _captured_names(func)
            for node in own_nodes(func.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                name = node.targets[0].id
                alloc_dtype = inference.allocation_dtype(node.value, module, func)
                if alloc_dtype not in ("int64", "uint64"):
                    continue
                final = env.get(name)
                if final is None or final.dtype != alloc_dtype or not final.has_bounds:
                    continue
                narrow = narrowest_int_dtype(final.vmin, final.vmax)  # type: ignore[arg-type]
                if narrow is None or ITEMSIZE[narrow] >= ITEMSIZE[alloc_dtype]:
                    continue
                if name in captured or _passed_to_call(name, func.node):
                    continue
                yield _diag(
                    func,
                    node,
                    self.code,
                    f"'{name}' is allocated as {alloc_dtype} in hot function "
                    f"'{qualname}' but provably holds only "
                    f"[{final.vmin}, {final.vmax}]; allocate with "
                    f"dtype=np.{narrow}",
                )


# -- SIM016: hidden copies in hot paths --------------------------------


@register_rule
class HiddenCopyRule:
    """Constructs that silently copy whole arrays inside hot kernels.

    Four shapes: ``np.unique`` inside a loop (sorts and copies every
    iteration — use mask-based dedup, see ``flood_depths``); chained
    fancy indexing ``a[i][j]`` (the inner gather materializes a full
    temporary — fuse the indices); ``x.astype(d)`` when ``x`` already
    has dtype ``d`` without ``copy=False`` (a full redundant copy);
    and non-contiguous views (stepped slices, transposes) handed to
    the shm transport, which must then materialize them.
    """

    code = "SIM016"
    summary = "hidden-copy construct in a hot path"

    _SHM_PREFIX = "repro.runtime.shm."

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        hot = hot_functions(ctx.index, ctx.config)
        inference = ArrayInference(ctx.index)
        for qualname in sorted(ctx.index.functions):
            func = ctx.index.functions[qualname]
            module = ctx.index.modules[func.module]
            is_hot = qualname in hot
            env = inference.env(qualname) if is_hot else {}
            reported: set[tuple[int, int]] = set()
            for node in own_nodes(func.node):
                if is_hot and isinstance(node, (ast.For, ast.While)):
                    yield from self._unique_in_loop(func, module, node, reported)
                if is_hot and isinstance(node, ast.Subscript):
                    yield from self._fancy_chain(
                        func, module, node, env, inference, reported
                    )
                if is_hot and isinstance(node, ast.Call):
                    yield from self._redundant_astype(
                        func, module, node, env, inference, reported
                    )
                if isinstance(node, ast.Call):
                    yield from self._noncontiguous_shm(
                        func, module, node, ctx, reported
                    )

    def _unique_in_loop(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        loop: ast.For | ast.While,
        reported: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        bodies = list(loop.body) + list(loop.orelse)
        for stmt in bodies:
            for node in walk_shallow(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = (
                    self._qualified(func, module, node.func)
                    if isinstance(node.func, (ast.Name, ast.Attribute))
                    else None
                )
                if chain == "numpy.unique":
                    key = (node.lineno, node.col_offset)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield _diag(
                        func,
                        node,
                        self.code,
                        f"np.unique inside a loop in hot function "
                        f"'{func.qualname}' sorts and copies every "
                        f"iteration; deduplicate with a boolean mask "
                        f"(see flood_depths) or hoist it out of the loop",
                    )

    def _qualified(
        self, func: FunctionInfo, module: ModuleInfo, node: ast.expr
    ) -> str | None:
        chain = dotted_name(node)
        if chain is None:
            return None
        return resolve_alias(chain, module.aliases)

    def _fancy_chain(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        node: ast.Subscript,
        env: dict[str, ArrayValue],
        inference: ArrayInference,
        reported: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        inner = node.value
        if not isinstance(inner, ast.Subscript):
            return
        if self._trivial_index(node.slice) or self._trivial_index(inner.slice):
            return
        base = inner.value
        if not isinstance(base, ast.Name):
            return
        base_value = env.get(base.id)
        if base_value is None or not base_value.array:
            return
        key = (node.lineno, node.col_offset)
        if key in reported:
            return
        reported.add(key)
        yield _diag(
            func,
            node,
            self.code,
            f"chained fancy indexing on '{base.id}' in hot function "
            f"'{func.qualname}' materializes the intermediate gather; "
            f"fuse the index arrays into a single subscript",
        )

    @staticmethod
    def _trivial_index(index: ast.expr) -> bool:
        """Constant subscripts and plain slices don't copy (views)."""
        if isinstance(index, ast.Slice):
            return True
        if isinstance(index, ast.Constant):
            return True
        if isinstance(index, ast.UnaryOp) and isinstance(
            index.operand, ast.Constant
        ):
            return True
        return False

    def _redundant_astype(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        env: dict[str, ArrayValue],
        inference: ArrayInference,
        reported: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            return
        if any(keyword.arg == "copy" for keyword in node.keywords):
            return
        target = inference.resolve_dtype(node.args[0], module)
        if target is None:
            return
        base = inference.infer(node.func.value, env, module, func)
        if not base.array or base.dtype != target:
            return
        key = (node.lineno, node.col_offset)
        if key in reported:
            return
        reported.add(key)
        yield _diag(
            func,
            node,
            self.code,
            f".astype(np.{target}) in hot function '{func.qualname}' "
            f"copies an array that already has dtype {target}; pass "
            f"copy=False (or drop the cast)",
        )

    def _noncontiguous_shm(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        ctx: ProjectContext,
        reported: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        # Resolve through the alias map alone: the shm module need not
        # itself be part of the linted tree for its callers to be.
        chain = (
            ctx.index.qualified_chain(node.func, module)
            if isinstance(node.func, (ast.Name, ast.Attribute))
            else None
        )
        if chain is None or not chain.startswith(self._SHM_PREFIX):
            return
        for arg in list(node.args) + [keyword.value for keyword in node.keywords]:
            bad = self._noncontiguous_shape(arg)
            if bad is None:
                continue
            key = (node.lineno, node.col_offset)
            if key in reported:
                continue
            reported.add(key)
            yield _diag(
                func,
                node,
                self.code,
                f"{bad} passed to shm transport '{chain}' is "
                f"non-contiguous; the transport must materialize a "
                f"copy — pass np.ascontiguousarray(...) explicitly at "
                f"the producer where the copy is visible",
            )

    @staticmethod
    def _noncontiguous_shape(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute) and node.attr == "T":
            return "a transpose (.T)"
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
            step = node.slice.step
            if step is not None and not (
                isinstance(step, ast.Constant) and step.value in (1, None)
            ):
                return "a stepped slice"
        return None


# -- SIM017: per-element Python loops in hot kernels -------------------


@register_rule
class ScalarLoopRule:
    """A Python ``for`` iterating per element over arrays in a hot path.

    Fires only when the loop body is pure array element access — it
    subscripts a known array by the loop variable and calls nothing —
    so a vectorized primitive (fancy indexing, ufuncs, ``np.bincount``)
    is guaranteed to exist.  Loops that call helpers per element are
    left alone: the fix there is restructuring, not mechanical
    vectorization, and that judgement stays human.
    """

    code = "SIM017"
    summary = "per-element Python loop over arrays in a hot function"

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        hot = hot_functions(ctx.index, ctx.config)
        if not hot:
            return
        inference = ArrayInference(ctx.index)
        for qualname in sorted(hot):
            func = ctx.index.functions[qualname]
            module = ctx.index.modules[func.module]
            env = inference.env(qualname)
            for node in own_nodes(func.node):
                if not isinstance(node, ast.For):
                    continue
                if not isinstance(node.target, ast.Name):
                    continue
                diagnostic = self._check_loop(func, module, node, env, inference)
                if diagnostic is not None:
                    yield diagnostic

    def _check_loop(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        loop: ast.For,
        env: dict[str, ArrayValue],
        inference: ArrayInference,
    ) -> Diagnostic | None:
        assert isinstance(loop.target, ast.Name)
        variable = loop.target.id
        iter_is_range = (
            isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id == "range"
        )
        if not iter_is_range:
            iter_value = inference.infer(loop.iter, env, module, func)
            if not iter_value.array:
                return None
        subscripted: list[str] = []
        for stmt in loop.body:
            for node in walk_shallow(stmt):
                if isinstance(node, ast.Call):
                    if iter_is_range and node is loop.iter:
                        continue
                    return None  # body calls something; not mechanical
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and any(
                        isinstance(n, ast.Name) and n.id == variable
                        for n in ast.walk(node.slice)
                    )
                ):
                    base = env.get(node.value.id)
                    if base is not None and base.array:
                        subscripted.append(node.value.id)
        if not subscripted:
            return None
        arrays = ", ".join(sorted(set(subscripted)))
        return _diag(
            func,
            loop,
            self.code,
            f"per-element Python loop over array(s) {arrays} in hot "
            f"function '{func.qualname}'; replace with vectorized "
            f"indexing/ufuncs (the body does pure element access)",
        )
