"""Phase 1 of simlint v2: the project-wide symbol table and call graph.

Per-file AST walking (simlint v1) cannot check any contract that spans
a function boundary — exactly where the parallel runtime and artifact
cache put their sharp edges.  :func:`build_index` parses every target
file once and produces a :class:`ProjectIndex`:

* **modules** — dotted name, import-alias map, top-level defs;
* **functions** — every module-level function and method, addressable
  by qualified name (``repro.runtime.parallel.pmap``);
* **call graph** — per-function resolved call sites, restricted to
  names the resolver can prove refer to an indexed project function
  (or class constructor).  Unresolvable dynamic calls are dropped, so
  every edge in the graph is trustworthy.

Resolution is purely syntactic: nothing is imported or executed, so
the index can be built for fixture trees that reference modules which
do not exist on disk.  The index also offers a content-addressed disk
cache (:func:`load_or_build_index`) so CI re-runs skip the parse when
no source changed, and :func:`normalized_digest` — a line/column/
docstring-insensitive AST fingerprint stable across CPython minor
versions — which powers the SIM014 producer lock.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence
from weakref import WeakKeyDictionary

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
    "dotted_name",
    "import_aliases",
    "load_or_build_index",
    "module_name_for",
    "normalized_digest",
    "resolve_alias",
    "source_tree_digest",
    "tree_nodes",
]

def dotted_name(node: ast.expr) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c`` (None for anything else)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# One parsed tree is walked end to end by many consumers: several
# per-file rules, the alias scan below, and the concurrency layer.
# ast.walk re-derives the same node sequence each time and its
# iter_child_nodes traffic dominates whole-repo lint time, so the flat
# BFS order is memoized per tree.  WeakKeyDictionary entries die with
# their tree, so repeated in-process runs do not leak.
_TREE_NODES_CACHE: "WeakKeyDictionary[ast.AST, tuple[ast.AST, ...]]" = (
    WeakKeyDictionary()
)

_ALIAS_CACHE: "WeakKeyDictionary[ast.AST, dict[str, dict[str, str]]]" = (
    WeakKeyDictionary()
)


def tree_nodes(tree: ast.AST) -> tuple[ast.AST, ...]:
    """Every node of ``tree`` in :func:`ast.walk` (BFS) order, memoized."""
    cached = _TREE_NODES_CACHE.get(tree)
    if cached is None:
        cached = tuple(ast.walk(tree))
        _TREE_NODES_CACHE[tree] = cached
    return cached


def import_aliases(tree: ast.Module, *, package: str = "") -> dict[str, str]:
    """Map local names to the fully-qualified object they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter`` -> ``{"perf_counter": "time.perf_counter"}``.
    Relative imports resolve against ``package`` (the importing module's
    package, empty for top-level modules); star imports are
    unresolvable and therefore skipped.  Cached per ``(tree, package)``
    — the same tree is scanned by the index build and by several
    per-file rules.
    """
    per_tree = _ALIAS_CACHE.setdefault(tree, {})
    cached = per_tree.get(package)
    if cached is not None:
        return cached
    aliases: dict[str, str] = {}
    for node in tree_nodes(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a`` locally.
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                hops = package.split(".") if package else []
                if node.level - 1 <= len(hops):
                    kept = hops[: len(hops) - (node.level - 1)]
                    base = ".".join(kept + ([node.module] if node.module else []))
                else:
                    continue  # relative import escaping the known tree
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}"
    per_tree[package] = aliases
    return aliases


def resolve_alias(chain: str, aliases: dict[str, str]) -> str:
    """Substitute the chain's root through the import-alias map."""
    root, _, rest = chain.partition(".")
    full = aliases.get(root, root)
    return f"{full}.{rest}" if rest else full


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain.

    Walks up from the file while each parent directory is a package, so
    ``src/repro/runtime/shm.py`` -> ``repro.runtime.shm`` regardless of
    the directory lint was invoked from, and fixture packages in tmp
    dirs get proper package-qualified names.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(parts) if parts else path.stem


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at a location.

    ``kind`` is ``"function"`` for plain calls and ``"class"`` when the
    callee is a class constructor (the qualname then names the class).
    """

    caller: str
    callee: str
    kind: str
    path: str
    line: int
    col: int


@dataclass
class FunctionInfo:
    """One indexed module-level function or method."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")


@dataclass
class ClassInfo:
    """One indexed class with its method table."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: name, tree, aliases, top-level bindings."""

    name: str
    path: str
    tree: ast.Module
    aliases: dict[str, str]
    #: names bound at module level to a def/class in this module.
    local_defs: dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <int literal>`` constants (SIM014 versions).
    int_constants: dict[str, int] = field(default_factory=dict)
    #: module-level ``NAME = <expr>`` bindings whose value is a simple
    #: name chain or call (``INDEX_DTYPE = np.int32``); the array
    #: analysis resolves dtype constants through these, including
    #: cross-module via the importing module's alias map.
    const_exprs: dict[str, ast.expr] = field(default_factory=dict)


class ProjectIndex:
    """The phase-1 output: modules, functions, classes, call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.build_seconds: float = 0.0
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        self._reverse: dict[str, set[str]] | None = None

    # -- construction -------------------------------------------------

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{info.name}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=info.name, path=info.path, node=stmt
                )
                info.local_defs[stmt.name] = qualname
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{info.name}.{stmt.name}"
                cls = ClassInfo(
                    qualname=cls_qual, module=info.name, path=info.path, node=stmt
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method_qual = f"{cls_qual}.{sub.name}"
                        method = FunctionInfo(
                            qualname=method_qual, module=info.name,
                            path=info.path, node=sub, class_name=stmt.name,
                        )
                        cls.methods[sub.name] = method
                        self.functions[method_qual] = method
                self.classes[cls_qual] = cls
                info.local_defs[stmt.name] = cls_qual
            elif isinstance(stmt, ast.Assign):
                if (
                    isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                    and not isinstance(stmt.value.value, bool)
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.int_constants[target.id] = stmt.value.value
                elif isinstance(stmt.value, (ast.Name, ast.Attribute, ast.Call)):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.const_exprs[target.id] = stmt.value

    def link_calls(self) -> None:
        """Phase-1b: resolve every call site in every indexed function."""
        for func in self.functions.values():
            sites: list[CallSite] = []
            module = self.modules[func.module]
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(node, module, func)
                if resolved is None:
                    continue
                callee, kind = resolved
                sites.append(
                    CallSite(
                        caller=func.qualname, callee=callee, kind=kind,
                        path=func.path, line=node.lineno, col=node.col_offset,
                    )
                )
            self.calls[func.qualname] = sites
        self._ancestor_cache.clear()
        self._reverse = None

    # -- resolution ---------------------------------------------------

    def resolve_name(
        self, chain: str, module: ModuleInfo, func: FunctionInfo | None = None
    ) -> tuple[str, str] | None:
        """Resolve a dotted name to ``(qualname, kind)`` within the project.

        ``kind`` is ``"function"`` or ``"class"``.  ``self.method``/
        ``cls.method`` chains resolve through the enclosing class when
        ``func`` is a method.  Returns None for anything that cannot be
        proven to name an indexed definition.
        """
        root, _, rest = chain.partition(".")
        if func is not None and func.class_name and root in ("self", "cls") and rest:
            cls = self.classes.get(f"{func.module}.{func.class_name}")
            method_name = rest.split(".")[0]
            if cls is not None and method_name in cls.methods:
                return cls.methods[method_name].qualname, "function"
            return None
        # Local defs shadow imports only if not re-imported; imports win
        # when both exist because Python binds whichever ran last and
        # the repo convention is imports-at-top, defs-after.
        candidates: list[str] = []
        if root in module.aliases:
            candidates.append(resolve_alias(chain, module.aliases))
        if root in module.local_defs:
            suffix = f".{rest}" if rest else ""
            candidates.append(f"{module.local_defs[root]}{suffix}")
        for candidate in candidates:
            if candidate in self.functions:
                return candidate, "function"
            if candidate in self.classes:
                return candidate, "class"
            # ``module.attr`` where the alias maps to a module we indexed.
            head, _, tail = candidate.rpartition(".")
            if tail and head in self.modules:
                target = self.modules[head].local_defs.get(tail)
                if target in self.functions:
                    return target, "function"
                if target in self.classes:
                    return target, "class"
        return None

    def resolve_call(
        self, node: ast.Call, module: ModuleInfo, func: FunctionInfo | None = None
    ) -> tuple[str, str] | None:
        """Resolve a call expression's target (see :meth:`resolve_name`)."""
        chain = dotted_name(node.func)
        if chain is None:
            return None
        return self.resolve_name(chain, module, func)

    def qualified_chain(
        self, node: ast.expr, module: ModuleInfo
    ) -> str | None:
        """The import-resolved dotted chain of an expression, if any.

        Unlike :meth:`resolve_name` this does not require the target to
        be indexed — it answers "what external name does this refer
        to?" (``np.random.default_rng`` -> ``numpy.random.default_rng``).
        """
        chain = dotted_name(node)
        if chain is None:
            return None
        return resolve_alias(chain, module.aliases)

    # -- graph queries ------------------------------------------------

    def callees(self, qualname: str) -> Iterator[CallSite]:
        """Direct resolved call sites of one function."""
        yield from self.calls.get(qualname, ())

    def reachable_from(self, qualname: str) -> frozenset[str]:
        """Function qualnames transitively reachable from ``qualname``.

        Class-constructor edges continue through the class's
        ``__init__`` plus every method reachable from it via ``self.x()``.
        """
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls.get(current, ()):
                if site.kind == "class":
                    init = f"{site.callee}.__init__"
                    if init in self.functions and init not in seen:
                        stack.append(init)
                elif site.callee not in seen:
                    stack.append(site.callee)
        seen.discard(qualname)
        return frozenset(seen)

    def ancestors(self, qualname: str) -> frozenset[str]:
        """Functions from which ``qualname`` is reachable (itself included)."""
        cached = self._ancestor_cache.get(qualname)
        if cached is not None:
            return cached
        if self._reverse is None:
            reverse: dict[str, set[str]] = {}
            for caller, sites in self.calls.items():
                for site in sites:
                    callee = (
                        f"{site.callee}.__init__" if site.kind == "class" else site.callee
                    )
                    reverse.setdefault(callee, set()).add(caller)
            self._reverse = reverse
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._reverse.get(current, ()))
        result = frozenset(seen)
        self._ancestor_cache[qualname] = result
        return result


def build_index(
    parsed: Sequence[tuple[Path, ast.Module]],
) -> ProjectIndex:
    """Build the project index over pre-parsed ``(path, tree)`` pairs."""
    start = time.perf_counter()  # simlint: ignore[SIM002] linter self-timing, not simulation output
    index = ProjectIndex()
    for path, tree in parsed:
        name = module_name_for(path)
        if name in index.modules:
            # Two files mapping to one module name (e.g. duplicated
            # fixture stems outside packages): keep the first, which
            # matches Python's own import behavior for sys.path order.
            continue
        package = name.rpartition(".")[0]
        info = ModuleInfo(
            name=name,
            path=str(path),
            tree=tree,
            aliases=import_aliases(tree, package=package),
        )
        index.add_module(info)
    index.link_calls()
    index.build_seconds = time.perf_counter() - start  # simlint: ignore[SIM002] linter self-timing, not simulation output
    return index


# -- normalized AST digests (SIM014) ----------------------------------


def _normalize(node: object, out: list[str]) -> None:
    """Serialize an AST node insensitively to position and docstrings.

    Fields that are ``None``/empty are skipped entirely, which keeps
    the rendering stable when a newer CPython adds fields (3.12's
    ``type_params``) that older versions lack.
    """
    if isinstance(node, ast.AST):
        out.append(type(node).__name__)
        out.append("(")
        for name in node._fields:
            value = getattr(node, name, None)
            if value is None or (isinstance(value, list) and not value):
                continue
            out.append(f"{name}=")
            _normalize(value, out)
            out.append(",")
        out.append(")")
    elif isinstance(node, list):
        out.append("[")
        for item in node:
            _normalize(item, out)
            out.append(",")
        out.append("]")
    else:
        out.append(repr(node))


def _strip_docstring(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> ast.AST:
    if isinstance(node, ast.Lambda):
        return node
    body = node.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        clone = ast.FunctionDef if isinstance(node, ast.FunctionDef) else ast.AsyncFunctionDef
        return clone(
            name=node.name, args=node.args, body=body[1:] or [ast.Pass()],
            decorator_list=node.decorator_list, returns=node.returns,
        )
    return node


def normalized_digest(*nodes: ast.AST) -> str:
    """Stable hex fingerprint of one or more function/lambda ASTs."""
    parts: list[str] = []
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            node = _strip_docstring(node)
        _normalize(node, parts)
        parts.append(";")
    return hashlib.sha256("".join(parts).encode()).hexdigest()[:32]


# -- content-addressed index cache ------------------------------------

# Bumped to 2 when ModuleInfo gained ``const_exprs`` (v3 array
# analysis): the schema participates in the cache key, so pickles from
# older builds simply miss instead of deserializing a stale shape.
_INDEX_CACHE_SCHEMA = 2


def source_tree_digest(files: Sequence[Path]) -> str:
    """Digest of the target set: file names plus exact byte contents."""
    acc = hashlib.sha256(f"simlint-index-{_INDEX_CACHE_SCHEMA}".encode())
    for path in sorted(files):
        acc.update(str(path).encode())
        acc.update(b"\x00")
        try:
            acc.update(path.read_bytes())
        except OSError:
            acc.update(b"<unreadable>")
        acc.update(b"\x01")
    return acc.hexdigest()[:32]


def load_or_build_index(
    parsed: Sequence[tuple[Path, ast.Module]],
    cache_dir: Path | None,
) -> ProjectIndex:
    """:func:`build_index` behind a content-addressed pickle cache.

    The cache key covers every target file's bytes, so any edit misses;
    corrupt or version-skewed entries fall through to a rebuild.  With
    ``cache_dir=None`` this is exactly :func:`build_index`.
    """
    if cache_dir is None:
        return build_index(parsed)
    digest = source_tree_digest([path for path, _ in parsed])
    entry = Path(cache_dir) / f"index-{digest}.pkl"
    if entry.is_file():
        try:
            with entry.open("rb") as handle:
                cached = pickle.load(handle)
            if isinstance(cached, ProjectIndex):
                return cached
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            pass  # fall through to rebuild and rewrite
    index = build_index(parsed)
    entry.parent.mkdir(parents=True, exist_ok=True)
    temp = entry.with_name(entry.name + ".tmp")
    try:
        with temp.open("wb") as handle:
            pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temp.replace(entry)
    except OSError:
        pass  # cache is best-effort; the build already succeeded
    return index
