"""``repro-lint --fix``: mechanical rewrites for two semantic findings.

Only fixes whose correctness is locally decidable are attempted:

* **SIM012** — ``seg = SharedThing(...)`` becomes
  ``with SharedThing(...) as seg:`` with the remainder of the enclosing
  block indented into the ``with`` body.  The rewrite is skipped when
  the allocation spans multiple lines or nothing follows it (an empty
  ``with`` body would not parse).
* **SIM014** — the "code changed but version stayed N" variant bumps
  the producer's version integer in place, whether it is an inline
  literal or a module-level ``_FOO_CACHE_VERSION = N`` constant.  After
  bumping, re-run ``repro-lint --update-lock`` to re-pin the lock.

Edits are collected per file and applied bottom-up so earlier edits
never invalidate later line numbers.  Everything else (SIM010 closure
captures, SIM011 key collisions, SIM013 impurities) requires a design
decision and is deliberately left to a human.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import FileContext, ProjectContext
from repro.lint.semantic import Producer, find_producers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports rules)
    from repro.lint.engine import LintRun

__all__ = ["FixResult", "apply_fixes"]

_INDENT = "    "


@dataclass
class FixResult:
    """What ``apply_fixes`` changed and what it declined to touch."""

    new_sources: dict[str, str]
    fixed: list[Diagnostic]
    skipped: list[tuple[Diagnostic, str]]


@dataclass(frozen=True)
class _Edit:
    """Replace source lines [start, end] (1-based, inclusive)."""

    start: int
    end: int
    replacement: list[str]


def _parent_blocks(tree: ast.AST) -> list[list[ast.stmt]]:
    blocks: list[list[ast.stmt]] = []
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                blocks.append(handler.body)
    return blocks


def _leading_ws(line: str) -> str:
    return line[: len(line) - len(line.lstrip())]


def _fix_shm_with(
    ctx: FileContext, diag: Diagnostic
) -> tuple[_Edit, str | None] | tuple[None, str]:
    """Build the ``with``-wrap edit for one SIM012 finding."""
    lines = ctx.source.splitlines()
    for block in _parent_blocks(ctx.tree):
        for pos, stmt in enumerate(block):
            if stmt.lineno != diag.line or not isinstance(stmt, ast.Assign):
                continue
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                return None, "assignment target is not a single name"
            if stmt.end_lineno != stmt.lineno:
                return None, "allocation spans multiple lines"
            rest = block[pos + 1 :]
            if not rest:
                return None, "nothing follows the allocation to scope under `with`"
            name = stmt.targets[0].id
            call_src = ast.get_source_segment(ctx.source, stmt.value)
            if call_src is None:
                return None, "cannot recover allocation source text"
            indent = _leading_ws(lines[stmt.lineno - 1])
            body_end = max(s.end_lineno or s.lineno for s in rest)
            replacement = [f"{indent}with {call_src} as {name}:"]
            for lineno in range(stmt.lineno + 1, body_end + 1):
                original = lines[lineno - 1]
                replacement.append(_INDENT + original if original.strip() else original)
            return _Edit(stmt.lineno, body_end, replacement), None
    return None, "no single-name shm assignment found at the reported line"


def _find_version_assign(
    module_tree: ast.Module, name: str
) -> ast.Constant | None:
    for stmt in module_tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ):
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, int
            ):
                return stmt.value
    return None


def _bump_literal(source: str, node: ast.Constant) -> _Edit | None:
    if node.lineno != node.end_lineno:
        return None
    line = source.splitlines()[node.lineno - 1]
    start, end = node.col_offset, node.end_col_offset
    if end is None or line[start:end] != str(node.value):
        return None
    bumped = line[:start] + str(int(node.value) + 1) + line[end:]
    return _Edit(node.lineno, node.lineno, [bumped])


def _fix_version_bump(
    ctx: FileContext, diag: Diagnostic, producer: Producer
) -> tuple[_Edit, str | None] | tuple[None, str]:
    node = producer.version_node
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        edit = _bump_literal(ctx.source, node)
        if edit is None:
            return None, "version literal is not editable in place"
        return edit, None
    if isinstance(node, ast.Name):
        constant = _find_version_assign(ctx.tree, node.id)
        if constant is None:
            return None, f"module constant {node.id!r} not found"
        edit = _bump_literal(ctx.source, constant)
        if edit is None:
            return None, f"module constant {node.id!r} is not editable in place"
        return edit, None
    return None, "version is not an int literal or module constant"


def _apply_edits(source: str, edits: Sequence[_Edit]) -> str:
    lines = source.splitlines()
    for edit in sorted(edits, key=lambda e: e.start, reverse=True):
        lines[edit.start - 1 : edit.end] = edit.replacement
    trailing = "\n" if source.endswith("\n") else ""
    return "\n".join(lines) + trailing


def apply_fixes(run: "LintRun") -> FixResult:
    """Compute fixed sources for a completed lint run (nothing is written).

    The caller (the CLI) writes ``new_sources`` to disk and re-lints;
    SIM014 fixes additionally need an ``--update-lock`` run afterwards
    to re-pin the bumped producers.
    """
    project: ProjectContext | None = run.project
    fixed: list[Diagnostic] = []
    skipped: list[tuple[Diagnostic, str]] = []
    edits_by_path: dict[str, list[_Edit]] = {}
    claimed_lines: dict[str, set[int]] = {}

    producers_at: dict[tuple[str, int], Producer] = {}
    if project is not None:
        for producer in find_producers(project):
            producers_at[(producer.owner.path, producer.call.lineno)] = producer

    for diag in run.findings:
        ctx = project.files.get(diag.path) if project is not None else None
        if ctx is None:
            continue
        edit: _Edit | None = None
        reason: str | None = None
        if diag.code == "SIM012":
            edit, reason = _fix_shm_with(ctx, diag)
        elif diag.code == "SIM014" and "version stayed" in diag.message:
            producer = producers_at.get((diag.path, diag.line))
            if producer is None:
                reason = "producer registration not found at the reported line"
            else:
                edit, reason = _fix_version_bump(ctx, diag, producer)
        else:
            continue
        if edit is None:
            skipped.append((diag, reason or "unfixable"))
            continue
        span = set(range(edit.start, edit.end + 1))
        if span & claimed_lines.setdefault(diag.path, set()):
            skipped.append((diag, "overlaps an earlier fix; re-run --fix"))
            continue
        claimed_lines[diag.path] |= span
        edits_by_path.setdefault(diag.path, []).append(edit)
        fixed.append(diag)

    new_sources = {
        path: _apply_edits(project.files[path].source, edits)  # type: ignore[union-attr]
        for path, edits in edits_by_path.items()
    }
    return FixResult(new_sources=new_sources, fixed=fixed, skipped=skipped)
