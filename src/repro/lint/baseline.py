"""Baseline files: adopt simlint on a tree without fixing it all at once.

A baseline records the findings a team has accepted as pre-existing
debt.  Subsequent runs subtract baselined findings, so CI only fails on
*new* violations; ``--write-baseline`` refreshes the file once debt is
paid down, and the CI gate refuses baselines that silently shrink
(stale entries must be removed explicitly, keeping the file honest).

Fingerprints are ``path::code::message`` with a count per fingerprint
(the ESLint/golangci style): line numbers are deliberately excluded so
unrelated edits above a known finding don't churn the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic

__all__ = [
    "Baseline",
    "BaselineResult",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

BASELINE_SCHEMA_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding across unrelated line-number churn."""
    return f"{diag.path}::{diag.code}::{diag.message}"


@dataclass(frozen=True)
class Baseline:
    """Accepted findings: fingerprint -> how many instances are accepted."""

    entries: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.entries.values())


@dataclass
class BaselineResult:
    """Outcome of subtracting a baseline from a findings list."""

    #: findings not covered by the baseline — these fail the build.
    new: list[Diagnostic]
    #: findings absorbed by a baseline entry.
    matched: list[Diagnostic]
    #: fingerprints present in the baseline but absent from this run —
    #: debt that was paid off and should be removed via --write-baseline.
    stale: list[str]


def from_findings(findings: Iterable[Diagnostic]) -> Baseline:
    entries: dict[str, int] = {}
    for diag in findings:
        key = fingerprint(diag)
        entries[key] = entries.get(key, 0) + 1
    return Baseline(entries=entries)


def apply_baseline(
    findings: Sequence[Diagnostic], baseline: Baseline
) -> BaselineResult:
    """Partition ``findings`` into new vs. baselined, reporting stale debt.

    When a fingerprint occurs more often than the baseline accepts, the
    first ``count`` occurrences (in sorted diagnostic order) are
    absorbed and the surplus surfaces as new.
    """
    remaining = dict(baseline.entries)
    new: list[Diagnostic] = []
    matched: list[Diagnostic] = []
    for diag in findings:
        key = fingerprint(diag)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched.append(diag)
        else:
            new.append(diag)
    stale = sorted(
        key for key, count in remaining.items() if count == baseline.entries.get(key)
        and count > 0
    )
    # Partially-consumed fingerprints are live debt, not stale.
    return BaselineResult(new=new, matched=matched, stale=stale)


def load_baseline(path: Path) -> Baseline | None:
    """Read a baseline file; ``None`` when absent or unreadable."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA_VERSION:
        return None
    raw = data.get("findings")
    if not isinstance(raw, dict):
        return None
    entries: dict[str, int] = {}
    for key, count in raw.items():
        if isinstance(key, str) and isinstance(count, int) and count > 0:
            entries[key] = count
    return Baseline(entries=entries)


def write_baseline(path: Path, findings: Iterable[Diagnostic]) -> Baseline:
    """Serialize current findings as the new accepted baseline."""
    baseline = from_findings(findings)
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "findings": dict(sorted(baseline.entries.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return baseline
