"""simlint configuration: defaults plus a ``[tool.simlint]`` pyproject table.

The loader is dependency-light: it uses :mod:`tomllib` (stdlib on
3.11+) or :mod:`tomli` when available, and silently falls back to the
built-in defaults otherwise — the linter must run in minimal
environments, and the defaults encode this repository's conventions.

v2 adds per-tree rule selection (``[tool.simlint.per-tree."tests/*"]``
tables overlay ``select``/``ignore`` for matching paths), the baseline
file, the SIM014 producer lock, and the target sets the semantic rules
resolve against (parallel-map entry points, shm factories, cache
registrars).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    try:
        import tomli as _toml  # type: ignore[import-not-found, no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

__all__ = ["LintConfig", "TreeRules", "load_config", "find_pyproject"]

# Modules allowed to touch numpy's RNG constructors directly (SIM001).
# Matched as a path *suffix* so absolute and relative invocations agree.
DEFAULT_RNG_MODULES = ("repro/utils/rng.py",)

# Paths where wall-clock reads are legitimate (SIM002): benchmarks time
# themselves, and the observability package exists to measure durations
# (its outputs are observational only and never feed simulation state).
DEFAULT_WALLCLOCK_EXEMPT = (
    "benchmarks/*",
    "*/benchmarks/*",
    "repro/obs/*",
    "*/repro/obs/*",
)

DEFAULT_EXCLUDE = ("*/.git/*", "*/__pycache__/*", "*/build/*", "*/dist/*")

# SIM010: deterministic fan-out entry points whose task closures must
# not capture a live generator (workers re-derive from (seed, key, i)).
DEFAULT_PARALLEL_MAPS = (
    "repro.runtime.parallel.pmap",
    "repro.runtime.parallel.parallel_map",
)

# SIM012: allocations that own kernel-backed segments and must be
# released on every path (with / try-finally / ownership transfer).
DEFAULT_SHM_FACTORIES = (
    "repro.runtime.shm.SharedTopology",
    "repro.runtime.shm.SharedPostings",
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
)

# SIM013/SIM014: the artifact-cache registrar whose compute callables
# must be pure functions of their cache key.
DEFAULT_CACHE_REGISTRARS = (
    "repro.runtime.cache.cached_call",
    "repro.runtime.cache.cached",
)

# SIM011: the named-stream derivation whose constant key tuples must be
# unique per experiment entry point.
DEFAULT_DERIVE_FUNCTIONS = ("repro.utils.rng.derive",)

# SIM008: modules where bare print() is the job — CLI entry points and
# console reporting.  Everything else must use repro.obs.log.
DEFAULT_PRINT_ALLOWED = (
    "*/cli.py",
    "*/__main__.py",
    "*/reporting.py",
)

# SIM013: observational-only modules.  Functions defined in these
# modules record metrics/spans/logs and are excluded from cache-purity
# reachability — by contract nothing they compute may flow back into a
# cached value.  The write-sanitizer is enforcement instrumentation of
# the same kind: its env switch gates fault *detection*, never values.
DEFAULT_OBS_MODULES = ("repro.obs", "repro.runtime.sanitize")

# SIM019/SIM021: functions that hand out views over *attached* shm or
# mmap segments.  Everything they return (and everything projected
# from it) is consumer-side read-only state: workers may read it, only
# the owning publisher writes, and the picklable ``.spec`` — never the
# attached view itself — is what crosses a process boundary.
DEFAULT_ATTACH_FUNCTIONS = (
    "repro.runtime.shm.attach_topology",
    "repro.runtime.shm.attach_postings",
    "repro.runtime.shards.attach_shard_set",
    "repro.runtime.shards.attach_sharded_postings",
    "repro.runtime.shards.attach_postings_any",
)

# SIM015-SIM017: roots of the hot set.  A function is *hot* when it is
# one of these or transitively reachable from one along the resolved
# call graph; the array-analysis rules only fire there, because dtype
# width and hidden copies only matter at kernel scale.  The
# ``[tool.simlint.hot]`` table extends the set for kernels the call
# graph cannot see (e.g. methods reached through unannotated params).
DEFAULT_HOT_ROOTS = (
    "repro.overlay.flooding.flood_depths",
    "repro.overlay.content.SharedContentIndex.match_batch",
    "repro.overlay.batch._evaluate_keys",
)


@dataclass(frozen=True)
class TreeRules:
    """Per-tree overlay: ``select``/``ignore`` for paths matching ``pattern``.

    ``pattern`` is a glob tested against the lint-relative posix path
    and, for absolute invocations, against every suffix starting at a
    path component (so ``tests/*`` matches ``/repo/tests/x.py`` too).
    """

    pattern: str
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()

    def matches(self, posix_path: str) -> bool:
        if fnmatch.fnmatch(posix_path, self.pattern):
            return True
        return fnmatch.fnmatch(posix_path, f"*/{self.pattern}")


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration.

    ``select``/``ignore`` are rule-code sets; an empty ``select`` means
    "all registered rules".  CLI flags override the pyproject table.
    ``root`` is the directory of the pyproject the config came from —
    relative artifact paths (baseline, producer lock) resolve against
    it, falling back to the current directory when configless.
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    rng_modules: tuple[str, ...] = DEFAULT_RNG_MODULES
    wallclock_exempt: tuple[str, ...] = DEFAULT_WALLCLOCK_EXEMPT
    per_tree: tuple[TreeRules, ...] = ()
    parallel_maps: tuple[str, ...] = DEFAULT_PARALLEL_MAPS
    shm_factories: tuple[str, ...] = DEFAULT_SHM_FACTORIES
    cache_registrars: tuple[str, ...] = DEFAULT_CACHE_REGISTRARS
    derive_functions: tuple[str, ...] = DEFAULT_DERIVE_FUNCTIONS
    print_allowed: tuple[str, ...] = DEFAULT_PRINT_ALLOWED
    obs_modules: tuple[str, ...] = DEFAULT_OBS_MODULES
    attach_functions: tuple[str, ...] = DEFAULT_ATTACH_FUNCTIONS
    hot_roots: tuple[str, ...] = DEFAULT_HOT_ROOTS
    hot_extra: tuple[str, ...] = ()
    baseline: str = ""
    producers_lock: str = ""
    mem_budget: str = ""
    mem_budget_tolerance: float = 0.02
    root: Path = field(default_factory=Path.cwd)

    def is_rule_enabled(self, code: str, posix_path: str | None = None) -> bool:
        """Apply select/ignore filtering, with per-tree overlays.

        The first matching per-tree table *overlays* the global sets:
        its ``ignore`` adds to the global ignore, and a non-empty
        per-tree ``select`` replaces the global one for that tree.
        """
        select, ignore = self.select, self.ignore
        if posix_path is not None:
            for tree in self.per_tree:
                if tree.matches(posix_path):
                    if tree.select:
                        select = tree.select
                    ignore = ignore | tree.ignore
                    break
        if select and code not in select:
            return False
        return code not in ignore

    def resolve_path(self, raw: str) -> Path:
        """Resolve a configured artifact path against the config root."""
        path = Path(raw)
        return path if path.is_absolute() else self.root / path

    @property
    def baseline_path(self) -> Path | None:
        return self.resolve_path(self.baseline) if self.baseline else None

    @property
    def producers_lock_path(self) -> Path | None:
        return self.resolve_path(self.producers_lock) if self.producers_lock else None

    @property
    def mem_budget_path(self) -> Path | None:
        return self.resolve_path(self.mem_budget) if self.mem_budget else None


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _as_str_tuple(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise TypeError(f"[tool.simlint] {key!r} must be a list of strings")
    return tuple(value)


def _as_str(value: Any, key: str) -> str:
    if not isinstance(value, str):
        raise TypeError(f"[tool.simlint] {key!r} must be a string")
    return value


def _parse_per_tree(raw: Any) -> tuple[TreeRules, ...]:
    if raw is None:
        return ()
    if not isinstance(raw, dict):
        raise TypeError("[tool.simlint] 'per-tree' must be a table of tables")
    trees: list[TreeRules] = []
    for pattern, table in raw.items():
        if not isinstance(table, dict):
            raise TypeError(
                f"[tool.simlint.per-tree] {pattern!r} must be a table"
            )
        trees.append(
            TreeRules(
                pattern=str(pattern),
                select=frozenset(
                    _as_str_tuple(table.get("select", []), f"per-tree.{pattern}.select")
                ),
                ignore=frozenset(
                    _as_str_tuple(table.get("ignore", []), f"per-tree.{pattern}.ignore")
                ),
            )
        )
    return tuple(trees)


def _parse_hot(
    raw: Any, defaults: "LintConfig"
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Parse ``[tool.simlint.hot]`` into ``(hot_roots, hot_extra)``.

    A table may override ``roots`` and append ``extra``; a bare list is
    shorthand for ``extra`` (functions added to the default hot set).
    """
    if raw is None:
        return defaults.hot_roots, defaults.hot_extra
    if isinstance(raw, dict):
        roots = _as_str_tuple(raw.get("roots", list(defaults.hot_roots)), "hot.roots")
        extra = _as_str_tuple(raw.get("extra", []), "hot.extra")
        return roots, extra
    return defaults.hot_roots, _as_str_tuple(raw, "hot")


def _as_float(value: Any, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"[tool.simlint] {key!r} must be a number")
    return float(value)


def load_config(
    pyproject: Path | None,
    *,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> LintConfig:
    """Build a :class:`LintConfig` from a pyproject file plus overrides.

    ``select``/``ignore`` (from the CLI) replace — not merge with — the
    corresponding pyproject keys, mirroring how ruff/flake8 behave.
    """
    table: dict[str, Any] = {}
    if pyproject is not None and _toml is not None:
        try:
            with pyproject.open("rb") as handle:
                data = _toml.load(handle)
        except (OSError, ValueError):
            data = {}
        tool = data.get("tool")
        if isinstance(tool, dict):
            raw = tool.get("simlint")
            if isinstance(raw, dict):
                # Accept both hyphenated (TOML idiom) and underscored keys.
                table = {key.replace("-", "_"): value for key, value in raw.items()}

    defaults = LintConfig()
    hot_roots, hot_extra = _parse_hot(table.get("hot"), defaults)
    return LintConfig(
        select=(
            select
            if select is not None
            else frozenset(_as_str_tuple(table.get("select", []), "select"))
        ),
        ignore=(
            ignore
            if ignore is not None
            else frozenset(_as_str_tuple(table.get("ignore", []), "ignore"))
        ),
        exclude=_as_str_tuple(table.get("exclude", defaults.exclude), "exclude"),
        rng_modules=_as_str_tuple(
            table.get("rng_modules", defaults.rng_modules), "rng_modules"
        ),
        wallclock_exempt=_as_str_tuple(
            table.get("wallclock_exempt", defaults.wallclock_exempt),
            "wallclock_exempt",
        ),
        per_tree=_parse_per_tree(table.get("per_tree")),
        parallel_maps=_as_str_tuple(
            table.get("parallel_maps", defaults.parallel_maps), "parallel_maps"
        ),
        shm_factories=_as_str_tuple(
            table.get("shm_factories", defaults.shm_factories), "shm_factories"
        ),
        cache_registrars=_as_str_tuple(
            table.get("cache_registrars", defaults.cache_registrars),
            "cache_registrars",
        ),
        derive_functions=_as_str_tuple(
            table.get("derive_functions", defaults.derive_functions),
            "derive_functions",
        ),
        print_allowed=_as_str_tuple(
            table.get("print_allowed", defaults.print_allowed), "print_allowed"
        ),
        obs_modules=_as_str_tuple(
            table.get("obs_modules", defaults.obs_modules), "obs_modules"
        ),
        attach_functions=_as_str_tuple(
            table.get("attach_functions", defaults.attach_functions),
            "attach_functions",
        ),
        hot_roots=hot_roots,
        hot_extra=hot_extra,
        baseline=_as_str(table.get("baseline", ""), "baseline"),
        producers_lock=_as_str(table.get("producers_lock", ""), "producers_lock"),
        mem_budget=_as_str(table.get("mem_budget", ""), "mem_budget"),
        mem_budget_tolerance=_as_float(
            table.get("mem_budget_tolerance", defaults.mem_budget_tolerance),
            "mem_budget_tolerance",
        ),
        root=(pyproject.parent if pyproject is not None else Path.cwd()),
    )
