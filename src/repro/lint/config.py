"""simlint configuration: defaults plus a ``[tool.simlint]`` pyproject table.

The loader is dependency-light: it uses :mod:`tomllib` (stdlib on
3.11+) or :mod:`tomli` when available, and silently falls back to the
built-in defaults otherwise — the linter must run in minimal
environments, and the defaults encode this repository's conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    try:
        import tomli as _toml  # type: ignore[import-not-found, no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

__all__ = ["LintConfig", "load_config", "find_pyproject"]

# Modules allowed to touch numpy's RNG constructors directly (SIM001).
# Matched as a path *suffix* so absolute and relative invocations agree.
DEFAULT_RNG_MODULES = ("repro/utils/rng.py",)

# Paths where wall-clock reads are legitimate (SIM002): benchmarks time
# themselves, and the lint package itself never runs inside a simulation.
DEFAULT_WALLCLOCK_EXEMPT = ("benchmarks/*", "*/benchmarks/*")

DEFAULT_EXCLUDE = ("*/.git/*", "*/__pycache__/*", "*/build/*", "*/dist/*")


@dataclass(frozen=True)
class LintConfig:
    """Resolved simlint configuration.

    ``select``/``ignore`` are rule-code sets; an empty ``select`` means
    "all registered rules".  CLI flags override the pyproject table.
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    exclude: tuple[str, ...] = DEFAULT_EXCLUDE
    rng_modules: tuple[str, ...] = DEFAULT_RNG_MODULES
    wallclock_exempt: tuple[str, ...] = DEFAULT_WALLCLOCK_EXEMPT

    def is_rule_enabled(self, code: str) -> bool:
        """Apply select/ignore filtering to a rule code."""
        if self.select and code not in self.select:
            return False
        return code not in self.ignore


def find_pyproject(start: Path) -> Path | None:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _as_str_tuple(value: Any, key: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise TypeError(f"[tool.simlint] {key!r} must be a list of strings")
    return tuple(value)


def load_config(
    pyproject: Path | None,
    *,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> LintConfig:
    """Build a :class:`LintConfig` from a pyproject file plus overrides.

    ``select``/``ignore`` (from the CLI) replace — not merge with — the
    corresponding pyproject keys, mirroring how ruff/flake8 behave.
    """
    table: dict[str, Any] = {}
    if pyproject is not None and _toml is not None:
        try:
            with pyproject.open("rb") as handle:
                data = _toml.load(handle)
        except (OSError, ValueError):
            data = {}
        tool = data.get("tool")
        if isinstance(tool, dict):
            raw = tool.get("simlint")
            if isinstance(raw, dict):
                # Accept both hyphenated (TOML idiom) and underscored keys.
                table = {key.replace("-", "_"): value for key, value in raw.items()}

    defaults = LintConfig()
    return LintConfig(
        select=(
            select
            if select is not None
            else frozenset(_as_str_tuple(table.get("select", []), "select"))
        ),
        ignore=(
            ignore
            if ignore is not None
            else frozenset(_as_str_tuple(table.get("ignore", []), "ignore"))
        ),
        exclude=_as_str_tuple(table.get("exclude", defaults.exclude), "exclude"),
        rng_modules=_as_str_tuple(
            table.get("rng_modules", defaults.rng_modules), "rng_modules"
        ),
        wallclock_exempt=_as_str_tuple(
            table.get("wallclock_exempt", defaults.wallclock_exempt),
            "wallclock_exempt",
        ),
    )
