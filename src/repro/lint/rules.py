"""Rule protocol, per-file context, and the rule registry.

A rule is a small object with a ``code``, a one-line ``summary``, and a
``check`` method mapping a parsed file to diagnostics.  Rules register
themselves via :func:`register_rule`, so adding a rule in a later PR is
one decorated class in one file — the engine, CLI, select/ignore
filtering, and pragma handling all pick it up automatically.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable, Iterator, Protocol, TypeVar, runtime_checkable

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.index import ProjectIndex

__all__ = [
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "register_rule",
    "registered_rules",
    "rule_codes",
]

_CODE_RE = re.compile(r"^SIM\d{3}$")


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one source file.

    ``posix_path`` is the lint-relative path with ``/`` separators, the
    form all glob/suffix matching uses so results are OS-independent.
    """

    path: str
    tree: ast.Module
    source: str
    config: LintConfig
    lines: tuple[str, ...] = field(default=())

    @property
    def posix_path(self) -> str:
        return str(PurePosixPath(*self.path.replace("\\", "/").split("/")))

    def matches_any(self, patterns: Iterable[str]) -> bool:
        """True if the file path matches any glob in ``patterns``."""
        path = self.posix_path
        return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)

    def has_path_suffix(self, suffixes: Iterable[str]) -> bool:
        """True if the file path ends with any of ``suffixes`` (path-wise)."""
        parts = PurePosixPath(self.posix_path).parts
        for suffix in suffixes:
            want = PurePosixPath(suffix).parts
            if len(want) <= len(parts) and parts[len(parts) - len(want) :] == want:
                return True
        return False


@dataclass
class ProjectContext:
    """Everything a project rule may inspect: the phase-1 index plus
    every successfully parsed file's :class:`FileContext`, keyed by the
    path string the index uses."""

    index: ProjectIndex
    config: LintConfig
    files: dict[str, FileContext] = field(default_factory=dict)


@runtime_checkable
class Rule(Protocol):
    """The contract every per-file simlint rule satisfies."""

    code: str
    summary: str

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for ``ctx``; must not mutate it."""
        ...  # pragma: no cover - protocol body


@runtime_checkable
class ProjectRule(Protocol):
    """A semantic rule running once over the whole project index.

    Project rules see cross-module structure (call graph, symbol
    table); per-file rules see one tree.  A class satisfies exactly one
    of the two protocols — ``check`` or ``check_project``.
    """

    code: str
    summary: str

    def check_project(self, ctx: ProjectContext) -> Iterator[Diagnostic]:
        """Yield diagnostics over the indexed project; must not mutate it."""
        ...  # pragma: no cover - protocol body


_REGISTRY: dict[str, Rule | ProjectRule] = {}

R = TypeVar("R")


def register_rule(cls: type[R]) -> type[R]:
    """Class decorator: instantiate and register a rule by its code.

    Accepts per-file rules (``check``) and project rules
    (``check_project``).  Raises on duplicate or malformed codes so a
    bad plug-in rule fails loudly at import time rather than being
    silently skipped.
    """
    instance = cls()
    if not isinstance(instance, (Rule, ProjectRule)):
        raise TypeError(f"{cls.__name__} does not satisfy the Rule protocol")
    if not _CODE_RE.match(instance.code):
        raise ValueError(f"{cls.__name__}.code must look like 'SIM001', got {instance.code!r}")
    if instance.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    _REGISTRY[instance.code] = instance
    return cls


def registered_rules() -> dict[str, Rule | ProjectRule]:
    """A copy of the registry, keyed and ordered by rule code."""
    return dict(sorted(_REGISTRY.items()))


def rule_codes() -> tuple[str, ...]:
    """All registered rule codes, sorted."""
    return tuple(sorted(_REGISTRY))
