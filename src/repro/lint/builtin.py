"""The built-in simlint rules (SIM001-SIM008).

These encode the invariants the reproduction's statistical claims rest
on — chiefly the seed-determinism discipline of
:mod:`repro.utils.rng` — plus a few classic Python footguns that have
outsized blast radius in long-running simulations.  Each rule is one
registered class; see docs/static-analysis.md for the rationale and
the recipe for adding new rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.index import dotted_name, import_aliases, resolve_alias, tree_nodes
from repro.lint.rules import FileContext, register_rule

__all__ = [
    "RngDisciplineRule",
    "WallClockRule",
    "MutableDefaultRule",
    "OverbroadExceptRule",
    "DunderAllRule",
    "FloatEqualityRule",
    "SeedParameterRule",
    "PrintDisciplineRule",
]

# Shared syntactic helpers live in repro.lint.index (the phase-1 symbol
# table uses the same resolution); these names keep the rule bodies
# readable.
_dotted_name = dotted_name
_import_aliases = import_aliases
_resolve = resolve_alias


def _diag(ctx: FileContext, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        code=code,
        message=message,
    )


@register_rule
class RngDisciplineRule:
    """SIM001 — all randomness flows through ``repro.utils.rng``.

    Outside the blessed RNG module, flags (a) any import of the stdlib
    :mod:`random` module, (b) any import from :mod:`numpy.random`, and
    (c) any *call* into ``numpy.random`` (``default_rng``, ``seed``,
    legacy distributions like ``np.random.choice``).  Type annotations
    such as ``np.random.Generator`` are attribute reads, not calls, and
    are untouched.
    """

    code = "SIM001"
    summary = "randomness must flow through repro.utils.rng (make_rng/spawn/derive)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.has_path_suffix(ctx.config.rng_modules):
            return
        aliases = _import_aliases(ctx.tree)
        for node in tree_nodes(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        yield _diag(
                            ctx, node, self.code,
                            "stdlib 'random' is not seed-disciplined; "
                            "use repro.utils.rng.make_rng and pass the Generator",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                top = node.module.split(".")[0]
                if top == "random":
                    yield _diag(
                        ctx, node, self.code,
                        "stdlib 'random' is not seed-disciplined; "
                        "use repro.utils.rng.make_rng and pass the Generator",
                    )
                elif node.module == "numpy.random" or node.module.startswith(
                    "numpy.random."
                ):
                    yield _diag(
                        ctx, node, self.code,
                        "import RNG constructors only inside repro.utils.rng; "
                        "elsewhere accept an rng: np.random.Generator parameter",
                    )
            elif isinstance(node, ast.Call):
                chain = _dotted_name(node.func)
                if chain is None:
                    continue
                resolved = _resolve(chain, aliases)
                if resolved.startswith("numpy.random.") or resolved.startswith(
                    "random."
                ):
                    yield _diag(
                        ctx, node, self.code,
                        f"direct call to {resolved}() bypasses the seed tree; "
                        "use make_rng/spawn/derive or a passed-in Generator",
                    )


@register_rule
class WallClockRule:
    """SIM002 — no wall-clock reads inside simulation code.

    Simulated time must come from the event loop / trace timestamps;
    a wall-clock read makes results depend on host speed and run date.
    Benchmark harnesses (which *measure* wall time) are exempted via
    ``wallclock_exempt`` globs.
    """

    code = "SIM002"
    summary = "no wall-clock (time.time / perf_counter / datetime.now) in simulation code"

    _TIME_FUNCS = frozenset(
        {
            "time", "time_ns", "perf_counter", "perf_counter_ns",
            "monotonic", "monotonic_ns", "process_time", "process_time_ns",
            "clock_gettime", "clock_gettime_ns",
        }
    )
    _DATETIME_CALLS = frozenset(
        {
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.matches_any(ctx.config.wallclock_exempt):
            return
        aliases = _import_aliases(ctx.tree)
        for node in tree_nodes(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_name(node.func)
            if chain is None:
                continue
            resolved = _resolve(chain, aliases)
            module, _, func = resolved.rpartition(".")
            if (module == "time" and func in self._TIME_FUNCS) or (
                resolved in self._DATETIME_CALLS
            ):
                yield _diag(
                    ctx, node, self.code,
                    f"wall-clock read {resolved}() makes simulation output "
                    "host/run-time dependent; use simulated time",
                )


@register_rule
class MutableDefaultRule:
    """SIM003 — no mutable default arguments.

    A shared default list/dict/set mutated across calls is
    order-dependent hidden state — precisely what seed-reproducible
    experiments cannot tolerate.
    """

    code = "SIM003"
    summary = "no mutable default arguments"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
         "OrderedDict"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = _dotted_name(node.func)
            return chain is not None and chain.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in tree_nodes(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield _diag(
                        ctx, default, self.code,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )


@register_rule
class OverbroadExceptRule:
    """SIM004 — no bare or overbroad exception handlers.

    ``except:`` / ``except BaseException:`` swallow KeyboardInterrupt
    and SystemExit; ``except Exception:`` hides simulation bugs as
    silently-degraded statistics.  Catching ``Exception`` is allowed
    only when the handler re-raises (wrap-and-raise is legitimate).
    """

    code = "SIM004"
    summary = "no bare/overbroad except clauses"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in tree_nodes(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield _diag(
                    ctx, node, self.code,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch the specific exception",
                )
                continue
            name = _dotted_name(node.type)
            if name == "BaseException":
                yield _diag(
                    ctx, node, self.code,
                    "'except BaseException' swallows interpreter exits; "
                    "catch the specific exception",
                )
            elif name == "Exception" and not any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                yield _diag(
                    ctx, node, self.code,
                    "'except Exception' without re-raise hides simulation "
                    "bugs; catch the specific exception or re-raise",
                )


@register_rule
class DunderAllRule:
    """SIM005 — ``__all__`` export hygiene.

    Every public module (stem not starting with ``_``) must declare a
    literal ``__all__``, and every listed name must be bound at module
    level.  Stale exports break ``from repro.x import *`` and mislead
    readers about the public surface.
    """

    code = "SIM005"
    summary = "public modules declare __all__ and every listed name exists"

    def _module_bindings(self, tree: ast.Module) -> tuple[set[str], bool]:
        """All module-level names, plus whether a star import was seen."""
        names: set[str] = set()
        has_star = False

        def visit_body(body: list[ast.stmt]) -> None:
            nonlocal has_star
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    names.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        names.update(_target_names(target))
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    names.update(_target_names(stmt.target))
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        names.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        if alias.name == "*":
                            has_star = True
                        else:
                            names.add(alias.asname or alias.name)
                elif isinstance(stmt, (ast.If, ast.Try)):
                    visit_body(stmt.body)
                    for handler in getattr(stmt, "handlers", []):
                        visit_body(handler.body)
                    visit_body(stmt.orelse)
                    visit_body(getattr(stmt, "finalbody", []))
                elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                    if isinstance(stmt, ast.For):
                        names.update(_target_names(stmt.target))
                    if isinstance(stmt, ast.With):
                        for item in stmt.items:
                            if item.optional_vars is not None:
                                names.update(_target_names(item.optional_vars))
                    visit_body(stmt.body)
                    visit_body(getattr(stmt, "orelse", []))

        visit_body(tree.body)
        return names, has_star

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        stem = ctx.posix_path.rsplit("/", 1)[-1].removesuffix(".py")
        if stem.startswith("_") and stem != "__init__":
            return
        export_node: ast.expr | None = None
        assign: ast.stmt | None = None
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                export_node, assign = stmt.value, stmt
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
                and stmt.value is not None
            ):
                export_node, assign = stmt.value, stmt
        if export_node is None:
            yield _diag(
                ctx, ctx.tree, self.code,
                "public module does not declare __all__",
            )
            return
        if not isinstance(export_node, (ast.List, ast.Tuple)) or not all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in export_node.elts
        ):
            yield _diag(
                ctx, assign or ctx.tree, self.code,
                "__all__ must be a literal list/tuple of strings",
            )
            return
        bindings, has_star = self._module_bindings(ctx.tree)
        if has_star:
            return  # star import: cannot prove a name missing
        for element in export_node.elts:
            assert isinstance(element, ast.Constant)
            if element.value not in bindings:
                yield _diag(
                    ctx, element, self.code,
                    f"__all__ lists {element.value!r} but the module never "
                    "defines it",
                )


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by an assignment target (unpacking included)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


@register_rule
class FloatEqualityRule:
    """SIM006 — no ``==``/``!=`` against float literals.

    Probabilities, rates and thresholds accumulate rounding error;
    exact comparison against ``0.3`` silently never fires.  Use
    ``math.isclose`` / ``np.isclose`` or an inequality.
    """

    code = "SIM006"
    summary = "no ==/!= comparison with float literals"

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in tree_nodes(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield _diag(
                        ctx, node, self.code,
                        "==/!= against a float literal is rounding-fragile; "
                        "use math.isclose/np.isclose or an inequality",
                    )
                    break


@register_rule
class SeedParameterRule:
    """SIM007 — public functions that consume randomness must expose it.

    If a public module- or class-level function draws randomness (calls
    ``make_rng``/``spawn``/``derive`` or methods on an ``rng`` object),
    its seed must be caller-controlled: the generator/seed must arrive
    through a parameter (``rng=...``, ``seed=...``, or a config object
    like ``derive(cfg.seed, ...)``) or through ``self``/``cls`` state
    injected at construction.  Parameters named ``seed``/``rng``/
    ``rngs`` must additionally carry a type annotation.  Nested helper
    functions are implementation details and exempt.
    """

    code = "SIM007"
    summary = "public randomness-consuming functions take an annotated seed/rng param"

    _CONSTRUCTORS = frozenset({"make_rng", "spawn", "derive"})
    _RNG_NAMES = frozenset({"rng", "rngs", "_rng", "_rngs"})
    _PARAM_NAMES = frozenset({"seed", "rng", "rngs"})

    def _api_functions(
        self, tree: ast.Module
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Module-level functions and methods — the public API surface."""
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield stmt
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield sub

    def _own_nodes(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.AST]:
        """Walk the function body, not descending into nested defs."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _root(node: ast.expr) -> str | None:
        chain = _dotted_name(node)
        return chain.split(".")[0] if chain else None

    def _propagate_locals(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        sourced_roots: set[str],
    ) -> None:
        """Cheap local dataflow: ``cfg = config or Config()`` makes the
        local ``cfg`` caller-sourced when any name in the right-hand
        side is.  Fixed point over simple single-target assignments.
        """
        assignments: list[tuple[str, ast.expr]] = []
        for node in self._own_nodes(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                assignments.append((node.targets[0].id, node.value))
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                assignments.append((node.target.id, node.value))
        changed = True
        while changed:
            changed = False
            for name, value in assignments:
                if name in sourced_roots:
                    continue
                value_roots = {
                    n.id for n in ast.walk(value) if isinstance(n, ast.Name)
                }
                if value_roots & sourced_roots:
                    sourced_roots.add(name)
                    changed = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.has_path_suffix(ctx.config.rng_modules):
            return
        for func in self._api_functions(ctx.tree):
            if func.name.startswith("_"):
                continue
            params = (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
            param_names = {p.arg for p in params}
            sourced_roots = param_names | {"self", "cls"}
            self._propagate_locals(func, sourced_roots)

            has_ctor = False
            ctor_ok = True  # every constructor call is caller/self-seeded
            use_roots: set[str] = set()
            for node in self._own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                chain = _dotted_name(node.func)
                if chain is None:
                    continue
                # Constructor evidence only for bare names (the repo
                # imports make_rng/spawn/derive directly); attribute
                # calls like seq.spawn(n) are SeedSequence methods.
                if "." not in chain and chain in self._CONSTRUCTORS:
                    has_ctor = True
                    args: list[ast.expr] = list(node.args) + [
                        kw.value for kw in node.keywords
                    ]
                    # Stream keys (string/int constants) are neutral;
                    # the seed itself must come from a param or self.
                    if not any(
                        self._root(arg) in sourced_roots for arg in args
                    ):
                        ctor_ok = False
                elif isinstance(node.func, ast.Attribute):
                    obj_chain = _dotted_name(node.func.value)
                    if obj_chain is not None and (
                        obj_chain.split(".")[-1] in self._RNG_NAMES
                    ):
                        use_roots.add(obj_chain.split(".")[0])
            if not has_ctor and not use_roots:
                continue  # no randomness consumed

            for param in params:
                if param.arg in self._PARAM_NAMES and param.annotation is None:
                    yield _diag(
                        ctx, param, self.code,
                        f"parameter {param.arg!r} of {func.name}() needs a "
                        "type annotation (int seed or np.random.Generator)",
                    )

            if has_ctor:
                # A local rng built in-function inherits the
                # constructor's provenance.
                caller_controlled = ctor_ok
            else:
                caller_controlled = use_roots <= sourced_roots
            if not caller_controlled and not (param_names & self._PARAM_NAMES):
                yield _diag(
                    ctx, func, self.code,
                    f"public function {func.name}() consumes randomness but "
                    "has no seed/rng parameter; determinism must be "
                    "caller-controlled",
                )


@register_rule
class PrintDisciplineRule:
    """SIM008 — library code logs; only CLI/reporting modules print.

    stdout is command output: tables, CSV, JSON that scripts pipe
    elsewhere.  A ``print()`` buried in a library module corrupts that
    stream and is invisible to log-level control, so diagnostics must
    go through :mod:`repro.obs.log` instead.  Modules whose *job* is
    console output (the ``print_allowed`` globs — CLI entry points and
    the reporting helpers) are exempt, as are explicit
    ``print(..., file=sys.stderr)`` calls, which already stay off
    stdout.
    """

    code = "SIM008"
    summary = "bare print() outside CLI/reporting modules; use repro.obs.log"

    @staticmethod
    def _prints_to_stderr(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "file":
                chain = _dotted_name(kw.value)
                return chain != "sys.stdout"
        return False

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.matches_any(ctx.config.print_allowed):
            return
        for node in tree_nodes(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and not self._prints_to_stderr(node)
            ):
                yield _diag(
                    ctx, node, self.code,
                    "bare print() writes diagnostics to stdout, which is "
                    "reserved for command output; use "
                    "repro.obs.log.get_logger(__name__) instead",
                )
