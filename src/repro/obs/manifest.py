"""Metrics run manifests: the ``--metrics <out.json>`` document.

Mirrors the run-manifest shape of :func:`repro.core.export.export_all`
(a flat JSON object with identifying scalars at the top) and adds the
observability payload: the metrics-registry snapshot and the span
trace.  Schema::

    {
      "schema": "repro-metrics/1",
      "command": "fig",            # repro subcommand that ran
      "argv": ["fig", "8", ...],   # CLI argv after the program name
      "seed": 0,                   # present when the command takes one
      "exit_code": 0,
      "metrics": {
        "counters": {"flood.messages": 123, ...},
        "gauges":   {"pmap.workers": 2.0, ...},
        "timers":   {"cli.command": {"count": 1, "total_s": ...,
                      "min_s": ..., "max_s": ..., "mean_s": ...}, ...}
      },
      "spans": [{"name": ..., "duration_s": ..., "depth": ...}, ...]
    }

:func:`validate_manifest` is the schema check used by tests and by
``repro stats`` when reading a manifest back.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsSnapshot
from repro.obs.trace import SpanRecord

__all__ = [
    "SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]

SCHEMA = "repro-metrics/1"


def build_manifest(
    *,
    command: str,
    argv: list[str],
    snapshot: MetricsSnapshot,
    spans: list[SpanRecord],
    exit_code: int = 0,
    seed: int | None = None,
) -> dict:
    """Assemble the manifest document for one CLI run."""
    doc: dict = {
        "schema": SCHEMA,
        "command": command,
        "argv": list(argv),
        "exit_code": exit_code,
    }
    if seed is not None:
        doc["seed"] = seed
    doc["metrics"] = snapshot.as_dict()
    doc["spans"] = [s.as_dict() for s in spans]
    return doc


def write_manifest(path: str | Path, doc: dict) -> Path:
    """Write a manifest to ``path`` (parents created as needed)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return out


def load_manifest(path: str | Path) -> dict:
    """Read and validate a manifest; raises ``ValueError`` when invalid."""
    doc = json.loads(Path(path).read_text())
    problems = validate_manifest(doc)
    if problems:
        raise ValueError(
            f"{path}: not a valid {SCHEMA} manifest: " + "; ".join(problems)
        )
    return doc


def validate_manifest(doc: object) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("command"), str):
        problems.append("command must be a string")
    if not isinstance(doc.get("argv"), list):
        problems.append("argv must be a list")
    if not isinstance(doc.get("exit_code"), int):
        problems.append("exit_code must be an integer")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        counters = metrics.get("counters")
        if not isinstance(counters, dict) or not all(
            isinstance(v, int) for v in counters.values()
        ):
            problems.append("metrics.counters must map names to integers")
        gauges = metrics.get("gauges")
        if not isinstance(gauges, dict) or not all(
            isinstance(v, (int, float)) for v in gauges.values()
        ):
            problems.append("metrics.gauges must map names to numbers")
        timers = metrics.get("timers")
        if not isinstance(timers, dict):
            problems.append("metrics.timers must be an object")
        else:
            for name, timer in timers.items():
                if not isinstance(timer, dict) or not {
                    "count",
                    "total_s",
                    "min_s",
                    "max_s",
                }.issubset(timer):
                    problems.append(f"metrics.timers[{name!r}] missing stats")

    spans = doc.get("spans")
    if not isinstance(spans, list):
        problems.append("spans must be a list")
    else:
        for i, record in enumerate(spans):
            if not isinstance(record, dict) or not {
                "name",
                "duration_s",
                "depth",
            }.issubset(record):
                problems.append(f"spans[{i}] missing name/duration_s/depth")
    return problems
