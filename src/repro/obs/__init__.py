"""Observability: metrics registry, span tracing, structured logging.

Everything in this package is *observational only* — it records what a
run did (counters, durations, stage spans, log lines) without ever
feeding back into simulation results, RNG streams, or artifact-cache
keys.  simlint knows this package by name (``obs-modules`` in
``[tool.simlint]``) and excludes it from SIM013 cache-purity
reachability; the flip side of that trust is the hard rule that no
value produced here may influence a cached computation.

Public surface:

* :func:`metrics` — the process-local :class:`MetricsRegistry`
  (counters / gauges / timers / latency histograms).
* :func:`span` — context manager tracing one pipeline stage.
* :func:`get_logger` / :func:`log_event` — stderr logging for library
  modules (stdout is reserved for command output; SIM008 enforces it).
* :mod:`repro.obs.manifest` — the ``--metrics`` JSON document.
"""

from repro.obs.log import get_logger, log_event
from repro.obs.manifest import (
    SCHEMA,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
    TimerSnapshot,
    metrics,
)
from repro.obs.trace import SpanRecord, completed_spans, reset_spans, span

__all__ = [
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Timer",
    "TimerSnapshot",
    "metrics",
    "SpanRecord",
    "span",
    "completed_spans",
    "reset_spans",
    "get_logger",
    "log_event",
    "SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]
