"""Span-style stage tracing for pipeline runs.

A *span* brackets one named stage of a run — "fig8.topology",
"fig8.flood", "export" — and records its wall-clock duration plus its
nesting depth, giving a flat, ordered trace of where a command spent
its time.  The trace is process-local and observational only (same
contract as :mod:`repro.obs.metrics`): spans never influence RNG
streams, cache keys, or produced values.

Usage::

    from repro.obs import span

    with span("fig8.flood", ttl=7):
        run_flood(...)

Completed spans are collected by :func:`completed_spans` and embedded
in the ``--metrics`` manifest (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SpanRecord", "span", "completed_spans", "reset_spans"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished stage: name, duration, nesting depth, attributes."""

    name: str
    duration_s: float
    depth: int
    attrs: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        doc: dict[str, object] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "depth": self.depth,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


_COMPLETED: list[SpanRecord] = []
_DEPTH = [0]  # single-element list so the nesting level survives reassignment


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time the enclosed block as stage ``name``.

    Keyword arguments become span attributes (must be JSON-friendly —
    they land verbatim in the metrics manifest).  Spans nest; depth is
    recorded so a reader can reconstruct the stage tree from the flat
    list.  The record is appended on exit even when the body raises,
    so partial runs still show where time went.
    """
    depth = _DEPTH[0]
    _DEPTH[0] = depth + 1
    start = time.perf_counter()
    try:
        yield
    finally:
        _DEPTH[0] = depth
        _COMPLETED.append(
            SpanRecord(
                name=name,
                duration_s=time.perf_counter() - start,
                depth=depth,
                attrs=dict(attrs),
            )
        )


def completed_spans() -> list[SpanRecord]:
    """All spans finished so far, in completion order."""
    return list(_COMPLETED)


def reset_spans() -> None:
    """Drop the collected trace (tests isolate themselves with this)."""
    _COMPLETED.clear()
    _DEPTH[0] = 0
