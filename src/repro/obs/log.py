"""Structured logging for library modules.

Library code must log, not ``print()``: stdout belongs to command
output (tables, CSV, JSON that scripts pipe elsewhere), so diagnostics
go to stderr through the standard :mod:`logging` machinery.  simlint
rule SIM008 enforces the split — bare ``print()`` calls are rejected
outside the CLI/reporting modules.

Conventions:

* Get a logger with ``log = get_logger(__name__)`` at module scope.
* Default level is WARNING; set ``REPRO_LOG=debug|info|warning|error``
  to change it for a run.  The variable is read once, at first logger
  creation.
* For machine-greppable events use :func:`log_event`, which formats
  ``key=value`` pairs deterministically (sorted keys)::

      log_event(log, "cache.corrupt", path=str(entry), error=exc)
      # -> "cache.corrupt error=... path=..."
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "log_event"]

_ROOT_NAME = "repro"
_CONFIGURED = False

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _LazyStderrHandler(logging.StreamHandler):
    """Stream handler that resolves ``sys.stderr`` at emit time.

    Binding the stream lazily means redirections of ``sys.stderr``
    (contextlib.redirect_stderr, test harness capture) see the log
    output, instead of it escaping to the stream that existed when the
    first logger was created.
    """

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # pragma: no cover - API compat
        pass


def _configure_root() -> None:
    """Attach one stderr handler to the ``repro`` root logger, once."""
    global _CONFIGURED
    if _CONFIGURED:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = _LazyStderrHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    level_name = os.environ.get("REPRO_LOG", "").strip().lower()
    root.setLevel(_LEVELS.get(level_name, logging.WARNING))
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy with the shared handler.

    ``name`` is normally ``__name__``; dotted names outside the
    ``repro`` prefix are nested under it so every library logger
    shares the one stderr handler and the ``REPRO_LOG`` level.
    """
    _configure_root()
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def log_event(
    log: logging.Logger,
    event: str,
    *,
    level: int = logging.WARNING,
    **fields: object,
) -> None:
    """Log ``event`` with deterministic ``key=value`` structured fields."""
    if not log.isEnabledFor(level):
        return
    parts = [event]
    parts.extend(f"{key}={fields[key]!r}" for key in sorted(fields))
    log.log(level, " ".join(parts))
