"""Process-local metrics registry: counters, gauges, and timers.

Instrumentation for the runtime/overlay hot paths — flood BFS counts,
cache hit rates, ``pmap`` fan-out cost — collected into one in-process
:class:`MetricsRegistry` and surfaced as a run manifest (see
:mod:`repro.obs.manifest`) or the ``repro stats`` CLI.

Design constraints, in force everywhere this module is used:

* **Observational only.**  Nothing recorded here may flow back into a
  simulation result, an RNG stream, or an artifact-cache key: a run
  with instrumentation produces bitwise-identical outputs to one
  without.  Counters and gauges are plain dict updates; only
  :meth:`MetricsRegistry.timer` reads the monotonic clock, and timer
  calls stay *out* of cached producers (simlint SIM013 treats
  ``repro.obs`` as trusted-observational, but the wall clock must
  still never shape a cached value).
* **Process-local.**  Each worker process accumulates into its own
  registry; :func:`repro.runtime.parallel.pmap` snapshots the
  per-task delta worker-side and merges it back into the
  coordinator's registry, so parallel runs report the same totals a
  serial run would.
* **Cheap.**  A counter increment is one dict ``get``/store — safe in
  per-call (not per-element) positions of kernels like
  ``flood_depths``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Timer",
    "TimerSnapshot",
    "metrics",
]


@dataclass(frozen=True)
class TimerSnapshot:
    """Immutable summary of one timer: count plus duration statistics."""

    count: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean duration per observation (0 when never observed)."""
        return self.total_s / self.count if self.count else 0.0

    def merged(self, other: "TimerSnapshot") -> "TimerSnapshot":
        """Combine two summaries of disjoint observation sets."""
        if not other.count:
            return self
        if not self.count:
            return other
        return TimerSnapshot(
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Picklable point-in-time copy of a registry (or a delta of one).

    ``pmap`` workers ship these across the process boundary; the
    coordinator folds them back in via :meth:`MetricsRegistry.merge`.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, TimerSnapshot] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--metrics`` manifest embeds this)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {
                    "count": t.count,
                    "total_s": t.total_s,
                    "min_s": t.min_s,
                    "max_s": t.max_s,
                    "mean_s": t.mean_s,
                }
                for name, t in sorted(self.timers.items())
            },
        }


class Timer:
    """Context manager recording one duration into a registry timer.

    The only place in :mod:`repro.obs.metrics` that reads the clock;
    uses :func:`time.perf_counter` (monotonic), so recorded durations
    are immune to wall-clock adjustments.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class MetricsRegistry:
    """Mutable process-local store of counters, gauges, and timers.

    Not thread-synchronized: increments are single dict operations
    (atomic under the GIL), which is sufficient for the counting done
    here; exact cross-thread timer interleavings are not a guarantee.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerSnapshot] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the latest ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one externally-measured duration into timer ``name``."""
        sample = TimerSnapshot(
            count=1, total_s=seconds, min_s=seconds, max_s=seconds
        )
        current = self._timers.get(name)
        self._timers[name] = sample if current is None else current.merged(sample)

    def timer(self, name: str) -> Timer:
        """A context manager timing its body into timer ``name``."""
        return Timer(self, name)

    # -- reading / combining ------------------------------------------

    def counter(self, name: str) -> int:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """A frozen copy of the current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            timers=dict(self._timers),
        )

    def delta_since(self, before: MetricsSnapshot) -> MetricsSnapshot:
        """What changed since ``before`` (worker-side per-task deltas).

        Counters subtract; timers subtract count/total and keep the
        current min/max (a per-task delta's extremes are dominated by
        the task's own observations); gauges report their latest value.
        """
        counters = {
            name: value - before.counters.get(name, 0)
            for name, value in self._counters.items()
            if value != before.counters.get(name, 0)
        }
        timers: dict[str, TimerSnapshot] = {}
        for name, now in self._timers.items():
            prior = before.timers.get(name)
            count = now.count - (prior.count if prior else 0)
            if count <= 0:
                continue
            timers[name] = TimerSnapshot(
                count=count,
                total_s=now.total_s - (prior.total_s if prior else 0.0),
                min_s=now.min_s,
                max_s=now.max_s,
            )
        return MetricsSnapshot(
            counters=counters, gauges=dict(self._gauges), timers=timers
        )

    def merge(self, delta: MetricsSnapshot) -> None:
        """Fold a worker-side delta into this registry."""
        for name, value in delta.counters.items():
            self.inc(name, value)
        self._gauges.update(delta.gauges)
        for name, incoming in delta.timers.items():
            current = self._timers.get(name)
            self._timers[name] = (
                incoming if current is None else current.merged(incoming)
            )

    def reset(self) -> None:
        """Drop all recorded state (tests isolate themselves with this)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counters.items()))


#: The process-wide registry every instrumented module records into.
#: Assigned once at import; worker processes (fork or spawn) each get
#: their own instance.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY
