"""Process-local metrics registry: counters, gauges, and timers.

Instrumentation for the runtime/overlay hot paths — flood BFS counts,
cache hit rates, ``pmap`` fan-out cost — collected into one in-process
:class:`MetricsRegistry` and surfaced as a run manifest (see
:mod:`repro.obs.manifest`) or the ``repro stats`` CLI.

Design constraints, in force everywhere this module is used:

* **Observational only.**  Nothing recorded here may flow back into a
  simulation result, an RNG stream, or an artifact-cache key: a run
  with instrumentation produces bitwise-identical outputs to one
  without.  Counters and gauges are plain dict updates; only
  :meth:`MetricsRegistry.timer` reads the monotonic clock, and timer
  calls stay *out* of cached producers (simlint SIM013 treats
  ``repro.obs`` as trusted-observational, but the wall clock must
  still never shape a cached value).
* **Process-local.**  Each worker process accumulates into its own
  registry; :func:`repro.runtime.parallel.pmap` snapshots the
  per-task delta worker-side and merges it back into the
  coordinator's registry, so parallel runs report the same totals a
  serial run would.
* **Cheap.**  A counter increment is one dict ``get``/store — safe in
  per-call (not per-element) positions of kernels like
  ``flood_depths``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Timer",
    "TimerSnapshot",
    "metrics",
]

#: Histogram bucket geometry: bucket ``i`` covers values in
#: ``(_HIST_BASE * _HIST_GROWTH**(i-1), _HIST_BASE * _HIST_GROWTH**i]``
#: with bucket 0 catching everything at or below ``_HIST_BASE``.  The
#: defaults span 10 microseconds to ~90 seconds in 48 buckets at ~1.4x
#: resolution — wide enough for request latencies, cheap enough to
#: ship in every worker delta.
_HIST_BASE = 1e-5
_HIST_GROWTH = 2.0 ** (1.0 / 2.0)
_HIST_BUCKETS = 48


def _bucket_index(value: float) -> int:
    """Bucket index for ``value`` (clamped to the last bucket)."""
    if value <= _HIST_BASE:
        return 0
    i = int(math.ceil(math.log(value / _HIST_BASE) / math.log(_HIST_GROWTH)))
    return min(i, _HIST_BUCKETS - 1)


def _bucket_upper(i: int) -> float:
    """Upper bound of bucket ``i``."""
    return _HIST_BASE * _HIST_GROWTH**i


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable log-bucketed distribution summary.

    Buckets are geometric (fixed base/growth, module-wide), so two
    snapshots merge by adding counts — workers and the coordinator
    never have to agree on anything but this module's constants.
    Quantiles are read from the bucket boundaries, i.e. an estimate
    with one-bucket (~1.4x) resolution, which is what an SLO report
    needs; exact extremes are carried in ``min_v``/``max_v``.
    """

    count: int
    total: float
    min_v: float
    max_v: float
    buckets: tuple[int, ...]

    @staticmethod
    def empty() -> "HistogramSnapshot":
        """A histogram with no observations."""
        return HistogramSnapshot(
            count=0, total=0.0, min_v=0.0, max_v=0.0,
            buckets=(0,) * _HIST_BUCKETS,
        )

    @property
    def mean(self) -> float:
        """Mean observed value (0 when never observed)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (bucket-upper-bound estimate).

        Returns ``nan`` for an empty histogram.  The estimate is
        clamped into ``[min_v, max_v]`` so degenerate distributions
        (all observations in one bucket) report exact values.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                return min(max(_bucket_upper(i), self.min_v), self.max_v)
        return self.max_v  # pragma: no cover - rank <= count always hits

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two summaries of disjoint observation sets."""
        if not other.count:
            return self
        if not self.count:
            return other
        return HistogramSnapshot(
            count=self.count + other.count,
            total=self.total + other.total,
            min_v=min(self.min_v, other.min_v),
            max_v=max(self.max_v, other.max_v),
            buckets=tuple(
                a + b for a, b in zip(self.buckets, other.buckets)
            ),
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (quantiles, not raw buckets)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min_v,
            "max": self.max_v,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


@dataclass(frozen=True)
class TimerSnapshot:
    """Immutable summary of one timer: count plus duration statistics."""

    count: int
    total_s: float
    min_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean duration per observation (0 when never observed)."""
        return self.total_s / self.count if self.count else 0.0

    def merged(self, other: "TimerSnapshot") -> "TimerSnapshot":
        """Combine two summaries of disjoint observation sets."""
        if not other.count:
            return self
        if not self.count:
            return other
        return TimerSnapshot(
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Picklable point-in-time copy of a registry (or a delta of one).

    ``pmap`` workers ship these across the process boundary; the
    coordinator folds them back in via :meth:`MetricsRegistry.merge`.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    timers: dict[str, TimerSnapshot] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        """Counter value (0 when never incremented)."""
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> HistogramSnapshot:
        """Histogram summary (empty when never observed)."""
        return self.histograms.get(name, HistogramSnapshot.empty())

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--metrics`` manifest embeds this)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {
                name: {
                    "count": t.count,
                    "total_s": t.total_s,
                    "min_s": t.min_s,
                    "max_s": t.max_s,
                    "mean_s": t.mean_s,
                }
                for name, t in sorted(self.timers.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(self.histograms.items())
            },
        }


class Timer:
    """Context manager recording one duration into a registry timer.

    The only place in :mod:`repro.obs.metrics` that reads the clock;
    uses :func:`time.perf_counter` (monotonic), so recorded durations
    are immune to wall-clock adjustments.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class _HistAccumulator:
    """Mutable registry-side histogram (snapshots freeze to transport)."""

    __slots__ = ("count", "total", "min_v", "max_v", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min_v = 0.0
        self.max_v = 0.0
        self.buckets = [0] * _HIST_BUCKETS

    def add(self, value: float) -> None:
        value = float(value)
        if not self.count:
            self.min_v = self.max_v = value
        elif value < self.min_v:
            self.min_v = value
        elif value > self.max_v:
            self.max_v = value
        self.count += 1
        self.total += value
        self.buckets[_bucket_index(value)] += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            count=self.count,
            total=self.total,
            min_v=self.min_v,
            max_v=self.max_v,
            buckets=tuple(self.buckets),
        )


class MetricsRegistry:
    """Mutable process-local store of counters, gauges, and timers.

    Not thread-synchronized: increments are single dict operations
    (atomic under the GIL), which is sufficient for the counting done
    here; exact cross-thread timer interleavings are not a guarantee.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerSnapshot] = {}
        self._hists: dict[str, _HistAccumulator] = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the latest ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one externally-measured duration into timer ``name``."""
        sample = TimerSnapshot(
            count=1, total_s=seconds, min_s=seconds, max_s=seconds
        )
        current = self._timers.get(name)
        self._timers[name] = sample if current is None else current.merged(sample)

    def timer(self, name: str) -> Timer:
        """A context manager timing its body into timer ``name``."""
        return Timer(self, name)

    def observe_hist(self, name: str, value: float) -> None:
        """Record one value into histogram ``name``.

        One dict lookup plus a few scalar updates — cheap enough for a
        per-request position (still not per-element of a kernel).
        """
        acc = self._hists.get(name)
        if acc is None:
            acc = _HistAccumulator()
            self._hists[name] = acc
        acc.add(value)

    def histogram(self, name: str) -> HistogramSnapshot:
        """Current histogram summary (empty when never observed)."""
        acc = self._hists.get(name)
        return acc.snapshot() if acc is not None else HistogramSnapshot.empty()

    # -- reading / combining ------------------------------------------

    def counter(self, name: str) -> int:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """A frozen copy of the current state."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            timers=dict(self._timers),
            histograms={
                name: acc.snapshot() for name, acc in self._hists.items()
            },
        )

    def delta_since(self, before: MetricsSnapshot) -> MetricsSnapshot:
        """What changed since ``before`` (worker-side per-task deltas).

        Counters subtract; timers subtract count/total and keep the
        current min/max (a per-task delta's extremes are dominated by
        the task's own observations); histograms subtract per-bucket
        counts the same way; gauges report their latest value.
        """
        counters = {
            name: value - before.counters.get(name, 0)
            for name, value in self._counters.items()
            if value != before.counters.get(name, 0)
        }
        timers: dict[str, TimerSnapshot] = {}
        for name, now in self._timers.items():
            prior = before.timers.get(name)
            count = now.count - (prior.count if prior else 0)
            if count <= 0:
                continue
            timers[name] = TimerSnapshot(
                count=count,
                total_s=now.total_s - (prior.total_s if prior else 0.0),
                min_s=now.min_s,
                max_s=now.max_s,
            )
        histograms: dict[str, HistogramSnapshot] = {}
        for name, acc in self._hists.items():
            now_h = acc.snapshot()
            prior_h = before.histograms.get(name)
            count = now_h.count - (prior_h.count if prior_h else 0)
            if count <= 0:
                continue
            if prior_h is None:
                histograms[name] = now_h
                continue
            histograms[name] = HistogramSnapshot(
                count=count,
                total=now_h.total - prior_h.total,
                min_v=now_h.min_v,
                max_v=now_h.max_v,
                buckets=tuple(
                    a - b for a, b in zip(now_h.buckets, prior_h.buckets)
                ),
            )
        return MetricsSnapshot(
            counters=counters,
            gauges=dict(self._gauges),
            timers=timers,
            histograms=histograms,
        )

    def merge(self, delta: MetricsSnapshot) -> None:
        """Fold a worker-side delta into this registry."""
        for name, value in delta.counters.items():
            self.inc(name, value)
        self._gauges.update(delta.gauges)
        for name, incoming in delta.timers.items():
            current = self._timers.get(name)
            self._timers[name] = (
                incoming if current is None else current.merged(incoming)
            )
        for name, hist in delta.histograms.items():
            acc = self._hists.get(name)
            if acc is None:
                acc = _HistAccumulator()
                self._hists[name] = acc
            merged = acc.snapshot().merged(hist)
            acc.count = merged.count
            acc.total = merged.total
            acc.min_v = merged.min_v
            acc.max_v = merged.max_v
            acc.buckets = list(merged.buckets)

    def reset(self) -> None:
        """Drop all recorded state (tests isolate themselves with this)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._hists.clear()

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counters.items()))


#: The process-wide registry every instrumented module records into.
#: Assigned once at import; worker processes (fork or spawn) each get
#: their own instance.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY
