"""Bloom filters over integer term ids.

The adaptive-synopsis extension (:mod:`repro.core.synopsis`, after the
authors' INFOCOM'08 follow-up) summarizes each peer's term set in a
compact synopsis that neighbors can consult before forwarding a query.
We implement the classic Bloom filter with ``k`` double-hashed probe
positions, vectorized so that inserting or testing a million term ids
is a handful of numpy calls.

Term ids are non-negative integers (the lexicon interns strings to
ids), so the hash family is a pair of splitmix64-style integer mixers
rather than a byte-string hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["BloomFilter", "optimal_parameters"]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix(x: np.ndarray, salt: int) -> np.ndarray:
    """splitmix64 finalizer — a cheap, well-distributed 64-bit mixer."""
    z = (x.astype(np.uint64) + np.uint64(salt)) & _MASK64
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
    return z ^ (z >> np.uint64(31))


def optimal_parameters(capacity: int, fp_rate: float) -> tuple[int, int]:
    """Return ``(m_bits, k_hashes)`` for the target capacity and FP rate."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    m = math.ceil(-capacity * math.log(fp_rate) / (math.log(2) ** 2))
    k = max(1, round(m / capacity * math.log(2)))
    return m, k


@dataclass
class BloomFilter:
    """Fixed-size Bloom filter over non-negative integer ids."""

    m_bits: int
    k_hashes: int

    def __post_init__(self) -> None:
        if self.m_bits <= 0:
            raise ValueError(f"m_bits must be positive, got {self.m_bits}")
        if self.k_hashes <= 0:
            raise ValueError(f"k_hashes must be positive, got {self.k_hashes}")
        self._bits = np.zeros(self.m_bits, dtype=bool)
        self._count = 0

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Construct a filter sized for ``capacity`` items at ``fp_rate``."""
        m, k = optimal_parameters(capacity, fp_rate)
        return cls(m, k)

    def _positions(self, ids: np.ndarray) -> np.ndarray:
        """Probe positions, shape ``(len(ids), k)`` — double hashing."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.uint64))
        h1 = _mix(ids, 0x9E3779B97F4A7C15)
        h2 = _mix(ids, 0xD1B54A32D192ED03) | np.uint64(1)  # odd => full cycle
        j = np.arange(self.k_hashes, dtype=np.uint64)
        probes = (h1[:, None] + j[None, :] * h2[:, None]) & _MASK64
        return (probes % np.uint64(self.m_bits)).astype(np.int64)

    def add(self, ids: np.ndarray | int) -> None:
        """Insert one id or an array of ids."""
        pos = self._positions(np.atleast_1d(np.asarray(ids)))
        self._bits[pos.ravel()] = True
        self._count += pos.shape[0]

    def contains(self, ids: np.ndarray | int) -> np.ndarray | bool:
        """Membership test; scalar in, scalar out; array in, bool array out."""
        arr = np.atleast_1d(np.asarray(ids))
        pos = self._positions(arr)
        hits = self._bits[pos].all(axis=1)
        if np.isscalar(ids) or np.asarray(ids).ndim == 0:
            return bool(hits[0])
        return hits

    def __contains__(self, item: int) -> bool:
        return bool(self.contains(int(item)))

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set — drives the realized false-positive rate."""
        return float(self._bits.mean())

    @property
    def approx_fp_rate(self) -> float:
        """Estimated false-positive probability at the current fill."""
        return float(self.fill_ratio**self.k_hashes)

    @property
    def n_inserted(self) -> int:
        """Number of ids inserted (with multiplicity)."""
        return self._count

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._bits[:] = False
        self._count = 0

    def union_update(self, other: "BloomFilter") -> None:
        """In-place union with a filter of identical parameters."""
        if (self.m_bits, self.k_hashes) != (other.m_bits, other.k_hashes):
            raise ValueError("cannot union Bloom filters with different parameters")
        self._bits |= other._bits
        self._count += other._count

    def copy(self) -> "BloomFilter":
        """Deep copy."""
        clone = BloomFilter(self.m_bits, self.k_hashes)
        clone._bits = self._bits.copy()
        clone._count = self._count
        return clone
