"""Small statistical helpers shared by the analysis and core layers."""

from __future__ import annotations

import numpy as np

__all__ = [
    "ccdf",
    "encode_pairs",
    "fraction_at_most",
    "fraction_at_least",
    "gini",
    "bincount_counts",
    "lorenz_curve",
    "ragged_arange",
]


def encode_pairs(
    major: np.ndarray, minor: np.ndarray, n_minor: int, *, what: str = "pairs"
) -> np.ndarray:
    """Checked ``major * n_minor + minor`` pair encoding, always int64.

    The overlay and tracegen layers dedupe ``(a, b)`` pairs by packing
    them into one integer and calling ``np.unique``.  Done naively on
    narrowed int32 inputs the multiply wraps silently; done on int64 it
    still overflows once ``max(major) * n_minor`` crosses 2**63 (a
    10M-peer x 10M-term index gets there).  This helper casts to int64
    first and verifies the largest encodable pair fits, raising
    ``OverflowError`` with the offending sizes instead of corrupting
    the dedup.
    """
    if n_minor <= 0:
        raise ValueError(f"n_minor must be positive, got {n_minor}")
    major = np.asarray(major)
    minor = np.asarray(minor)
    if major.size == 0:
        return np.empty(0, dtype=np.int64)
    top = int(major.max())
    limit = np.iinfo(np.int64).max
    if top > (limit - (n_minor - 1)) // n_minor:
        raise OverflowError(
            f"cannot encode {what}: major id {top} with minor range {n_minor} "
            f"exceeds int64 ({top} * {n_minor} + {n_minor - 1} > {limit}); "
            "dedupe in smaller blocks or use a structured sort"
        )
    return major.astype(np.int64) * np.int64(n_minor) + minor.astype(np.int64)


def ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(l)`` for each ``l`` in ``lengths``.

    Zero-length segments are naturally skipped.  This is the workhorse
    for CSR gather operations throughout the analyses.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if np.any(lengths < 0):
        raise ValueError("segment lengths must be non-negative")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(lengths) - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def ccdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF of ``values``.

    Returns ``(x, p)`` where ``p[i] = P(V >= x[i])`` over the distinct
    sorted values — the standard presentation for heavy-tail plots.
    """
    values = np.asarray(values)
    if values.size == 0:
        return np.array([]), np.array([])
    x, counts = np.unique(values, return_counts=True)
    # P(V >= x) = 1 - P(V < x) = (total - cumulative strictly below) / total
    below = np.concatenate(([0], np.cumsum(counts)[:-1]))
    p = (values.size - below) / values.size
    return x, p


def fraction_at_most(values: np.ndarray, threshold: float) -> float:
    """Fraction of entries with value <= ``threshold``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("fraction of an empty sample is undefined")
    return float(np.count_nonzero(values <= threshold) / values.size)


def fraction_at_least(values: np.ndarray, threshold: float) -> float:
    """Fraction of entries with value >= ``threshold``."""
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("fraction of an empty sample is undefined")
    return float(np.count_nonzero(values >= threshold) / values.size)


def bincount_counts(ids: np.ndarray, minlength: int = 0) -> np.ndarray:
    """Occurrence count per id for a non-negative integer id array."""
    ids = np.asarray(ids)
    if ids.size and ids.min() < 0:
        raise ValueError("ids must be non-negative")
    return np.bincount(ids, minlength=minlength)


def lorenz_curve(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve ``(population share, mass share)`` of ``values``."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return np.array([0.0]), np.array([0.0])
    cum = np.cumsum(values)
    total = cum[-1]
    if total == 0:
        raise ValueError("Lorenz curve undefined for all-zero values")
    x = np.arange(1, values.size + 1) / values.size
    y = cum / total
    return np.concatenate(([0.0], x)), np.concatenate(([0.0], y))


def gini(values: np.ndarray) -> float:
    """Gini coefficient — a one-number skewness summary used in reports."""
    x, y = lorenz_curve(values)
    # Trapezoidal area under the Lorenz curve.
    area = np.trapezoid(y, x)
    return float(1.0 - 2.0 * area)
