"""Deterministic random-number-generator plumbing.

Every stochastic component in :mod:`repro` draws its randomness from a
:class:`numpy.random.Generator`.  Experiments are reproducible from a
single integer seed: the seed is turned into a root ``SeedSequence`` and
child generators are *spawned* for each subsystem, so adding a new
consumer never perturbs the streams of existing ones.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "derive", "as_seed_sequence"]


def as_seed_sequence(seed: int | np.random.SeedSequence | None) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    ``None`` produces a fresh, OS-entropy-backed sequence (useful
    interactively, but experiments should always pass an integer).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def make_rng(seed: int | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Create a PCG64 generator from ``seed``."""
    return np.random.default_rng(as_seed_sequence(seed))


def spawn(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = as_seed_sequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


def derive(seed: int | np.random.SeedSequence | None, *keys: int | str) -> np.random.Generator:
    """Derive a named child generator.

    Unlike :func:`spawn`, the child depends only on ``(seed, keys)`` and
    not on how many other children were requested, which lets distant
    subsystems derive stable streams without central coordination.
    String keys are hashed with a stable (non-salted) scheme.
    """
    entropy: list[int] = []
    for key in keys:
        if isinstance(key, str):
            # Stable 64-bit FNV-1a; hash() is salted per-process and
            # therefore unusable for reproducibility.
            acc = 0xCBF29CE484222325
            for byte in key.encode("utf-8"):
                acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            entropy.append(acc)
        else:
            entropy.append(int(key))
    root = as_seed_sequence(seed)
    child = np.random.SeedSequence(
        entropy=list(np.atleast_1d(root.entropy).tolist()) + entropy,
        spawn_key=root.spawn_key,
    )
    return np.random.default_rng(child)
