"""Vectorized finite-support Zipf (discrete power-law) machinery.

The paper's analyses all revolve around Zipf-like long-tail
distributions of object names, annotation terms and query terms.  This
module provides:

* :class:`ZipfDistribution` — a truncated Zipf over ranks ``1..n`` with
  exponent ``s``, supporting O(log n) inverse-CDF sampling of millions
  of draws at once;
* :func:`fit_exponent_mle` — maximum-likelihood estimation of the
  exponent from observed frequency counts (Clauset/Shalizi/Newman-style
  discrete MLE on finite support);
* :func:`rank_frequency` — rank/frequency curve extraction for plotting
  and goodness-of-fit checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

__all__ = [
    "ZipfDistribution",
    "zipf_weights",
    "fit_exponent_mle",
    "rank_frequency",
    "ks_distance",
]


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Unnormalized Zipf weights ``1/rank**s`` for ranks ``1..n``."""
    if n <= 0:
        raise ValueError(f"support size must be positive, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return ranks**-s


@dataclass(frozen=True)
class ZipfDistribution:
    """Truncated Zipf distribution over ranks ``0..n-1``.

    Rank 0 is the most popular item.  ``s`` may be any non-negative
    real; ``s == 0`` degenerates to the uniform distribution, which is
    handy for the paper's uniform-placement baselines.
    """

    n: int
    s: float
    _cdf: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"support size must be positive, got {self.n}")
        if self.s < 0:
            raise ValueError(f"exponent must be non-negative, got {self.s}")
        weights = zipf_weights(self.n, self.s)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        object.__setattr__(self, "_cdf", cdf)

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank, shape ``(n,)``."""
        out = np.diff(self._cdf, prepend=0.0)
        return out

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` ranks by inverse-CDF binary search.

        Returns an ``int64`` array of ranks in ``[0, n)``.  This is the
        hot path for trace generation: a single ``searchsorted`` over a
        precomputed CDF, no Python-level loop.
        """
        if size < 0:
            raise ValueError(f"sample size must be non-negative, got {size}")
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def expected_count(self, total: int) -> np.ndarray:
        """Expected number of occurrences of each rank in ``total`` draws."""
        return self.pmf * float(total)


def rank_frequency(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(ranks, frequencies)`` sorted by decreasing frequency.

    ``counts`` is any array of per-item occurrence counts; zero-count
    items are dropped.  Ranks are 1-based, matching the paper's log-log
    popularity plots.
    """
    counts = np.asarray(counts)
    positive = counts[counts > 0]
    freq = np.sort(positive)[::-1]
    ranks = np.arange(1, freq.size + 1)
    return ranks, freq


def _neg_loglike(s: float, values: np.ndarray, weights: np.ndarray, n: int) -> float:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    log_norm = np.log(np.sum(ranks**-s))
    return float(weights.sum() * log_norm + s * np.sum(weights * np.log(values)))


def fit_exponent_mle(
    counts: np.ndarray,
    *,
    s_bounds: tuple[float, float] = (0.01, 4.0),
) -> float:
    """MLE of the Zipf exponent from per-item occurrence counts.

    The items are ranked by decreasing count; the likelihood is that of
    drawing each observation's rank from a truncated Zipf on the
    observed support.  Returns the fitted exponent ``s``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size < 2:
        raise ValueError("need at least two items with positive counts to fit")
    freq = np.sort(counts)[::-1]
    ranks = np.arange(1, freq.size + 1, dtype=np.float64)
    result = optimize.minimize_scalar(
        _neg_loglike,
        bounds=s_bounds,
        args=(ranks, freq, freq.size),
        method="bounded",
    )
    if not result.success:  # pragma: no cover - scipy bounded search rarely fails
        raise RuntimeError(f"Zipf MLE failed to converge: {result.message}")
    return float(result.x)


def ks_distance(counts: np.ndarray, s: float) -> float:
    """Kolmogorov–Smirnov distance between observed rank CDF and Zipf(s).

    Used as a cheap goodness-of-fit check in tests: a good fit on a
    genuinely Zipf sample keeps this well under ~0.1.
    """
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts > 0]
    freq = np.sort(counts)[::-1]
    emp_cdf = np.cumsum(freq) / freq.sum()
    model = ZipfDistribution(freq.size, s)
    model_cdf = np.cumsum(model.pmf)
    return float(np.max(np.abs(emp_cdf - model_cdf)))
