"""Narrow element dtypes shared across the overlay and tracegen layers.

``INDEX_DTYPE`` is the element type for node / instance / term index
arrays (CSR offsets and payloads).  It lives here — at the bottom of
the import graph — so ``repro.tracegen`` can narrow its arrays without
importing the overlay package (which itself imports tracegen) and so
simlint's array inference can resolve the constant through a single
import hop.  ``repro.overlay.topology`` re-exports it as the
authoritative public name.

int32 spans ±2.1e9: enough for every per-shard segment we build.  The
builders guard their counts against the dtype bound explicitly and
raise ``OverflowError`` with the offending sizes, so widening this one
literal (or sharding harder) is the documented escape hatch.
"""

from __future__ import annotations

import numpy as np

__all__ = ["INDEX_DTYPE"]

#: Element type for index arrays (CSR offsets and payloads).
INDEX_DTYPE = np.dtype(np.int32)
