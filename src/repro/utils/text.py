"""String-level utilities: interning and the file-name noise channel.

Gnutella object names are free-form strings typed by independent users.
The paper observes that the *same* underlying song appears under many
spellings ("Aaron Neville and Linda Ronstad - I Don't Know Much.mp3",
"Aaron Neville ft. Linda Ronstadt - I Don't Know Much.mp3", ...), which
inflates the number of "unique" objects and drives the singleton mass.

:func:`mangle_name` is the synthetic counterpart: given a canonical
name it applies a randomized chain of the perturbations the paper
catalogs — capitalization, punctuation/dash variants, featuring
credits, parenthetical subtitles and character-level typos.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StringInterner", "NameNoiseModel", "mangle_name"]


class StringInterner:
    """Bidirectional string <-> int-id mapping.

    The analysis hot paths (replica counting, Jaccard over intervals)
    run on integer ids; strings only exist at the edges.  Interning is
    insertion-ordered, so ids are stable for a fixed input order.
    """

    def __init__(self) -> None:
        self._to_id: dict[str, int] = {}
        self._to_str: list[str] = []

    def intern(self, s: str) -> int:
        """Return the id for ``s``, assigning a fresh one if unseen."""
        ident = self._to_id.get(s)
        if ident is None:
            ident = len(self._to_str)
            self._to_id[s] = ident
            self._to_str.append(s)
        return ident

    def intern_all(self, strings: list[str]) -> np.ndarray:
        """Intern a batch; returns an ``int64`` id array."""
        return self.intern_bulk(strings)

    def intern_bulk(self, strings: list[str]) -> np.ndarray:
        """Bulk-intern fast path: one pass, no per-string method calls.

        Identical semantics to looping :meth:`intern` (insertion order
        assigns ids), but the dict/list lookups are inlined — bulk
        loads like :func:`repro.tracegen.io.load_trace`, which re-intern
        hundreds of thousands of saved names, go through here.
        """
        to_id = self._to_id
        to_str = self._to_str
        ids = np.empty(len(strings), dtype=np.int64)
        for i, s in enumerate(strings):
            ident = to_id.get(s)
            if ident is None:
                ident = len(to_str)
                to_id[s] = ident
                to_str.append(s)
            ids[i] = ident
        return ids

    def lookup(self, ident: int) -> str:
        """Inverse mapping (raises ``IndexError`` for unknown ids)."""
        return self._to_str[ident]

    def get(self, s: str) -> int | None:
        """Id for ``s`` or ``None`` if never interned."""
        return self._to_id.get(s)

    def __len__(self) -> int:
        return len(self._to_str)

    def __contains__(self, s: str) -> bool:
        return s in self._to_id

    def strings(self) -> list[str]:
        """All interned strings in id order (a copy)."""
        return list(self._to_str)


@dataclass(frozen=True)
class NameNoiseModel:
    """Probabilities of each perturbation applied by :func:`mangle_name`.

    The default mix is calibrated (see the tracegen tests) so that a
    Gnutella-scale trace reproduces the paper's headline numbers: ~70%
    of observed names are singletons and sanitization (lower-casing +
    stripping punctuation) recovers only a small sliver of uniqueness
    (8.1M -> 7.9M unique in the paper), because most variants differ at
    the *term* level, not merely in case or punctuation.
    """

    p_case: float = 0.10  # random re-capitalization
    p_punct: float = 0.08  # dash / underscore / dot separators
    p_featuring: float = 0.18  # append a "ft. <artist>" credit
    p_subtitle: float = 0.15  # parenthetical subtitle
    p_typo: float = 0.25  # single-character typo
    p_drop_term: float = 0.12  # drop one leading term ("Aaron - ...")

    def __post_init__(self) -> None:
        for name in (
            "p_case",
            "p_punct",
            "p_featuring",
            "p_subtitle",
            "p_typo",
            "p_drop_term",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def _random_case(s: str, rng: np.random.Generator) -> str:
    style = rng.integers(0, 3)
    if style == 0:
        return s.upper()
    if style == 1:
        return s.title()
    return s.lower()


def _typo(s: str, rng: np.random.Generator) -> str:
    letters = [i for i, ch in enumerate(s) if ch.isalpha()]
    if not letters:
        return s
    i = int(rng.choice(letters))
    op = rng.integers(0, 3)
    if op == 0:  # substitute
        repl = _ALPHABET[rng.integers(0, 26)]
        return s[:i] + repl + s[i + 1 :]
    if op == 1:  # delete
        return s[:i] + s[i + 1 :]
    # duplicate
    return s[:i] + s[i] + s[i:]


def mangle_name(
    canonical: str,
    rng: np.random.Generator,
    *,
    noise: NameNoiseModel | None = None,
    featuring_pool: list[str] | None = None,
    subtitle_pool: list[str] | None = None,
) -> str:
    """Produce one observed spelling of ``canonical``.

    With all probabilities zero this is the identity, so replicas of a
    popular object collide on the same string — exactly what the
    paper's replica counting needs.
    """
    noise = noise or NameNoiseModel()
    # Perturb the stem only; the extension is re-appended at the end so
    # credits/subtitles land before it, as they do in real names.
    dot = canonical.rfind(".")
    if dot > 0 and len(canonical) - dot <= 5:
        name, ext = canonical[:dot], canonical[dot:]
    else:
        name, ext = canonical, ""
    if featuring_pool and rng.random() < noise.p_featuring:
        name = f"{name} ft. {featuring_pool[rng.integers(0, len(featuring_pool))]}"
    if subtitle_pool and rng.random() < noise.p_subtitle:
        name = f"{name} ({subtitle_pool[rng.integers(0, len(subtitle_pool))]})"
    if rng.random() < noise.p_drop_term:
        parts = name.split(" ")
        if len(parts) > 2:
            drop = int(rng.integers(0, min(2, len(parts) - 1)))
            parts.pop(drop)
            name = " ".join(parts)
    if rng.random() < noise.p_typo:
        name = _typo(name, rng)
    if rng.random() < noise.p_case:
        name = _random_case(name, rng)
    if rng.random() < noise.p_punct:
        sep = ["-", "_", "."][rng.integers(0, 3)]
        name = name.replace(" ", sep)
    return name + ext
