"""Shared utilities: RNG plumbing, Zipf machinery, Bloom filters, text tools."""

from repro.utils.bloom import BloomFilter, optimal_parameters
from repro.utils.rng import as_seed_sequence, derive, make_rng, spawn
from repro.utils.stats import (
    bincount_counts,
    ccdf,
    fraction_at_least,
    fraction_at_most,
    gini,
    lorenz_curve,
)
from repro.utils.text import NameNoiseModel, StringInterner, mangle_name
from repro.utils.zipf import (
    ZipfDistribution,
    fit_exponent_mle,
    ks_distance,
    rank_frequency,
    zipf_weights,
)

__all__ = [
    "BloomFilter",
    "optimal_parameters",
    "as_seed_sequence",
    "derive",
    "make_rng",
    "spawn",
    "bincount_counts",
    "ccdf",
    "fraction_at_least",
    "fraction_at_most",
    "gini",
    "lorenz_curve",
    "NameNoiseModel",
    "StringInterner",
    "mangle_name",
    "ZipfDistribution",
    "fit_exponent_mle",
    "ks_distance",
    "rank_frequency",
    "zipf_weights",
]
