"""Vocabulary growth analysis (Heaps'-law behaviour of terms).

The authors' companion measurement work (paper refs [6], [16]) tracks
how the term population evolves: every crawl and every day of queries
keeps surfacing terms never seen before.  Heaps' law — distinct terms
``V(n) ≈ K·n^beta`` after ``n`` term occurrences, ``beta < 1`` — is
the standard model; sub-linear but *unbounded* growth is exactly why a
fixed global index keeps chasing the workload and why the paper
emphasizes temporal adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HeapsFit", "vocabulary_growth", "fit_heaps", "new_term_rate"]


def vocabulary_growth(
    term_stream: np.ndarray, *, n_points: int = 50
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct-term counts along a term-occurrence stream.

    Returns ``(n, V)``: at ``n[i]`` observed term occurrences,
    ``V[i]`` distinct terms had appeared.  ``n`` is log-spaced so the
    curve is equally informative at every decade.
    """
    term_stream = np.asarray(term_stream)
    if term_stream.size == 0:
        raise ValueError("empty term stream")
    if n_points < 2:
        raise ValueError("need at least two sample points")
    # First-occurrence mask via stable unique.
    _, first_idx = np.unique(term_stream, return_index=True)
    is_new = np.zeros(term_stream.size, dtype=np.int64)
    is_new[first_idx] = 1
    distinct = np.cumsum(is_new)
    n = np.unique(
        np.logspace(0, np.log10(term_stream.size), n_points).astype(np.int64)
    )
    return n, distinct[n - 1]


@dataclass(frozen=True)
class HeapsFit:
    """Least-squares fit of ``V(n) = K * n^beta`` in log space."""

    k: float
    beta: float
    r_squared: float

    def predict(self, n: np.ndarray | float) -> np.ndarray | float:
        """Predicted vocabulary size after ``n`` occurrences."""
        return self.k * np.asarray(n, dtype=np.float64) ** self.beta


def fit_heaps(n: np.ndarray, v: np.ndarray) -> HeapsFit:
    """Fit Heaps' law to a growth curve from :func:`vocabulary_growth`."""
    n = np.asarray(n, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if n.size < 3:
        raise ValueError("need at least three points to fit")
    if np.any(n <= 0) or np.any(v <= 0):
        raise ValueError("growth points must be positive")
    log_n, log_v = np.log(n), np.log(v)
    beta, log_k = np.polyfit(log_n, log_v, 1)
    resid = log_v - (log_k + beta * log_n)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((log_v - log_v.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return HeapsFit(k=float(np.exp(log_k)), beta=float(beta), r_squared=r2)


def new_term_rate(
    term_stream: np.ndarray, timestamps: np.ndarray, *, interval_s: float
) -> np.ndarray:
    """Never-seen-before terms per time interval.

    ``timestamps`` aligns with ``term_stream`` (one entry per term
    occurrence).  The returned series is what an index maintainer
    experiences: how many brand-new terms each interval brings.
    """
    term_stream = np.asarray(term_stream)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if term_stream.shape != timestamps.shape:
        raise ValueError("term stream and timestamps must be aligned")
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if term_stream.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, first_idx = np.unique(term_stream, return_index=True)
    first_times = timestamps[first_idx]
    n_intervals = int(np.floor(timestamps.max() / interval_s)) + 1
    bins = np.minimum((first_times / interval_s).astype(np.int64), n_intervals - 1)
    return np.bincount(bins, minlength=n_intervals)
