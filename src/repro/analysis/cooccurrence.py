"""Term co-occurrence analysis.

Multi-term (AND) matching succeeds only when a file carries the whole
term *combination*, so the statistic that matters is not how popular
individual terms are (Fig. 3) but how often they appear together.
This module measures pairwise co-occurrence in a CSR term corpus —
names or queries — and the pointwise mutual information of pairs,
quantifying how much rarer combinations are than independence would
predict (title terms co-occur by construction; query terms are near-
independent draws, which is exactly why A-MULTITERM's penalty bites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import ragged_arange

__all__ = ["CooccurrenceStats", "pair_counts", "cooccurrence_stats"]


def pair_counts(
    offsets: np.ndarray, term_ids: np.ndarray, *, max_group: int = 16
) -> dict[tuple[int, int], int]:
    """Count unordered term pairs co-occurring within CSR groups.

    Groups longer than ``max_group`` are truncated (quadratic blowup
    guard; file names and queries are short anyway).  Duplicate terms
    within a group count once.
    """
    if max_group < 2:
        raise ValueError("max_group must be at least 2")
    offsets = np.asarray(offsets, dtype=np.int64)
    counts: dict[tuple[int, int], int] = {}
    for g in range(offsets.size - 1):
        terms = np.unique(term_ids[offsets[g] : offsets[g + 1]])[:max_group]
        for i in range(terms.size):
            for j in range(i + 1, terms.size):
                key = (int(terms[i]), int(terms[j]))
                counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass(frozen=True)
class CooccurrenceStats:
    """Summary of a corpus's pairwise term structure."""

    n_groups: int
    n_distinct_pairs: int
    #: mean PMI over the most frequent pairs (nats).
    mean_top_pmi: float
    #: the most frequent pairs as ((term_a, term_b), count).
    top_pairs: list[tuple[tuple[int, int], int]]

    @property
    def pairs_per_group(self) -> float:
        """Distinct observed pairs per group — corpus combinatorial density."""
        return self.n_distinct_pairs / max(1, self.n_groups)


def cooccurrence_stats(
    offsets: np.ndarray,
    term_ids: np.ndarray,
    *,
    top_k: int = 50,
    max_group: int = 16,
) -> CooccurrenceStats:
    """Compute pairwise statistics for one CSR corpus.

    PMI of a pair (a, b): ``log(P(a,b) / (P(a) P(b)))`` with all
    probabilities per *group*.  Positive PMI = the pair co-occurs more
    than independent popularity predicts (title structure); PMI near 0
    = independent draws (the query model's base stream).
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    offsets = np.asarray(offsets, dtype=np.int64)
    n_groups = offsets.size - 1
    if n_groups < 1:
        raise ValueError("empty corpus")
    pairs = pair_counts(offsets, term_ids, max_group=max_group)
    if not pairs:
        return CooccurrenceStats(n_groups, 0, float("nan"), [])

    # Per-group term presence counts (for marginal probabilities).
    lengths = np.diff(offsets)
    group_of = np.repeat(np.arange(n_groups, dtype=np.int64), lengths)
    n_terms = int(term_ids.max()) + 1 if term_ids.size else 0
    uniq = np.unique(term_ids.astype(np.int64) * n_groups + group_of)
    presence = np.bincount((uniq // n_groups).astype(np.int64), minlength=n_terms)

    ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    pmis = []
    for (a, b), c in ranked:
        p_ab = c / n_groups
        p_a = presence[a] / n_groups
        p_b = presence[b] / n_groups
        pmis.append(np.log(p_ab / (p_a * p_b)))
    return CooccurrenceStats(
        n_groups=n_groups,
        n_distinct_pairs=len(pairs),
        mean_top_pmi=float(np.mean(pmis)),
        top_pairs=ranked,
    )
