"""Query resolvability: the query-side view of the rare-object problem.

The paper's §VI cites Loo et al.'s operational definition — a query is
*rare* when it returns fewer than 20 results — and §III shows fewer
than 4% of objects could ever clear that bar.  This module measures
the same thing from the query side: for every query in the workload,
the number of results available *anywhere in the network* (an oracle
upper bound no search strategy can beat), and hence the fraction of
queries that are rare, unresolvable, or popular.

This is the quantity that decides a hybrid's fate before a single
message is sent: if nearly every query is rare by construction, the
flood phase is pure overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.content import SharedContentIndex
from repro.tracegen.query_trace import QueryWorkload
from repro.utils.rng import derive

__all__ = ["ResolvabilityReport", "measure_resolvability"]


@dataclass(frozen=True)
class ResolvabilityReport:
    """Oracle result-count distribution over a query sample."""

    #: available results per sampled query (global knowledge).
    result_counts: np.ndarray
    #: distinct peers holding any result, per sampled query.
    peer_counts: np.ndarray
    rare_threshold: int

    @property
    def n_queries(self) -> int:
        """Number of sampled queries."""
        return self.result_counts.size

    @property
    def unresolvable_fraction(self) -> float:
        """Queries with zero results anywhere (mismatch casualties)."""
        return float(np.mean(self.result_counts == 0))

    @property
    def rare_fraction(self) -> float:
        """Queries below the Loo et al. threshold (including zero)."""
        return float(np.mean(self.result_counts < self.rare_threshold))

    @property
    def median_results(self) -> float:
        """Median available results per query."""
        return float(np.median(self.result_counts))

    def quantile(self, q: float) -> float:
        """Result-count quantile."""
        return float(np.quantile(self.result_counts, q))


def measure_resolvability(
    workload: QueryWorkload,
    content: SharedContentIndex,
    *,
    n_samples: int = 1_000,
    rare_threshold: int = 20,
    seed: int = 0,
) -> ResolvabilityReport:
    """Oracle-evaluate a random sample of workload queries.

    Each sampled query is matched against the *entire* content index —
    the best any search could do — and its result/peer counts recorded.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    if rare_threshold < 1:
        raise ValueError("rare_threshold must be positive")
    rng = derive(seed, "resolvability")
    picks = rng.integers(0, workload.n_queries, size=n_samples)
    # Batched evaluation: the Zipf sample repeats few distinct queries,
    # so each distinct query intersects its postings (and deduplicates
    # its holder peers) exactly once.
    matches = content.match_batch(
        [workload.query_words(int(qi)) for qi in picks]
    )
    distinct_peers = np.fromiter(
        (
            np.unique(content.instance_peer[matches.distinct_instances(d)]).size
            for d in range(matches.n_distinct)
        ),
        dtype=np.int64,
        count=matches.n_distinct,
    )
    return ResolvabilityReport(
        result_counts=matches.counts,
        peer_counts=distinct_peers[matches.distinct_index],
        rare_threshold=rare_threshold,
    )
