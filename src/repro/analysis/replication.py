"""Replication-ratio statistics — the paper's §III headline numbers.

Given clients-per-object counts over a population of ``n_peers``,
summarize how (in)sufficiently objects are replicated: singleton
fraction, the mass of objects below a replication-ratio threshold
(the paper's "99.5% of objects on < 0.1% of peers"), and the Loo et
al. rare-object fraction ("< 4% of objects on 20 or more peers").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import fraction_at_least, fraction_at_most

__all__ = ["ReplicationSummary", "summarize_replication", "replication_table"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Shape statistics of a clients-per-object distribution."""

    n_objects: int
    n_instances: int
    n_peers: int
    singleton_fraction: float
    mean_replicas: float
    max_replicas: int
    #: fraction of objects replicated on fewer than 0.1% of peers.
    below_0p1pct: float
    #: fraction of objects on >= 20 peers (Loo et al. "common" objects).
    at_least_20_peers: float

    def rare_fraction(self) -> float:
        """Fraction of objects Loo et al. would classify as rare."""
        return 1.0 - self.at_least_20_peers


def summarize_replication(counts: np.ndarray, n_peers: int) -> ReplicationSummary:
    """Summarize clients-per-object ``counts`` over ``n_peers`` peers.

    ``counts`` may include zero entries (ids never observed); they are
    dropped, matching the paper's per-observed-object statistics.
    """
    counts = np.asarray(counts)
    counts = counts[counts > 0]
    if counts.size == 0:
        raise ValueError("no replicated objects to summarize")
    if n_peers <= 0:
        raise ValueError(f"n_peers must be positive, got {n_peers}")
    threshold_0p1 = 0.001 * n_peers
    return ReplicationSummary(
        n_objects=int(counts.size),
        n_instances=int(counts.sum()),
        n_peers=n_peers,
        singleton_fraction=fraction_at_most(counts, 1),
        mean_replicas=float(counts.mean()),
        max_replicas=int(counts.max()),
        below_0p1pct=fraction_at_most(counts, np.floor(threshold_0p1)),
        at_least_20_peers=fraction_at_least(counts, 20),
    )


def replication_table(counts: np.ndarray, n_peers: int) -> list[tuple[float, float]]:
    """CDF of objects vs replication-ratio thresholds.

    Returns ``[(ratio, fraction_of_objects_at_or_below), ...]`` for the
    ratios the paper discusses (0.005% ... 0.5% of peers) — useful for
    the Gia comparison in §VI.
    """
    counts = np.asarray(counts)
    counts = counts[counts > 0]
    rows = []
    for ratio in (0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005):
        threshold = max(1.0, np.floor(ratio * n_peers))
        rows.append((ratio, fraction_at_most(counts, threshold)))
    return rows
