"""Trace analyses: tokenization, popularity, replication, Jaccard, temporal."""

from repro.analysis.cooccurrence import (
    CooccurrenceStats,
    cooccurrence_stats,
    pair_counts,
)
from repro.analysis.jaccard import jaccard, jaccard_against, jaccard_timeline
from repro.analysis.popularity import (
    clients_per_value,
    occurrences_per_value,
    popular_by_threshold,
    top_k_set,
)
from repro.analysis.resolvability import ResolvabilityReport, measure_resolvability
from repro.analysis.replication import (
    ReplicationSummary,
    replication_table,
    summarize_replication,
)
from repro.analysis.temporal import (
    IntervalCounts,
    TransientReport,
    detect_transient_terms,
    interval_term_counts,
    popular_sets,
)
from repro.analysis.tokenize import (
    TermIndex,
    sanitize_name,
    strip_extension,
    tokenize_name,
)
from repro.analysis.workload_stats import (
    WorkloadSummary,
    queries_per_interval,
    summarize_workload,
)
from repro.analysis.vocabulary import (
    HeapsFit,
    fit_heaps,
    new_term_rate,
    vocabulary_growth,
)
from repro.analysis.validation import (
    CalibrationCheck,
    check_gnutella_trace,
    check_itunes_trace,
)
from repro.analysis.zipf_fit import ZipfFit, fit_zipf

__all__ = [
    "CooccurrenceStats",
    "cooccurrence_stats",
    "pair_counts",
    "jaccard",
    "jaccard_against",
    "jaccard_timeline",
    "clients_per_value",
    "occurrences_per_value",
    "popular_by_threshold",
    "top_k_set",
    "ResolvabilityReport",
    "measure_resolvability",
    "CalibrationCheck",
    "WorkloadSummary",
    "queries_per_interval",
    "summarize_workload",
    "HeapsFit",
    "fit_heaps",
    "new_term_rate",
    "vocabulary_growth",
    "check_gnutella_trace",
    "check_itunes_trace",
    "ReplicationSummary",
    "replication_table",
    "summarize_replication",
    "IntervalCounts",
    "TransientReport",
    "detect_transient_terms",
    "interval_term_counts",
    "popular_sets",
    "TermIndex",
    "sanitize_name",
    "strip_extension",
    "tokenize_name",
    "ZipfFit",
    "fit_zipf",
]
