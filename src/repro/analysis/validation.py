"""Statistical calibration certificates.

DESIGN.md's substitution argument claims each synthetic trace matches
the paper's published marginal statistics.  This module makes those
claims checkable in one call: every target is evaluated against the
generated data and reported with its tolerance band, so drift in any
generator fails loudly (the calibration tests call this, and the
`verify` example prints it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.replication import summarize_replication
from repro.analysis.zipf_fit import fit_zipf
from repro.tracegen.gnutella_trace import GnutellaShareTrace
from repro.tracegen.itunes_trace import ITunesShareTrace

__all__ = ["CalibrationCheck", "check_gnutella_trace", "check_itunes_trace"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One calibration target and its measured value."""

    name: str
    paper_value: float
    measured: float
    lo: float
    hi: float

    @property
    def passed(self) -> bool:
        """Is the measured value inside the tolerance band?"""
        return self.lo <= self.measured <= self.hi

    def as_row(self) -> tuple[str, str, str, str, str]:
        """Row form for table rendering."""
        return (
            self.name,
            f"{self.paper_value:.3f}",
            f"{self.measured:.3f}",
            f"[{self.lo:.3f}, {self.hi:.3f}]",
            "PASS" if self.passed else "FAIL",
        )


def check_gnutella_trace(trace: GnutellaShareTrace) -> list[CalibrationCheck]:
    """Evaluate the §III-A calibration targets on a Gnutella trace."""
    counts = trace.replica_counts()
    s = summarize_replication(counts, trace.n_peers)
    fit = fit_zipf(counts[counts > 0])
    return [
        CalibrationCheck(
            "singleton fraction", 0.705, s.singleton_fraction, 0.63, 0.78
        ),
        CalibrationCheck(
            "unique/instances", 0.675, s.n_objects / s.n_instances, 0.58, 0.75
        ),
        CalibrationCheck("mean replicas per name", 1.48, s.mean_replicas, 1.3, 1.8),
        CalibrationCheck(
            "objects on >= 20 peers", 0.04, s.at_least_20_peers, 0.0, 0.04
        ),
        CalibrationCheck("Zipf exponent > 0 (shape)", 0.5, fit.exponent, 0.3, 2.0),
    ]


def check_itunes_trace(trace: ITunesShareTrace) -> list[CalibrationCheck]:
    """Evaluate the Fig. 4 calibration targets on an iTunes trace."""

    def field_stats(values: np.ndarray) -> tuple[int, float]:
        counts = trace.clients_per_value(values)
        counts = counts[counts > 0]
        return int(counts.size), float(np.mean(counts == 1))

    n_songs, song_single = field_stats(trace.song_ids)
    n_genres, genre_single = field_stats(trace.genre_ids)
    n_albums, album_single = field_stats(trace.album_ids)
    n_artists, artist_single = field_stats(trace.artist_ids)
    uniq_ratio = n_songs / trace.n_instances
    return [
        CalibrationCheck("unique songs / objects", 0.286, uniq_ratio, 0.2, 0.45),
        CalibrationCheck("song singleton fraction", 0.64, song_single, 0.55, 0.85),
        CalibrationCheck("genre count (x1000)", 1.452, n_genres / 1_000, 0.9, 2.0),
        CalibrationCheck("genre singleton fraction", 0.56, genre_single, 0.40, 0.70),
        CalibrationCheck("album singleton fraction", 0.657, album_single, 0.50, 0.85),
        CalibrationCheck("artist singleton fraction", 0.65, artist_single, 0.40, 0.80),
        CalibrationCheck(
            "genre missing fraction",
            0.087,
            trace.missing_fraction(trace.genre_ids),
            0.077,
            0.097,
        ),
        CalibrationCheck(
            "album missing fraction",
            0.081,
            trace.missing_fraction(trace.album_ids),
            0.071,
            0.091,
        ),
    ]
