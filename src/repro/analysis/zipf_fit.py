"""Zipf goodness-of-fit reporting for measured popularity distributions.

The paper's claim is qualitative — annotations "exhibited a Zipf like
behavior" — so the reproduction quantifies it: fit the exponent by MLE
and report the KS distance between the observed rank-frequency curve
and the fitted truncated Zipf.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.zipf import fit_exponent_mle, ks_distance, rank_frequency

__all__ = ["ZipfFit", "fit_zipf"]


@dataclass(frozen=True)
class ZipfFit:
    """Fitted exponent plus goodness-of-fit summary."""

    exponent: float
    ks: float
    n_items: int
    n_observations: int
    head_share_top1pct: float

    def is_heavy_tailed(self, *, max_ks: float = 0.15) -> bool:
        """Crude accept test used by the calibration checks."""
        return self.ks <= max_ks and self.exponent > 0.3


def fit_zipf(counts: np.ndarray) -> ZipfFit:
    """Fit a truncated Zipf to per-item occurrence counts."""
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size < 2:
        raise ValueError("need at least two items to fit a Zipf")
    s = fit_exponent_mle(counts)
    ks = ks_distance(counts, s)
    _, freq = rank_frequency(counts)
    head = max(1, int(0.01 * freq.size))
    return ZipfFit(
        exponent=s,
        ks=ks,
        n_items=int(counts.size),
        n_observations=int(counts.sum()),
        head_share_top1pct=float(freq[:head].sum() / freq.sum()),
    )
