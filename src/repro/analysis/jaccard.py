"""Jaccard set similarity (paper §IV-B).

The paper compares *sets of terms* — popular query terms across
intervals (Fig. 6) and query terms vs popular file terms (Fig. 7) —
with the Jaccard index ``|A ∩ B| / |A ∪ B|``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["jaccard", "jaccard_timeline", "jaccard_against"]


def jaccard(a: set | frozenset, b: set | frozenset) -> float:
    """Jaccard index of two sets.

    Two empty sets are defined as identical (1.0), matching the
    convention that an interval with no popular terms is "unchanged".
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union


def jaccard_timeline(sets: Sequence[set], *, lag: int = 1) -> np.ndarray:
    """Jaccard between each set and the set ``lag`` steps earlier.

    ``result[i] = jaccard(sets[i], sets[i - lag])`` for
    ``i >= lag``; the first ``lag`` entries are ``nan`` (no
    predecessor) — mirroring the paper's note that the first intervals
    are unstable before popularity counts are established.
    """
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    out = np.full(len(sets), np.nan)
    for i in range(lag, len(sets)):
        out[i] = jaccard(sets[i], sets[i - lag])
    return out


def jaccard_against(sets: Sequence[set], reference: set) -> np.ndarray:
    """Jaccard of each set against one fixed reference set (Fig. 7)."""
    return np.asarray([jaccard(s, reference) for s in sets])
