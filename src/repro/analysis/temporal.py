"""Temporal term-popularity analysis (paper §IV).

Buckets a timestamped term stream into evaluation intervals, extracts
per-interval popular sets, and flags *transiently popular* terms —
terms whose count in an interval deviates significantly from their
historical average (the paper's Fig. 5 definition, including the
training prefix used to establish history).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.popularity import top_k_set

__all__ = [
    "IntervalCounts",
    "interval_term_counts",
    "popular_sets",
    "TransientReport",
    "detect_transient_terms",
]


@dataclass(frozen=True)
class IntervalCounts:
    """Per-interval term occurrence counts.

    ``counts[t, v]`` is how many times term ``v`` occurred during
    interval ``t``.  Dense is fine at trace scale: intervals are
    O(hundreds) and vocabularies O(thousands).
    """

    interval_s: float
    counts: np.ndarray  # (n_intervals, n_terms) int64

    @property
    def n_intervals(self) -> int:
        """Number of evaluation intervals."""
        return self.counts.shape[0]

    @property
    def n_terms(self) -> int:
        """Vocabulary size."""
        return self.counts.shape[1]

    def totals(self) -> np.ndarray:
        """Whole-trace occurrence count per term."""
        return self.counts.sum(axis=0)


def interval_term_counts(
    timestamps: np.ndarray,
    term_offsets: np.ndarray,
    term_ids: np.ndarray,
    *,
    n_terms: int,
    interval_s: float,
    duration_s: float | None = None,
) -> IntervalCounts:
    """Bucket a CSR term stream into fixed evaluation intervals.

    Each query contributes each of its terms once to its interval.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if duration_s is None:
        duration_s = float(timestamps[-1]) + 1e-9 if timestamps.size else interval_s
    n_intervals = int(np.ceil(duration_s / interval_s))
    lengths = np.diff(term_offsets)
    query_interval = np.minimum(
        (timestamps / interval_s).astype(np.int64), n_intervals - 1
    )
    term_interval = np.repeat(query_interval, lengths)
    flat = term_interval * n_terms + np.asarray(term_ids, dtype=np.int64)
    counts = np.bincount(flat, minlength=n_intervals * n_terms)
    return IntervalCounts(interval_s, counts.reshape(n_intervals, n_terms))


def popular_sets(intervals: IntervalCounts, *, k: int) -> list[set[int]]:
    """Per-interval top-``k`` popular term sets (raw-count definition)."""
    return [top_k_set(intervals.counts[t], k) for t in range(intervals.n_intervals)]


def popular_sets_cumulative(intervals: IntervalCounts, *, k: int) -> list[set[int]]:
    """The paper's Q*_t: observed-this-interval ∩ cumulatively popular.

    A term is *popular at interval t* when it ranks in the top-``k`` of
    occurrence counts accumulated over ``[0, t]`` — the "established
    overall popularity counts" of the paper's footnote — and was
    actually observed during interval ``t``.  Early intervals are noisy
    (history not yet established), exactly as Fig. 6 shows, then the
    sets stabilize to >90% consecutive-interval Jaccard.
    """
    cum = np.cumsum(intervals.counts, axis=0)
    out: list[set[int]] = []
    for t in range(intervals.n_intervals):
        established = top_k_set(cum[t], k)
        observed = np.flatnonzero(intervals.counts[t] > 0)
        out.append(established.intersection(int(i) for i in observed))
    return out


@dataclass(frozen=True)
class TransientReport:
    """Output of :func:`detect_transient_terms`.

    ``per_interval`` holds, for each *evaluation* interval (those after
    the training prefix), the set of terms flagged transiently popular;
    ``counts`` is the Fig. 5 series ``len(per_interval[t])``.
    """

    first_eval_interval: int
    per_interval: list[set[int]]

    @property
    def counts(self) -> np.ndarray:
        """Number of transient terms per evaluation interval."""
        return np.asarray([len(s) for s in self.per_interval])

    def mean(self) -> float:
        """Mean transient terms per interval."""
        return float(self.counts.mean()) if self.per_interval else 0.0

    def variance(self) -> float:
        """Variance of transient terms per interval."""
        return float(self.counts.var()) if self.per_interval else 0.0

    def all_flagged(self) -> set[int]:
        """Union of every interval's transient set."""
        out: set[int] = set()
        for s in self.per_interval:
            out |= s
        return out


def detect_transient_terms(
    intervals: IntervalCounts,
    *,
    train_fraction: float = 0.1,
    z_threshold: float = 6.0,
    min_count: int = 5,
) -> TransientReport:
    """Flag terms deviating sharply from their historical rate.

    Following the paper §IV-A: the first ``train_fraction`` of the
    trace establishes each term's historical occurrence rate; at every
    later interval, a term is *transiently popular* when its count
    exceeds the historical per-interval mean by ``z_threshold``
    standard deviations (Poisson noise model: sd = sqrt(mean), with a
    +1 floor so never-seen terms need ``min_count`` hits to fire).
    History is updated cumulatively as intervals are consumed, exactly
    as an online monitor would.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if min_count < 1:
        raise ValueError("min_count must be at least 1")
    counts = intervals.counts
    n_intervals = intervals.n_intervals
    first_eval = max(1, int(np.ceil(train_fraction * n_intervals)))
    cum = np.cumsum(counts, axis=0)
    per_interval: list[set[int]] = []
    for t in range(first_eval, n_intervals):
        hist_mean = cum[t - 1] / t  # per-interval rate over [0, t)
        sd = np.sqrt(hist_mean + 1.0)
        flagged = (counts[t] > hist_mean + z_threshold * sd) & (counts[t] >= min_count)
        per_interval.append({int(i) for i in np.flatnonzero(flagged)})
    return TransientReport(first_eval, per_interval)
