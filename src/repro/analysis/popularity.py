"""Popularity counting for objects, annotations and terms.

Everything here reduces to one primitive: given per-instance value ids
and per-instance holder (peer/user) ids, count for each distinct value
how many *distinct holders* have it — the "number of clients with
object" quantity plotted in the paper's Figs. 1-4.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "clients_per_value",
    "occurrences_per_value",
    "top_k_set",
    "popular_by_threshold",
]


def clients_per_value(
    values: np.ndarray, holders: np.ndarray, *, n_values: int | None = None
) -> np.ndarray:
    """Distinct-holder count per value id.

    ``values`` and ``holders`` are aligned per-instance arrays of
    non-negative ids (filter out sentinel values before calling).
    Returns ``counts`` with ``counts[v]`` = number of distinct holders
    with at least one instance of value ``v``.
    """
    values = np.asarray(values, dtype=np.int64)
    holders = np.asarray(holders, dtype=np.int64)
    if values.shape != holders.shape:
        raise ValueError("values and holders must be aligned")
    if values.size == 0:
        return np.zeros(n_values or 0, dtype=np.int64)
    if values.min() < 0 or holders.min() < 0:
        raise ValueError("ids must be non-negative")
    n_holders = int(holders.max()) + 1
    if n_values is None:
        n_values = int(values.max()) + 1
    pairs = np.unique(values * n_holders + holders)
    return np.bincount((pairs // n_holders).astype(np.int64), minlength=n_values)


def occurrences_per_value(
    values: np.ndarray, *, n_values: int | None = None
) -> np.ndarray:
    """Raw occurrence count per value id (with multiplicity)."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("ids must be non-negative")
    return np.bincount(values, minlength=n_values or 0)


def top_k_set(counts: np.ndarray, k: int) -> set[int]:
    """Ids of the ``k`` highest-count values (ties broken by id).

    Zero-count ids are never considered popular, so the result may be
    smaller than ``k``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    counts = np.asarray(counts)
    if k == 0 or counts.size == 0:
        return set()
    k = min(k, counts.size)
    # argsort on (count desc, id asc) via lexsort for determinism.
    order = np.lexsort((np.arange(counts.size), -counts))
    top = order[:k]
    return {int(i) for i in top if counts[i] > 0}


def popular_by_threshold(counts: np.ndarray, threshold: float) -> set[int]:
    """Ids whose count is at least ``threshold``."""
    counts = np.asarray(counts)
    return {int(i) for i in np.flatnonzero(counts >= threshold)}
