"""Descriptive query-workload statistics (measurement-paper staples).

The §IV analyses need context statistics every trace study reports:
query arrival rates over time, terms-per-query distribution, and the
rank-frequency concentration of query terms.  Collected here so the
benches and examples can print a workload fact sheet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tracegen.query_trace import QueryWorkload
from repro.utils.zipf import fit_exponent_mle

__all__ = ["WorkloadSummary", "summarize_workload", "queries_per_interval"]


@dataclass(frozen=True)
class WorkloadSummary:
    """Fact sheet of one query workload."""

    n_queries: int
    duration_s: float
    mean_rate_per_hour: float
    peak_rate_per_hour: float
    terms_per_query_mean: float
    terms_per_query_hist: np.ndarray  # index i = count of queries with i terms
    distinct_terms: int
    #: share of all term occurrences from the 10 most common terms.
    top10_term_share: float
    query_term_zipf_exponent: float


def queries_per_interval(
    workload: QueryWorkload, *, interval_s: float = 3_600.0
) -> np.ndarray:
    """Query arrival counts per interval."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    n = int(np.ceil(workload.config.duration_s / interval_s))
    bins = np.minimum((workload.timestamps / interval_s).astype(np.int64), n - 1)
    return np.bincount(bins, minlength=n)


def summarize_workload(workload: QueryWorkload) -> WorkloadSummary:
    """Compute the fact sheet."""
    lengths = np.diff(workload.term_offsets)
    rates = queries_per_interval(workload, interval_s=3_600.0)
    counts = np.bincount(workload.term_ids, minlength=workload.config.vocab_size)
    live = counts[counts > 0]
    order = np.sort(live)[::-1]
    top10 = float(order[:10].sum() / order.sum())
    return WorkloadSummary(
        n_queries=workload.n_queries,
        duration_s=workload.config.duration_s,
        mean_rate_per_hour=float(rates.mean()),
        peak_rate_per_hour=float(rates.max()),
        terms_per_query_mean=float(lengths.mean()),
        terms_per_query_hist=np.bincount(lengths),
        distinct_terms=int(live.size),
        top10_term_share=top10,
        query_term_zipf_exponent=float(fit_exponent_mle(live)),
    )
