"""Gnutella name tokenization and sanitization.

The Gnutella 0.6 protocol matches queries against shared-file names by
splitting both into terms on non-alphanumeric separators and comparing
case-insensitively (the "Gnutella protocol tokenization mechanism" the
paper uses for Fig. 3).  ``sanitize_name`` implements the paper's
Fig. 2 preprocessing: drop capitalization and special characters such
as dashes.
"""

from __future__ import annotations

import re

import numpy as np

from repro.utils.stats import ragged_arange
from repro.utils.text import StringInterner

__all__ = [
    "tokenize_name",
    "sanitize_name",
    "strip_extension",
    "TermIndex",
]

_SPLIT_RE = re.compile(r"[^0-9a-z]+")
_SANITIZE_RE = re.compile(r"[^0-9a-z. ]+")
_EXTENSIONS = {
    "mp3", "wma", "ogg", "aac", "m4a", "wav", "flac",
    "avi", "mpg", "mpeg", "mov", "wmv", "mp4",
}


def strip_extension(name: str) -> str:
    """Remove a recognized media file extension, if present."""
    dot = name.rfind(".")
    if dot > 0 and name[dot + 1 :].lower() in _EXTENSIONS:
        return name[:dot]
    return name


def tokenize_name(name: str) -> list[str]:
    """Split a file name into lowercase terms, Gnutella-style.

    The extension is dropped (it carries no annotation information and
    would otherwise dominate term popularity), then the remainder is
    split on every non-alphanumeric run.
    """
    base = strip_extension(name).lower()
    return [t for t in _SPLIT_RE.split(base) if t]


def sanitize_name(name: str) -> str:
    """Fig. 2 sanitization: lowercase, drop dashes/underscores/etc.

    Separator characters collapse to single spaces so that
    ``"Artist - Title.mp3"`` and ``"artist_title.mp3"`` meet at
    ``"artist title.mp3"``; the extension (if recognized) is kept
    intact, matching the paper's name-level (not term-level) replica
    counting.
    """
    base = strip_extension(name)
    ext = name[len(base) :]
    lowered = base.lower().replace("_", " ").replace("-", " ").replace(".", " ")
    cleaned = _SANITIZE_RE.sub(" ", lowered)
    collapsed = " ".join(cleaned.split())
    return collapsed + ext.lower()


class TermIndex:
    """Tokenized view of a set of unique names.

    Maps every unique name id to its term ids (interned in a dedicated
    term space), in CSR layout — the substrate for term-level replica
    counting (Fig. 3) and for the overlay's query matching.
    """

    def __init__(self, names: list[str]) -> None:
        self.terms = StringInterner()
        lengths = np.empty(len(names), dtype=np.int64)
        flat: list[str] = []
        for i, name in enumerate(names):
            toks = tokenize_name(name)
            lengths[i] = len(toks)
            flat.extend(toks)
        self.name_offsets = np.zeros(len(names) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.name_offsets[1:])
        self.term_ids = self.terms.intern_bulk(flat)

    @property
    def n_names(self) -> int:
        """Number of names indexed."""
        return self.name_offsets.size - 1

    @property
    def n_terms(self) -> int:
        """Number of distinct terms across all names."""
        return len(self.terms)

    def name_terms(self, name_id: int) -> np.ndarray:
        """Term ids of one name."""
        return self.term_ids[self.name_offsets[name_id] : self.name_offsets[name_id + 1]]

    def expand(self, name_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Expand per-instance name ids to ``(term_ids, instance_index)``.

        For an instance array (e.g. a trace's ``name_ids``), returns the
        flattened term ids of every instance plus, aligned with it, the
        index of the originating instance — the building block for
        vectorized (term, peer) pair counting.
        """
        name_ids = np.asarray(name_ids, dtype=np.int64)
        lengths = (
            self.name_offsets[name_ids + 1] - self.name_offsets[name_ids]
        )
        starts = self.name_offsets[name_ids]
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        gather = np.repeat(starts, lengths) + ragged_arange(lengths)
        origin = np.repeat(np.arange(name_ids.size, dtype=np.int64), lengths)
        return self.term_ids[gather], origin

    def term_string(self, term_id: int) -> str:
        """Term string for an id."""
        return self.terms.lookup(term_id)
