"""Gnutella protocol message types.

A light protocol facade over the vectorized simulation core: the
message classes capture the fields the paper's methodology relies on
(query term strings, TTL/hops bookkeeping, GUID-based duplicate
suppression) without simulating byte-level framing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Guid", "QueryMessage", "QueryHit", "guid_factory"]

_guid_counter = itertools.count(1)


def guid_factory() -> int:
    """Monotonically increasing GUIDs (unique per process)."""
    return next(_guid_counter)


Guid = int


@dataclass(frozen=True)
class QueryMessage:
    """A Gnutella Query descriptor.

    ``terms`` are the tokenized search keywords (matching is AND over
    a file's name terms, per the 0.6 spec).  ``ttl``/``hops`` follow
    protocol semantics: forwarding decrements ``ttl`` and increments
    ``hops``; a query with ``ttl == 0`` is not relayed further.
    """

    terms: tuple[str, ...]
    ttl: int
    hops: int = 0
    guid: Guid = field(default_factory=guid_factory)

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a query needs at least one term")
        if self.ttl < 0 or self.hops < 0:
            raise ValueError("ttl and hops must be non-negative")

    def forwarded(self) -> "QueryMessage":
        """The message as received by the next hop."""
        if self.ttl == 0:
            raise ValueError("cannot forward a query with ttl=0")
        return QueryMessage(
            terms=self.terms, ttl=self.ttl - 1, hops=self.hops + 1, guid=self.guid
        )


@dataclass(frozen=True)
class QueryHit:
    """A Gnutella QueryHit: one responding peer, its matching files."""

    guid: Guid
    responder: int
    file_names: tuple[str, ...]

    @property
    def n_results(self) -> int:
        """Number of matching files reported."""
        return len(self.file_names)
