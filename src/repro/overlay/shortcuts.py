"""Interest-based shortcuts (Sripanidkulchai et al. lineage).

A query-driven overlay mechanism contemporaneous with the paper: when
a search succeeds, the requester keeps a *shortcut* to the answering
peer and tries shortcuts before falling back to the expensive search.
Whether shortcuts help is again a property of the temporal workload:
they exploit repetition in a peer's own query stream, so the stable
persistent core (Fig. 6) makes them effective while the long query
tail gets nothing — the same query-centric lesson as the synopsis
system, learned at the edge instead of advertised by content holders.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.overlay.content import SharedContentIndex
from repro.tracegen.query_trace import QueryWorkload
from repro.utils.rng import derive

__all__ = ["ShortcutConfig", "ShortcutList", "ShortcutReport", "simulate_shortcuts"]


@dataclass(frozen=True)
class ShortcutConfig:
    """Shortcut-list parameters."""

    capacity: int = 10
    #: probes a query may spend on shortcuts before falling back.
    probe_budget: int = 5

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.probe_budget < 1:
            raise ValueError("probe_budget must be positive")


class ShortcutList:
    """One peer's LRU list of peers that answered before."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()

    def add(self, peer: int) -> None:
        """Record (or refresh) a useful peer."""
        self._entries[peer] = None
        self._entries.move_to_end(peer)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def candidates(self, budget: int) -> list[int]:
        """Most-recently-useful peers first, up to ``budget``."""
        return list(reversed(self._entries))[:budget]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer: int) -> bool:
        return peer in self._entries


@dataclass(frozen=True)
class ShortcutReport:
    """Outcome of a workload replay through interest shortcuts."""

    shortcut_hit_rate: float
    hit_rate_persistent: float
    hit_rate_transient: float
    mean_probes_on_hit: float
    n_queries: int


def simulate_shortcuts(
    workload: QueryWorkload,
    content: SharedContentIndex,
    config: ShortcutConfig | None = None,
    *,
    n_requesters: int = 50,
    max_queries: int = 20_000,
    seed: int = 0,
) -> ShortcutReport:
    """Replay the workload through per-requester shortcut lists.

    Each query is issued by one of ``n_requesters`` peers (queries are
    assigned round-robin weighted by a random requester choice, so
    every requester sees a thinned copy of the global stream).  A query
    is a *shortcut hit* when one of the requester's first
    ``probe_budget`` shortcuts holds a matching file; on a miss, the
    fallback search is assumed to succeed whenever any peer matches,
    and the requester learns a shortcut to one matching peer.
    """
    cfg = config or ShortcutConfig()
    rng = derive(seed, "shortcuts")
    n = min(max_queries, workload.n_queries)
    lists = [ShortcutList(cfg.capacity) for _ in range(n_requesters)]

    hits = misses = 0
    hits_p = total_p = hits_t = total_t = 0
    probes_on_hit: list[int] = []
    requesters = rng.integers(0, n_requesters, size=n)
    for i in range(n):
        words = workload.query_words(i)
        matching = content.matching_peers(words)
        if matching.size == 0:
            continue  # unresolvable anywhere; shortcuts irrelevant
        match_set = set(int(p) for p in matching)
        sl = lists[int(requesters[i])]
        hit = False
        for probe, peer in enumerate(sl.candidates(cfg.probe_budget), start=1):
            if peer in match_set:
                hit = True
                sl.add(peer)
                probes_on_hit.append(probe)
                break
        if not hit:
            # Fallback search succeeds (a match exists); learn from it.
            learned = int(matching[rng.integers(0, matching.size)])
            sl.add(learned)
        hits += hit
        misses += not hit
        if workload.is_burst[i]:
            hits_t += hit
            total_t += 1
        else:
            hits_p += hit
            total_p += 1
    total = hits + misses
    return ShortcutReport(
        shortcut_hit_rate=hits / total if total else 0.0,
        hit_rate_persistent=hits_p / total_p if total_p else float("nan"),
        hit_rate_transient=hits_t / total_t if total_t else float("nan"),
        mean_probes_on_hit=float(np.mean(probes_on_hit)) if probes_on_hit else float("nan"),
        n_queries=total,
    )
