"""Query-result caching at ultrapeers.

Deployed Gnutella ultrapeers cached QueryHit results for recently seen
query strings.  How well that works is *entirely* a property of the
temporal workload the paper characterizes: the stable persistent core
(Fig. 6) caches beautifully, the Zipf long tail of one-off queries
doesn't cache at all, and transient bursts (Fig. 5) are only served
after their first miss.  The cache simulation quantifies each effect,
giving the repository a second deployed mechanism (next to QRP) whose
behaviour the paper's measurements predict.

The cache is keyed by the normalized term multiset, with LRU eviction
and an optional freshness TTL (stale entries count as misses —
re-querying is how real caches avoided serving dead peers).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.tracegen.query_trace import QueryWorkload

__all__ = ["CacheConfig", "CacheReport", "QueryResultCache", "simulate_cache"]


@dataclass(frozen=True)
class CacheConfig:
    """Result-cache parameters."""

    capacity: int = 512
    freshness_ttl_s: float = 3_600.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.freshness_ttl_s <= 0:
            raise ValueError("freshness_ttl_s must be positive")


class QueryResultCache:
    """LRU + freshness-TTL cache keyed by normalized query term sets."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._entries: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_misses = 0

    @staticmethod
    def _key(terms: np.ndarray) -> tuple[int, ...]:
        return tuple(sorted(set(int(t) for t in terms)))

    def lookup(self, terms: np.ndarray, now: float) -> bool:
        """Probe the cache; records the miss and inserts on failure.

        Returns True on a fresh hit.  A stale entry is refreshed (the
        ultrapeer re-floods and re-caches) and counted as a miss.
        """
        key = self._key(terms)
        stamp = self._entries.get(key)
        if stamp is not None and now - stamp <= self.config.freshness_ttl_s:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        if stamp is not None:
            self.stale_misses += 1
        self.misses += 1
        self._entries[key] = now
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.capacity:
            self._entries.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        """Fresh-hit fraction of all lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheReport:
    """Aggregate cache behaviour over a workload replay."""

    hit_rate: float
    hit_rate_persistent: float
    hit_rate_transient: float
    stale_miss_fraction: float
    n_queries: int
    #: fraction of the replay's total flood cost the cache avoided
    #: (0.0 when no per-query cost column was supplied).
    messages_saved_fraction: float = 0.0


def simulate_cache(
    workload: QueryWorkload,
    config: CacheConfig | None = None,
    *,
    max_queries: int | None = None,
    flood_messages: np.ndarray | None = None,
) -> CacheReport:
    """Replay the workload through one shared cache, in time order.

    A single cache models one ultrapeer seeing the whole stream — the
    best case for caching; per-ultrapeer sharding only lowers hit
    rates further, so the measured ceiling is the honest headline.

    ``flood_messages`` optionally prices each replayed query (e.g. the
    ``messages`` column of a
    :class:`~repro.overlay.batch.BatchOutcome` replay of the same
    prefix): a fresh hit avoids that query's flood, and the report's
    ``messages_saved_fraction`` aggregates the avoided cost.
    """
    cache = QueryResultCache(config)
    n = workload.n_queries if max_queries is None else min(max_queries, workload.n_queries)
    if flood_messages is not None and flood_messages.shape[0] < n:
        raise ValueError(
            f"flood_messages covers {flood_messages.shape[0]} queries, need {n}"
        )
    hits_p = misses_p = hits_t = misses_t = 0
    saved = 0
    payable = 0
    for i in range(n):
        terms = workload.query_terms(i)
        hit = cache.lookup(terms, float(workload.timestamps[i]))
        if workload.is_burst[i]:
            hits_t += hit
            misses_t += not hit
        else:
            hits_p += hit
            misses_p += not hit
        if flood_messages is not None:
            cost = int(flood_messages[i])
            payable += cost
            if hit:
                saved += cost
    total = cache.hits + cache.misses
    return CacheReport(
        hit_rate=cache.hit_rate,
        hit_rate_persistent=hits_p / max(1, hits_p + misses_p),
        hit_rate_transient=hits_t / max(1, hits_t + misses_t),
        stale_miss_fraction=cache.stale_misses / max(1, total),
        n_queries=n,
        messages_saved_fraction=saved / payable if payable else 0.0,
    )
