"""k-walker random-walk search (Lv et al. style, paper ref [4]).

The alternative unstructured search primitive: instead of flooding,
``k`` walkers step to a uniformly random neighbor for up to ``ttl``
steps.  Message cost is exactly the number of steps taken, making the
budgeted comparison against flooding and synopsis routing fair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.topology import Topology
from repro.utils.rng import make_rng

__all__ = ["WalkResult", "random_walk"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of one k-walker search."""

    source: int
    visited: np.ndarray  # distinct nodes visited (source included)
    messages: int

    @property
    def n_visited(self) -> int:
        """Number of distinct nodes visited."""
        return self.visited.size


def random_walk(
    topology: Topology,
    source: int,
    *,
    walkers: int = 16,
    ttl: int = 1024,
    seed: int | np.random.Generator = 0,
) -> WalkResult:
    """Run ``walkers`` simultaneous random walks of ``ttl`` steps each.

    Walkers at an isolated node stall (no message emitted that step).
    All walkers advance together, one vectorized step per iteration.
    """
    if walkers < 1:
        raise ValueError(f"need at least one walker, got {walkers}")
    if ttl < 0:
        raise ValueError(f"ttl must be non-negative, got {ttl}")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    offsets, neighbors = topology.offsets, topology.neighbors
    degree = np.diff(offsets)
    current = np.full(walkers, source, dtype=np.int64)
    visited = np.zeros(topology.n_nodes, dtype=bool)
    visited[source] = True
    messages = 0
    for _ in range(ttl):
        deg = degree[current]
        movable = deg > 0
        if not movable.any():
            break
        pick = (rng.random(walkers) * deg).astype(np.int64)
        nxt = neighbors[offsets[current[movable]] + pick[movable]]
        current = current.copy()
        current[movable] = nxt
        visited[nxt] = True
        messages += int(movable.sum())
    return WalkResult(source=source, visited=np.flatnonzero(visited), messages=messages)
