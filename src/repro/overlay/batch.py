"""Batched query engine: workload-scale evaluation of overlay search.

The scalar path (:meth:`UnstructuredNetwork.query_flood` per query)
re-floods and re-intersects from scratch on every call, even though a
Zipf workload replays the same few distinct queries from a small
source pool.  :class:`BatchQueryEngine` evaluates a whole workload at
once against two shared caches:

* a :class:`~repro.overlay.flooding.FloodDepthCache` — every distinct
  source BFS-es once to the deepest requested TTL, and every ring of
  an expanding-ring schedule is a slice of that one depth map with the
  per-ring message accounting preserved;
* the content index's memoized match cache — every distinct query key
  intersects its posting lists once.

Results come back columnar as a :class:`BatchOutcome` (per-query
success, result counts, message cost, peers probed) instead of a list
of :class:`~repro.overlay.network.SearchOutcome` objects, and are
bitwise-identical to the per-query path at every worker count: each
query's evaluation is a pure function of ``(source, query key)``, so
contiguous chunks fanned out over ``pmap`` workers (topology and
posting arrays attached via :mod:`repro.runtime.shm`) concatenate back
to exactly the serial answer.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import ExitStack
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.obs import metrics
from repro.overlay.content import (
    PostingsProvider,
    QueryKey,
    SharedContentIndex,
    intersect_postings_batch,
)
from repro.overlay.flooding import DEPTH_DTYPE, DepthProvider, FloodDepthCache
from repro.overlay.topology import Topology

__all__ = ["BatchOutcome", "BatchQueryEngine"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_DEPTH = np.empty(0, dtype=DEPTH_DTYPE)


@dataclass(frozen=True)
class BatchOutcome:
    """Columnar outcomes of one query batch (row ``i`` = query ``i``).

    Each column is what the corresponding scalar-path object reports:
    ``success[i]`` / ``n_results[i]`` / ``messages[i]`` /
    ``peers_probed[i]`` match ``SearchOutcome`` (or, for multi-ring
    schedules, ``ExpandingRingResult`` with the final ring's result
    count and the cumulative message cost).
    """

    success: np.ndarray
    n_results: np.ndarray
    messages: np.ndarray
    peers_probed: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.success.size

    @property
    def success_rate(self) -> float:
        """Fraction of queries returning at least one result.

        An *empty* batch has no well-defined rate: this returns ``nan``
        rather than a silent 0.0, so a consumer surfacing the value as
        a live metric (the serving layer does) can tell "no traffic"
        from "every query failed".  Callers that want a number must
        check :attr:`n_queries` first.
        """
        if not self.n_queries:
            return float("nan")
        return float(np.count_nonzero(self.success)) / self.n_queries

    @property
    def total_messages(self) -> int:
        """Total message cost of the batch."""
        return int(self.messages.sum())

    @staticmethod
    def empty() -> "BatchOutcome":
        """A zero-query outcome, column dtypes matching any real batch.

        Columns are freshly allocated (never shared module globals), so
        two empty outcomes can't alias each other's arrays.
        """
        return BatchOutcome(
            success=np.empty(0, dtype=bool),
            n_results=np.empty(0, dtype=np.int64),
            messages=np.empty(0, dtype=np.int64),
            peers_probed=np.empty(0, dtype=np.int64),
        )

    @staticmethod
    def concatenate(parts: Sequence["BatchOutcome"]) -> "BatchOutcome":
        """Stitch per-chunk outcomes back into one batch, in order.

        ``concatenate([])`` returns :meth:`empty`, whose column dtypes
        (bool / int64 x3) match every evaluator-produced outcome — so
        concatenating it with non-empty parts never widens or narrows
        a column.
        """
        if not parts:
            return BatchOutcome.empty()
        return BatchOutcome(
            success=np.concatenate([p.success for p in parts]),
            n_results=np.concatenate([p.n_results for p in parts]),
            messages=np.concatenate([p.messages for p in parts]),
            peers_probed=np.concatenate([p.peers_probed for p in parts]),
        )


def _validate_schedule(ttl_schedule: tuple[int, ...], min_results: int) -> None:
    """Shared schedule validation, mirroring ``expanding_ring_search``."""
    if min_results < 1:
        raise ValueError("min_results must be positive")
    if not ttl_schedule or any(t < 0 for t in ttl_schedule):
        raise ValueError("ttl_schedule must be non-empty and non-negative")
    if list(ttl_schedule) != sorted(ttl_schedule):
        raise ValueError("ttl_schedule must be non-decreasing")


def _evaluate_keys(
    cache: FloodDepthCache,
    match_key: Callable[[QueryKey], np.ndarray],
    instance_peer: np.ndarray,
    sources: np.ndarray,
    keys: Sequence[QueryKey | None],
    *,
    ttl_schedule: tuple[int, ...],
    min_results: int,
) -> BatchOutcome:
    """Evaluate canonical ``(source, key)`` pairs against shared caches.

    The coordinator and shm workers both run this core — only the
    cache/match providers differ — so serial and parallel evaluation
    are the same code path over the same pure per-query function.
    """
    n = sources.size
    success = np.zeros(n, dtype=bool)
    n_results = np.zeros(n, dtype=np.int64)
    messages = np.zeros(n, dtype=np.int64)
    peers_probed = np.zeros(n, dtype=np.int64)
    max_ttl = int(ttl_schedule[-1])
    for i in range(n):
        key = keys[i]
        hits = _EMPTY if key is None else match_key(key)
        entry = cache.entry(int(sources[i]), max_ttl)
        # Depth of each hit's peer; -1 (unreached) never passes a ring.
        # Stays in the narrow DEPTH_DTYPE — the ring comparisons below
        # never need to widen it.
        hit_depth = (
            entry.depth[instance_peer[hits]] if hits.size else _EMPTY_DEPTH
        )
        total = 0
        count = 0
        ttl = ttl_schedule[0]
        for ttl in ttl_schedule:
            total += entry.messages(ttl)
            if hit_depth.size:
                count = int(
                    np.count_nonzero((hit_depth >= 0) & (hit_depth <= ttl))
                )
            if count >= min_results:
                break
        success[i] = count > 0
        n_results[i] = count
        messages[i] = total
        peers_probed[i] = entry.reached(int(ttl))
    return BatchOutcome(
        success=success,
        n_results=n_results,
        messages=messages,
        peers_probed=peers_probed,
    )


#: Worker-side flood caches, one per attached topology spec, so every
#: chunk a pool worker runs reuses the BFS results of earlier chunks.
#: Bounded: a long-lived worker that evaluates many topologies keeps
#: only the most recent few, so retired topologies' depth maps (and
#: the attached views they pin, which would otherwise block the shm
#: attach-cache LRU from unmapping their segments) are released.
_WORKER_CACHES: "OrderedDict[object, FloodDepthCache]" = OrderedDict()
_WORKER_CACHE_MAX = 4


def _chunk_task(
    chunk: tuple[np.ndarray, list[QueryKey | None]],
    *,
    topo_spec: object,
    post_spec: object,
    ttl_schedule: tuple[int, ...],
    min_results: int,
) -> BatchOutcome:
    """Worker task: evaluate one contiguous slice of the batch.

    Attaches the shared topology and posting arrays (single-segment or
    term-sharded — the spec says which), pre-intersects the chunk's
    distinct keys in one batch-kernel pass, then runs the same pure
    core as the serial path with a worker-local flood cache.  Flood
    evaluation is deterministic, so the task runs with
    ``needs_rng=False``.
    """
    # Deferred import: repro.runtime sits above the overlay layer.
    from repro.runtime.shards import attach_postings_any
    from repro.runtime.shm import attach_topology

    sources, keys = chunk
    topology = attach_topology(topo_spec)  # type: ignore[arg-type]
    postings = attach_postings_any(post_spec)  # type: ignore[arg-type]
    cache = _WORKER_CACHES.get(topo_spec)
    if cache is None:
        cache = FloodDepthCache(topology)
        _WORKER_CACHES[topo_spec] = cache
        if len(_WORKER_CACHES) > _WORKER_CACHE_MAX:
            _WORKER_CACHES.popitem(last=False)
    else:
        _WORKER_CACHES.move_to_end(topo_spec)
    distinct = [k for k in dict.fromkeys(keys) if k is not None]
    memo: dict[QueryKey, np.ndarray] = dict(
        zip(distinct, intersect_postings_batch(postings, distinct))
    )

    def match_key(key: QueryKey) -> np.ndarray:
        return memo[key]

    return _evaluate_keys(
        cache,
        match_key,
        postings.instance_peer,
        sources,
        keys,
        ttl_schedule=ttl_schedule,
        min_results=min_results,
    )


class BatchQueryEngine:
    """Workload-scale evaluator over one topology + content index.

    Holds a persistent :class:`FloodDepthCache`, so successive batches
    (strategy comparisons, sensitivity sweeps) keep reusing BFS
    results.  One engine per ``(topology, content)`` pair; see
    :meth:`UnstructuredNetwork.batch_engine` for the cached accessor.
    """

    def __init__(
        self,
        topology: Topology,
        content: SharedContentIndex,
        *,
        flood_cache_entries: int = 256,
        depth_provider: DepthProvider | None = None,
        postings: PostingsProvider | None = None,
        topo_spec: object | None = None,
    ) -> None:
        if topology.n_nodes != content.n_peers:
            raise ValueError(
                f"topology has {topology.n_nodes} nodes but the trace has "
                f"{content.n_peers} peers"
            )
        if postings is not None and (
            postings.n_terms != content.term_index.n_terms
            or postings.n_instances != content.n_instances
        ):
            raise ValueError(
                f"postings provider covers {postings.n_terms} terms / "
                f"{postings.n_instances} instances but the content index has "
                f"{content.term_index.n_terms} / {content.n_instances}"
            )
        self.topology = topology
        self.content = content
        # Spec of an already-published SharedTopology wrapping the same
        # bytes as ``topology``.  A resident process (the serving loop)
        # publishes once at startup and passes the spec here, so the
        # fan-out path attaches instead of re-exporting the CSR arrays
        # on every batch.  The caller keeps the owner alive for the
        # engine's lifetime.
        self.topo_spec = topo_spec
        # Optional posting-list provider override (e.g. an attached
        # PostingShardSet): the serial path prefetches misses through
        # it, and the fan-out path reuses its already-published shm
        # segments instead of re-exporting the dense arrays.
        self.postings = postings
        # A depth provider (e.g. a ShardedFloodRunner) reroutes the
        # cache's BFS through the shard-parallel driver; outcomes stay
        # bitwise identical, so the serial evaluation path below needs
        # no other change.  The chunk fan-out path keeps its worker-
        # local single-segment caches — at the scales where sharding
        # matters, the engine runs serial-with-sharded-BFS instead.
        self.flood_cache = FloodDepthCache(
            topology,
            max_entries=flood_cache_entries,
            provider=depth_provider,
        )

    def evaluate(
        self,
        sources: np.ndarray,
        queries: Sequence[Sequence[str]],
        *,
        ttl_schedule: tuple[int, ...],
        min_results: int = 1,
        n_workers: int = 1,
    ) -> BatchOutcome:
        """Evaluate ``queries[i]`` flooded from ``sources[i]``.

        A single-TTL schedule reproduces :meth:`query_flood` exactly;
        a multi-TTL schedule reproduces ``expanding_ring_search``
        (cumulative messages, final-ring results).  ``n_workers > 1``
        fans contiguous chunks over a process pool with the topology
        and posting arrays in shared memory; results are
        bitwise-identical at every worker count.
        """
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        if sources.size != len(queries):
            raise ValueError(
                f"{sources.size} sources for {len(queries)} queries"
            )
        _validate_schedule(ttl_schedule, min_results)
        # Canonicalize on the coordinator: term strings never cross
        # the process boundary (workers see term-id keys only).
        keys = [self.content.query_key(q) for q in queries]
        return self.evaluate_keys(
            sources,
            keys,
            ttl_schedule=ttl_schedule,
            min_results=min_results,
            n_workers=n_workers,
        )

    def evaluate_keys(
        self,
        sources: np.ndarray,
        keys: Sequence[QueryKey | None],
        *,
        ttl_schedule: tuple[int, ...],
        min_results: int = 1,
        n_workers: int = 1,
    ) -> BatchOutcome:
        """:meth:`evaluate` over pre-canonicalized query keys."""
        sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
        _validate_schedule(ttl_schedule, min_results)
        registry = metrics()
        registry.inc("batch.batches")
        registry.inc("batch.queries", int(sources.size))
        with registry.timer("batch.evaluate"):
            return self._evaluate_keys_inner(
                sources,
                keys,
                ttl_schedule=ttl_schedule,
                min_results=min_results,
                n_workers=n_workers,
            )

    def _evaluate_keys_inner(
        self,
        sources: np.ndarray,
        keys: Sequence[QueryKey | None],
        *,
        ttl_schedule: tuple[int, ...],
        min_results: int,
        n_workers: int,
    ) -> BatchOutcome:
        # Deferred import: repro.runtime sits above the overlay layer.
        from repro.runtime.parallel import resolve_workers

        workers = min(resolve_workers(n_workers), sources.size)
        if workers <= 1 or sources.size <= 1:
            # Warm the match cache for every distinct miss in one
            # batch-kernel pass; the pure core below then only ever
            # takes cache hits.
            self.content.prefetch_keys(
                [k for k in keys if k is not None], provider=self.postings
            )
            return _evaluate_keys(
                self.flood_cache,
                self.content.match_key,
                self.content.instance_peer,
                sources,
                keys,
                ttl_schedule=ttl_schedule,
                min_results=min_results,
            )
        from repro.runtime.parallel import pmap
        from repro.runtime.shards import ShardedPostings
        from repro.runtime.shm import SharedPostings, SharedTopology

        bounds = np.linspace(0, sources.size, workers + 1).astype(np.int64)
        chunks = [
            (sources[lo:hi], list(keys[lo:hi]))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        with ExitStack() as stack:
            topo_spec = self.topo_spec
            if topo_spec is None:
                topo_spec = stack.enter_context(
                    SharedTopology(self.topology)
                ).spec
            post_spec = getattr(self.postings, "spec", None)
            if post_spec is None:
                if self.postings is not None:
                    # Unpublished provider (e.g. a locally-built shard
                    # set): publish it for the workers, preserving its
                    # shard layout.
                    post_spec = stack.enter_context(
                        ShardedPostings(self.postings)
                    ).spec
                else:
                    post_spec = stack.enter_context(
                        SharedPostings(self.content)
                    ).spec
            task = partial(
                _chunk_task,
                topo_spec=topo_spec,
                post_spec=post_spec,
                ttl_schedule=ttl_schedule,
                min_results=min_results,
            )
            parts = pmap(
                task, chunks,
                seed=0, key="query-batch", n_workers=workers, needs_rng=False,
            )
        return BatchOutcome.concatenate(parts)

    def evaluate_flood(
        self,
        sources: np.ndarray,
        queries: Sequence[Sequence[str]],
        *,
        ttl: int,
        n_workers: int = 1,
    ) -> BatchOutcome:
        """Batch equivalent of per-query :meth:`query_flood` calls."""
        return self.evaluate(
            sources, queries, ttl_schedule=(int(ttl),), n_workers=n_workers
        )

    def evaluate_expanding_ring(
        self,
        sources: np.ndarray,
        queries: Sequence[Sequence[str]],
        *,
        ttl_schedule: tuple[int, ...] = (1, 2, 3, 5),
        min_results: int = 1,
        n_workers: int = 1,
    ) -> BatchOutcome:
        """Batch equivalent of per-query ``expanding_ring_search``."""
        return self.evaluate(
            sources,
            queries,
            ttl_schedule=ttl_schedule,
            min_results=min_results,
            n_workers=n_workers,
        )
