"""Shared-content index: who shares what, term-matchable.

Bridges a :class:`~repro.tracegen.gnutella_trace.GnutellaShareTrace`
to the overlay: every shared instance is tokenized once (via
:class:`~repro.analysis.tokenize.TermIndex`) and posting lists map
term ids to the instances whose names contain them.  Query matching is
Gnutella semantics: a file matches when its name contains *all* query
terms; a peer responds with its matching files.

Two evaluation paths share one core:

* :meth:`SharedContentIndex.match` — one query at a time, memoized
  through a bounded LRU keyed by the query's term-id tuple, so the
  Zipf-repeated popular queries that dominate real workloads
  re-intersect their posting lists only once per process;
* :meth:`SharedContentIndex.match_batch` — a whole workload at once,
  deduplicated by term-id tuple and returned as one
  :class:`BatchMatches` CSR structure instead of N Python-level
  ``np.intersect1d`` passes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tokenize import TermIndex
from repro.obs import metrics
from repro.tracegen.gnutella_trace import GnutellaShareTrace

__all__ = [
    "BatchMatches",
    "QueryKey",
    "SharedContentIndex",
    "intersect_postings",
]

#: Canonical query identity: sorted distinct term ids.  ``None`` marks
#: a query containing an unknown term (it can match no file).
QueryKey = tuple[int, ...]

#: Bound on the per-index memoized match cache (distinct queries).
_MATCH_CACHE_MAX = 4096


def intersect_postings(
    posting_offsets: np.ndarray,
    posting_instances: np.ndarray,
    key: tuple[int, ...],
) -> np.ndarray:
    """AND-intersect the posting lists of a canonical query key.

    Pure function of the CSR posting arrays, so shared-memory workers
    can evaluate queries against attached posting segments without a
    :class:`SharedContentIndex` instance.  ``key`` must hold distinct,
    in-range term ids; the shortest posting list is intersected first.
    """
    postings = sorted(
        (
            posting_instances[posting_offsets[t] : posting_offsets[t + 1]]
            for t in key
        ),
        key=len,
    )
    result = postings[0]
    for p in postings[1:]:
        if result.size == 0:
            break
        result = np.intersect1d(result, p, assume_unique=True)
    return result


@dataclass(frozen=True)
class BatchMatches:
    """Oracle match sets of a query batch, deduplicated, in CSR form.

    ``distinct_index[i]`` names the row of the distinct-query CSR
    (``offsets``/``instances``) holding query ``i``'s matches, so
    repeated queries share one stored match set.  Rows are sorted
    instance-id arrays, bitwise equal to what
    :meth:`SharedContentIndex.match` returns for the same query.
    """

    distinct_index: np.ndarray
    offsets: np.ndarray
    instances: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.distinct_index.size

    @property
    def n_distinct(self) -> int:
        """Number of distinct queries actually evaluated."""
        return self.offsets.size - 1

    @property
    def counts(self) -> np.ndarray:
        """Matching-instance count per query (oracle result counts)."""
        return np.diff(self.offsets)[self.distinct_index]

    def query_instances(self, i: int) -> np.ndarray:
        """Sorted matching instance ids of query ``i``."""
        d = int(self.distinct_index[i])
        return self.instances[self.offsets[d] : self.offsets[d + 1]]

    def distinct_instances(self, d: int) -> np.ndarray:
        """Sorted matching instance ids of distinct row ``d``."""
        return self.instances[self.offsets[d] : self.offsets[d + 1]]


class SharedContentIndex:
    """Inverted index over shared-file instances.

    Attributes
    ----------
    instance_peer:
        peer id per instance.
    term_index:
        tokenization of the distinct observed names.
    """

    def __init__(self, trace: GnutellaShareTrace) -> None:
        self.trace = trace
        self.n_peers = trace.n_peers
        self.instance_peer = trace.peer_of_instance
        self.term_index = TermIndex(trace.unique_names())
        terms, origin = self.term_index.expand(trace.name_ids)
        # Deduplicate repeated terms within one instance's name.
        pairs = np.unique(terms * trace.n_instances + origin)
        terms = pairs // trace.n_instances
        origin = pairs % trace.n_instances
        order = np.argsort(terms, kind="stable")
        self._posting_terms = terms[order]
        self._posting_instances = origin[order]
        counts = np.bincount(terms, minlength=self.term_index.n_terms)
        self._posting_offsets = np.zeros(self.term_index.n_terms + 1, dtype=np.int64)
        np.cumsum(counts, out=self._posting_offsets[1:])
        #: bounded LRU over distinct query keys -> match arrays.
        self._match_cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()

    def __getstate__(self) -> dict[str, object]:
        # The memo cache is pure derived state; keep pickles (e.g. the
        # on-disk artifact cache) lean and deterministic.
        state = dict(self.__dict__)
        state["_match_cache"] = OrderedDict()
        return state

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        return self.trace.n_instances

    def term_id(self, term: str) -> int | None:
        """Term id for a string, or ``None`` if the term matches nothing."""
        return self.term_index.terms.get(term)

    def posting(self, term_id: int) -> np.ndarray:
        """Sorted instance ids whose names contain ``term_id``."""
        lo = self._posting_offsets[term_id]
        hi = self._posting_offsets[term_id + 1]
        return self._posting_instances[lo:hi]

    def term_peer_counts(self) -> np.ndarray:
        """Distinct-peer count per term — the paper's Fig. 3 quantity."""
        peers = self.instance_peer[self._posting_instances]
        pairs = np.unique(self._posting_terms * self.n_peers + peers)
        return np.bincount(
            (pairs // self.n_peers).astype(np.int64),
            minlength=self.term_index.n_terms,
        )

    def query_key(self, terms: Sequence[str]) -> tuple[int, ...] | None:
        """Canonical identity of a query: sorted distinct term ids.

        ``None`` means the query contains a term absent from every
        shared name and therefore matches nothing.  Raises on an empty
        query, mirroring :meth:`match`.
        """
        if not terms:
            raise ValueError("a query needs at least one term")
        ids = set()
        for t in terms:
            tid = self.term_index.terms.get(t)
            if tid is None:
                return None
            ids.add(tid)
        return tuple(sorted(ids))

    def match_key(self, key: tuple[int, ...]) -> np.ndarray:
        """Matching instances for a canonical key, memoized.

        The cache is a bounded LRU over distinct keys; under a Zipf
        workload the popular repeated queries stay resident and cost
        one dict hit instead of a posting-list intersection.  Returned
        arrays are shared — treat them as read-only.
        """
        registry = metrics()
        cached = self._match_cache.get(key)
        if cached is not None:
            self._match_cache.move_to_end(key)
            registry.inc("match.cache.hits")
            return cached
        registry.inc("match.cache.misses")
        result = intersect_postings(
            self._posting_offsets, self._posting_instances, key
        )
        self._match_cache[key] = result
        if len(self._match_cache) > _MATCH_CACHE_MAX:
            self._match_cache.popitem(last=False)
            registry.inc("match.cache.evictions")
        return result

    def match(self, terms: Sequence[str]) -> np.ndarray:
        """Instances whose names contain all ``terms`` (AND semantics).

        Returns a sorted instance-id array; empty if any term is
        unknown (an unknown term can match no file).
        """
        key = self.query_key(terms)
        if key is None:
            return np.empty(0, dtype=np.int64)
        return self.match_key(key)

    def match_batch(self, queries: Sequence[Sequence[str]]) -> BatchMatches:
        """Evaluate a workload of queries in one deduplicated pass.

        Queries are deduplicated by term-id tuple, each distinct query
        is intersected once (through the memoized cache), and the
        per-query match sets come back as one :class:`BatchMatches`
        CSR structure.  Row ``i`` equals ``match(queries[i])`` bitwise;
        a query with an unknown term gets an empty row; an empty query
        raises, as :meth:`match` does.
        """
        distinct_index = np.zeros(len(queries), dtype=np.int64)
        slot_of: dict[tuple[int, ...] | None, int] = {}
        rows: list[np.ndarray] = []
        for i, q in enumerate(queries):
            key = self.query_key(q)
            slot = slot_of.get(key)
            if slot is None:
                slot = len(rows)
                slot_of[key] = slot
                if key is None:
                    rows.append(np.empty(0, dtype=np.int64))
                else:
                    rows.append(self.match_key(key))
            distinct_index[i] = slot
        lengths = np.fromiter(
            (r.size for r in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        instances = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        return BatchMatches(
            distinct_index=distinct_index, offsets=offsets, instances=instances
        )

    def matching_peers(self, terms: Sequence[str]) -> np.ndarray:
        """Distinct peers holding at least one file matching ``terms``."""
        return np.unique(self.instance_peer[self.match(terms)])

    def peer_results(self, terms: Sequence[str], peer_mask: np.ndarray) -> np.ndarray:
        """Matching instances restricted to peers where ``peer_mask`` is True."""
        hits = self.match(terms)
        return hits[peer_mask[self.instance_peer[hits]]]
