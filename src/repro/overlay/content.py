"""Shared-content index: who shares what, term-matchable.

Bridges a :class:`~repro.tracegen.gnutella_trace.GnutellaShareTrace`
to the overlay: every shared instance is tokenized once (via
:class:`~repro.analysis.tokenize.TermIndex`) and posting lists map
term ids to the instances whose names contain them.  Query matching is
Gnutella semantics: a file matches when its name contains *all* query
terms; a peer responds with its matching files.

Three evaluation paths share one core:

* :meth:`SharedContentIndex.match` — one query at a time, memoized
  through a bounded LRU keyed by the query's term-id tuple, so the
  Zipf-repeated popular queries that dominate real workloads
  re-intersect their posting lists only once per process;
* :meth:`SharedContentIndex.match_batch` — a whole workload at once,
  deduplicated by term-id tuple and returned as one
  :class:`BatchMatches` CSR structure;
* :func:`intersect_postings_batch` — the flat kernel underneath: all
  distinct queries' posting lists gathered into one concatenated
  buffer and AND-intersected in whole-batch numpy passes
  (shortest-list-first, a sort-free membership merge per pass) instead
  of N Python-level ``np.intersect1d`` loops.

Posting storage is pluggable behind :class:`PostingsProvider`:
:class:`DensePostings` is the single-segment CSR view every index
carries; :func:`partition_postings` splits the term-id space into
contiguous ranges (:class:`PostingShardSet`) with re-based
``INDEX_DTYPE`` offsets, mirroring ``overlay.sharding`` for
topologies, so ``runtime.shards`` can publish each segment to shared
memory on its own.  Results are bitwise-identical for every provider
and shard count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, Sequence, cast

import numpy as np

from repro.analysis.tokenize import TermIndex
from repro.obs import metrics
from repro.overlay.topology import INDEX_DTYPE, shard_bounds
from repro.tracegen.gnutella_trace import GnutellaShareTrace
from repro.utils.stats import encode_pairs, ragged_arange

__all__ = [
    "BatchMatches",
    "DensePostings",
    "PostingShard",
    "PostingShardSet",
    "PostingsProvider",
    "QueryKey",
    "SharedContentIndex",
    "intersect_postings",
    "intersect_postings_batch",
    "partition_postings",
]

#: Canonical query identity: sorted distinct term ids.  ``None`` marks
#: a query containing an unknown term (it can match no file).
QueryKey = tuple[int, ...]

#: Bound on the per-index memoized match cache (distinct queries).
_MATCH_CACHE_MAX = 4096


def _check_posting_width(n_terms: int, n_instances: int, n_entries: int) -> None:
    """Raise if posting counts exceed the index element dtype.

    Reads the module-global ``INDEX_DTYPE`` at call time so boundary
    tests can narrow it; the counts in the message are the quantities
    a caller must shrink (or the dtype they must widen).
    """
    limit = int(np.iinfo(INDEX_DTYPE).max)
    if max(n_terms, n_instances - 1, n_entries) > limit:
        raise OverflowError(
            f"content index with {n_terms} terms, {n_instances} instances and "
            f"{n_entries} posting entries exceeds the index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )


class PostingsProvider(Protocol):
    """Read access to CSR posting lists, storage-agnostic.

    ``SharedContentIndex`` and the batch kernel consume this protocol
    only, so postings may live in local arrays (:class:`DensePostings`),
    term-sharded segments (:class:`PostingShardSet`), or attached
    shared memory, with bitwise-identical results.
    """

    @property
    def n_terms(self) -> int:
        """Number of term ids covered."""
        ...

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        ...

    @property
    def instance_peer(self) -> np.ndarray:
        """Peer id per instance."""
        ...

    def posting_lengths(self, term_ids: np.ndarray) -> np.ndarray:
        """int64 posting-list length per requested term id."""
        ...

    def gather_postings(self, term_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posting lists of ``term_ids``, concatenated in request order.

        Returns ``(offsets, instances)`` where row ``i`` of the CSR
        pair is the sorted posting list of ``term_ids[i]``.
        """
        ...


@dataclass(frozen=True, eq=False)
class DensePostings:
    """Single-segment CSR postings: the provider every index carries.

    ``posting_instances[posting_offsets[t]:posting_offsets[t+1]]`` are
    the sorted instance ids whose names contain term ``t``.  Field
    order matches :class:`~repro.runtime.shm.SharedPostingsSpec` so the
    shm attach path can construct it positionally.
    """

    posting_offsets: np.ndarray
    posting_instances: np.ndarray
    instance_peer: np.ndarray

    @property
    def n_terms(self) -> int:
        """Number of term ids covered."""
        return self.posting_offsets.size - 1

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        return self.instance_peer.size

    def posting_lengths(self, term_ids: np.ndarray) -> np.ndarray:
        """int64 posting-list length per requested term id."""
        term_ids = np.asarray(term_ids, dtype=np.int64)
        offsets = self.posting_offsets
        return offsets[term_ids + 1].astype(np.int64) - offsets[term_ids]

    def gather_postings(self, term_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posting lists of ``term_ids``, concatenated in request order."""
        term_ids = np.asarray(term_ids, dtype=np.int64)
        starts = self.posting_offsets[term_ids].astype(np.int64)
        lengths = self.posting_lengths(term_ids)
        offsets = np.zeros(term_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        src = np.repeat(starts, lengths) + ragged_arange(lengths)
        return offsets, self.posting_instances[src]


@dataclass(frozen=True, eq=False)
class PostingShard:
    """Posting lists of the contiguous term range ``[lo, hi)``.

    ``offsets`` is re-based to the segment (``offsets[0] == 0``) and
    narrowed to ``INDEX_DTYPE``; ``instances`` holds *global* instance
    ids, so shard results never need translation.
    """

    lo: int
    hi: int
    offsets: np.ndarray
    instances: np.ndarray


@dataclass(frozen=True, eq=False)
class PostingShardSet:
    """Contiguous term-range shards of one posting index.

    ``bounds[s] <= t < bounds[s+1]`` maps term ``t`` to ``shards[s]``.
    ``spec`` carries the shm publication handle when the set is backed
    by shared segments (``runtime.shards.ShardedPostings``) so worker
    fan-out can forward it without re-publishing.
    """

    bounds: np.ndarray
    shards: tuple[PostingShard, ...]
    instance_peer: np.ndarray
    spec: object | None = None

    @property
    def n_shards(self) -> int:
        """Number of term-range segments."""
        return len(self.shards)

    @property
    def n_terms(self) -> int:
        """Number of term ids covered."""
        return int(self.bounds[-1])

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        return self.instance_peer.size

    def shard_of(self, term_ids: np.ndarray) -> np.ndarray:
        """Owning shard index per term id."""
        ids = np.asarray(term_ids, dtype=np.int64)
        return np.searchsorted(self.bounds, ids, side="right") - 1

    def posting_lengths(self, term_ids: np.ndarray) -> np.ndarray:
        """int64 posting-list length per requested term id."""
        term_ids = np.asarray(term_ids, dtype=np.int64)
        owner = self.shard_of(term_ids)
        lengths = np.zeros(term_ids.size, dtype=np.int64)
        for s in np.unique(owner):
            shard = self.shards[int(s)]
            sel = owner == s
            local = term_ids[sel] - shard.lo
            lengths[sel] = shard.offsets[local + 1].astype(np.int64) - shard.offsets[local]
        return lengths

    def gather_postings(self, term_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posting lists of ``term_ids``, concatenated in request order."""
        term_ids = np.asarray(term_ids, dtype=np.int64)
        owner = self.shard_of(term_ids)
        lengths = self.posting_lengths(term_ids)
        offsets = np.zeros(term_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        payload_dtype = self.shards[0].instances.dtype if self.shards else INDEX_DTYPE
        out = np.empty(int(offsets[-1]), dtype=payload_dtype)
        for s in np.unique(owner):
            shard = self.shards[int(s)]
            sel = owner == s
            lens = lengths[sel]
            starts = shard.offsets[term_ids[sel] - shard.lo].astype(np.int64)
            src = np.repeat(starts, lens) + ragged_arange(lens)
            dst = np.repeat(offsets[:-1][sel], lens) + ragged_arange(lens)
            out[dst] = shard.instances[src]
        return offsets, out


def partition_postings(
    source: "SharedContentIndex | DensePostings", n_shards: int
) -> PostingShardSet:
    """Split a posting index into contiguous term-range shards.

    Mirrors :func:`repro.overlay.sharding.partition_topology`: term ids
    are cut into ``min(n_shards, n_terms)`` near-equal contiguous
    ranges, each shard's offsets re-based to its own segment and
    narrowed to ``INDEX_DTYPE`` behind an explicit ``OverflowError``
    guard.  Shard payloads are views into the source arrays — the split
    allocates only the small re-based offset arrays.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    dense = source.dense_postings() if isinstance(source, SharedContentIndex) else source
    bounds = shard_bounds(dense.n_terms, n_shards)
    limit = int(np.iinfo(INDEX_DTYPE).max)
    global_offsets = dense.posting_offsets
    shards = []
    for s in range(bounds.size - 1):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        start, stop = int(global_offsets[lo]), int(global_offsets[hi])
        if stop - start > limit:
            raise OverflowError(
                f"posting shard {s} (terms [{lo}, {hi})) holds {stop - start} "
                f"entries, exceeding the index dtype {INDEX_DTYPE.name} "
                f"(max {limit}); use more shards or widen INDEX_DTYPE"
            )
        offsets = (
            global_offsets[lo : hi + 1].astype(np.int64) - start
        ).astype(INDEX_DTYPE)
        instances = dense.posting_instances[start:stop]
        shards.append(PostingShard(lo=lo, hi=hi, offsets=offsets, instances=instances))
    return PostingShardSet(
        bounds=bounds, shards=tuple(shards), instance_peer=dense.instance_peer
    )


def intersect_postings(
    posting_offsets: np.ndarray,
    posting_instances: np.ndarray,
    key: tuple[int, ...],
) -> np.ndarray:
    """AND-intersect the posting lists of a canonical query key.

    Pure function of the CSR posting arrays, so shared-memory workers
    can evaluate queries against attached posting segments without a
    :class:`SharedContentIndex` instance.  ``key`` must hold distinct,
    in-range term ids; the shortest posting list is intersected first.
    This is the scalar reference path — batch callers go through
    :func:`intersect_postings_batch`.
    """
    postings = sorted(
        (
            posting_instances[posting_offsets[t] : posting_offsets[t + 1]]
            for t in key
        ),
        key=len,
    )
    result = postings[0]
    for p in postings[1:]:
        if result.size == 0:
            break
        result = np.intersect1d(result, p, assume_unique=True)
    return result


def intersect_postings_batch(
    provider: PostingsProvider, keys: Sequence[QueryKey]
) -> list[np.ndarray]:
    """AND-intersect every key's posting lists in grouped batch passes.

    The flat kernel behind :meth:`SharedContentIndex.match_batch`.
    Row ``i`` is bitwise-identical to
    ``intersect_postings(..., keys[i])`` — same instances, same order,
    same dtype.  Keys must hold distinct, in-range term ids.

    The speedup over the per-key ``np.intersect1d`` loop comes from
    three structural facts about Zipf query batches:

    * single-term keys resolve to zero-copy posting-list views;
    * multi-term keys *share* their popular non-seed terms, so keys
      are grouped by first filter term and each group's posting list
      is visited exactly once — painted into an epoch-stamped byte
      scratch, or binary-searched when the group is seed-light — while
      the per-key loop re-sorts that same list for every key;
    * almost no candidates survive the first filter, so later passes
      resolve with one vectorized binary search over the survivors
      instead of materializing the longest posting lists at all.
    """
    n_keys = len(keys)
    if n_keys == 0:
        return []
    key_lens = np.fromiter((len(key) for key in keys), dtype=np.int64, count=n_keys)
    if key_lens.min() < 1:
        raise ValueError("a query needs at least one term")
    total_terms = int(key_lens.sum())
    terms_flat = np.fromiter(
        (t for key in keys for t in key), dtype=np.int64, count=total_terms
    )
    if isinstance(provider, DensePostings):
        # Global CSR: slice the provider's arrays directly.
        offsets = provider.posting_offsets.astype(np.int64)
        instances = provider.posting_instances
        local = terms_flat
    else:
        # One bulk gather of the distinct terms builds a local CSR the
        # rest of the kernel treats exactly like the dense case.
        uniq, local = np.unique(terms_flat, return_inverse=True)
        off32, instances = provider.gather_postings(uniq)
        offsets = off32.astype(np.int64)
    lens = offsets[local + 1] - offsets[local]
    key_starts = np.zeros(n_keys + 1, dtype=np.int64)
    np.cumsum(key_lens, out=key_starts[1:])
    key_of_term = np.repeat(np.arange(n_keys, dtype=np.int64), key_lens)
    # Shortest-list-first within each key, matching the scalar path.
    order = np.lexsort((lens, key_of_term))
    local_sorted = local[order]
    seeds = local_sorted[key_starts[:-1]]
    rows: list[np.ndarray | None] = [None] * n_keys
    for i in np.flatnonzero(key_lens == 1):
        t = int(seeds[i])
        rows[i] = instances[int(offsets[t]) : int(offsets[t + 1])]
    multi = np.flatnonzero(key_lens > 1)
    if multi.size == 0:
        return cast("list[np.ndarray]", rows)

    # Pass 1, grouped by first filter term: scatter each group's list
    # into the scratch once, test every member key's seed against it.
    first = local_sorted[key_starts[multi] + 1]
    grp = np.argsort(first, kind="stable")
    morder = multi[grp]
    first = first[grp]
    seed_g = seeds[morder]
    seed_lens = offsets[seed_g + 1] - offsets[seed_g]
    cand = np.concatenate(
        [instances[int(offsets[t]) : int(offsets[t + 1])] for t in seed_g]
    )
    cand_starts = np.zeros(morder.size + 1, dtype=np.int64)
    np.cumsum(seed_lens, out=cand_starts[1:])
    bounds = np.flatnonzero(np.r_[True, first[1:] != first[:-1], True])
    group_terms = first[bounds[:-1]]
    group_lens = offsets[group_terms + 1] - offsets[group_terms]
    group_cands = cand_starts[bounds[1:]] - cand_starts[bounds[:-1]]
    # Per-group cost model: scattering a list of length L costs one
    # write plus one reset per entry; a binary search costs a deep
    # cache-missing probe chain per candidate.  Seed-light groups with
    # heavy lists (L > 8*S) search the list instead of painting it —
    # and their lists then never need to be materialized at all.
    use_search = group_lens > 8 * group_cands
    # Widen the candidate gather index once — fancy indexing would
    # copy each int32 chunk to intp per call otherwise.
    cand64 = cand.astype(np.int64)
    found = np.empty(cand.size, dtype=bool)
    # A byte-wide scratch keeps the randomly-accessed working set small
    # enough to stay cache-resident; stamping each group with its own
    # epoch byte makes stale marks harmless, so the per-group reset
    # scatter (as expensive as the paint itself) disappears — one bulk
    # memset every 255 groups is all the cleaning left.  Allocated
    # through the sanitizer so REPRO_SANITIZE=shm poisons it on release
    # (stale reuse breaks bitwise parity loudly instead of silently).
    from repro.runtime.sanitize import scratch_alloc, scratch_release

    scratch = scratch_alloc(provider.n_instances, np.uint8)
    epoch = 0
    try:
        for b in range(bounds.size - 1):
            c0 = int(cand_starts[int(bounds[b])])
            c1 = int(cand_starts[int(bounds[b + 1])])
            if use_search[b]:
                t = int(group_terms[b])
                seg = instances[int(offsets[t]) : int(offsets[t + 1])]
                vals = cand[c0:c1]
                idx = np.searchsorted(seg, vals)
                inb = idx < seg.size
                found[c0:c1] = inb & (seg[np.minimum(idx, seg.size - 1)] == vals)
            else:
                epoch += 1
                if epoch == 256:
                    scratch[:] = 0
                    epoch = 1
                t = int(group_terms[b])
                seg = instances[int(offsets[t]) : int(offsets[t + 1])]
                scratch[seg] = epoch
                found[c0:c1] = scratch[cand64[c0:c1]] == epoch
    finally:
        scratch_release(scratch)
    # Survivors per seed slot: a segmented count beats materializing a
    # candidate-wide slot-id repeat (pass-1 kills ~97% of candidates).
    cand = cand[found]
    if int(seed_lens.min()) > 0:
        slot_counts = np.add.reduceat(found, cand_starts[:-1], dtype=np.int64)
        key_slot = np.repeat(np.arange(morder.size, dtype=np.int64), slot_counts)
    else:  # empty posting list in a provider-supplied CSR
        key_slot = np.repeat(np.arange(morder.size, dtype=np.int64), seed_lens)[found]

    # Passes >= 2: the surviving candidates binary-search their key's
    # p-th list in place — no posting list is materialized again.
    max_terms = int(key_lens.max())
    for p in range(2, max_terms):
        if cand.size == 0:
            break
        term_of_slot = np.full(morder.size, -1, dtype=np.int64)
        has = np.flatnonzero(key_lens[morder] > p)
        term_of_slot[has] = local_sorted[key_starts[morder[has]] + p]
        t_of_cand = term_of_slot[key_slot]
        active = t_of_cand >= 0
        if not active.any():
            continue
        ta = t_of_cand[active]
        lo, hi = offsets[ta], offsets[ta + 1]
        stop = hi
        vals = cand[active]
        width = int((hi - lo).max())
        for _ in range(max(width, 1).bit_length()):
            mid = (lo + hi) >> 1
            probe = instances[np.minimum(mid, instances.size - 1)]
            less = probe < vals
            lo = np.where(less, mid + 1, lo)
            hi = np.where(less, hi, mid)
        in_seg = lo < stop
        hit = instances[np.minimum(lo, instances.size - 1)] == vals
        keep = ~active
        keep[active] = in_seg & hit
        cand = cand[keep]
        key_slot = key_slot[keep]

    counts = np.bincount(key_slot, minlength=morder.size)
    row_offsets = np.zeros(morder.size + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    for j, i in enumerate(morder):
        rows[i] = cand[row_offsets[j] : row_offsets[j + 1]]
    return cast("list[np.ndarray]", rows)


def _stream_postings(
    trace: GnutellaShareTrace, term_index: TermIndex, block: int, n_shards: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build CSR postings block-by-block without the full pair array.

    Instances are tokenized in ``block``-sized slices; each slice's
    ``(term, origin)`` pairs are deduplicated locally (a term repeats
    only within one instance's name, and an instance lives in exactly
    one block, so local dedup equals global dedup), narrowed to
    ``INDEX_DTYPE`` and appended to the owning term-range shard.  One
    stable per-shard sort then yields exactly the arrays the in-memory
    path produces — bitwise-identical output, peak transient memory
    bounded by the narrowed chunks instead of the whole int64
    ``terms``/``origin`` expansion.
    """
    if block < 1:
        raise ValueError(f"stream_block must be positive, got {block}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n_terms = term_index.n_terms
    _check_posting_width(n_terms, trace.n_instances, 0)
    bounds = shard_bounds(n_terms, n_shards)
    n_segments = bounds.size - 1
    term_chunks: list[list[np.ndarray]] = [[] for _ in range(n_segments)]
    origin_chunks: list[list[np.ndarray]] = [[] for _ in range(n_segments)]
    for lo in range(0, trace.n_instances, block):
        hi = min(lo + block, trace.n_instances)
        terms, origin = term_index.expand(trace.name_ids[lo:hi])
        width = hi - lo
        pairs = np.unique(
            encode_pairs(terms, origin, width, what="term/instance pairs")
        )
        terms = pairs // width
        origin = pairs % width + lo
        cuts = np.searchsorted(terms, bounds[1:-1])
        for s, (t, o) in enumerate(
            zip(np.split(terms, cuts), np.split(origin, cuts))
        ):
            if t.size:
                term_chunks[s].append(t.astype(INDEX_DTYPE))
                origin_chunks[s].append(o.astype(INDEX_DTYPE))
    counts = np.zeros(n_terms, dtype=np.int64)
    segments: list[np.ndarray] = []
    for s in range(n_segments):
        if not term_chunks[s]:
            continue
        t_all = np.concatenate(term_chunks[s])
        o_all = np.concatenate(origin_chunks[s])
        term_chunks[s] = []
        origin_chunks[s] = []
        counts += np.bincount(t_all, minlength=n_terms)
        # Chunks arrive in ascending-origin block order, so a stable
        # sort by term leaves each posting list sorted.
        segments.append(o_all[np.argsort(t_all, kind="stable")])
    offsets = np.zeros(n_terms + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    instances = (
        np.concatenate(segments) if segments else np.empty(0, dtype=INDEX_DTYPE)
    )
    return offsets, instances


@dataclass(frozen=True)
class BatchMatches:
    """Oracle match sets of a query batch, deduplicated, in CSR form.

    ``distinct_index[i]`` names the row of the distinct-query CSR
    (``offsets``/``instances``) holding query ``i``'s matches, so
    repeated queries share one stored match set.  Rows are sorted
    instance-id arrays, bitwise equal to what
    :meth:`SharedContentIndex.match` returns for the same query.
    """

    distinct_index: np.ndarray
    offsets: np.ndarray
    instances: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.distinct_index.size

    @property
    def n_distinct(self) -> int:
        """Number of distinct queries actually evaluated."""
        return self.offsets.size - 1

    @property
    def counts(self) -> np.ndarray:
        """Matching-instance count per query (oracle result counts)."""
        return np.diff(self.offsets)[self.distinct_index]

    def query_instances(self, i: int) -> np.ndarray:
        """Sorted matching instance ids of query ``i``."""
        d = int(self.distinct_index[i])
        return self.instances[self.offsets[d] : self.offsets[d + 1]]

    def distinct_instances(self, d: int) -> np.ndarray:
        """Sorted matching instance ids of distinct row ``d``."""
        return self.instances[self.offsets[d] : self.offsets[d + 1]]


class SharedContentIndex:
    """Inverted index over shared-file instances.

    ``stream_block``/``n_shards`` are execution knobs only: the
    streaming builder accumulates per-shard ``INDEX_DTYPE`` posting
    chunks instead of materializing the full int64 term/origin pair
    array, but the resulting index is bitwise-identical to the
    in-memory build, so neither knob participates in artifact-cache
    digests.

    Attributes
    ----------
    instance_peer:
        peer id per instance.
    term_index:
        tokenization of the distinct observed names.
    """

    def __init__(
        self,
        trace: GnutellaShareTrace,
        *,
        stream_block: int | None = None,
        n_shards: int = 1,
    ) -> None:
        self.trace = trace
        self.n_peers = trace.n_peers
        self.instance_peer = trace.peer_of_instance
        self.term_index = TermIndex(trace.unique_names())
        _check_posting_width(self.term_index.n_terms, trace.n_instances, 0)
        if stream_block is None:
            terms, origin = self.term_index.expand(trace.name_ids)
            # Deduplicate repeated terms within one instance's name.
            pairs = np.unique(
                encode_pairs(
                    terms, origin, trace.n_instances, what="term/instance pairs"
                )
            )
            terms = pairs // trace.n_instances
            origin = pairs % trace.n_instances
            instances = origin[np.argsort(terms, kind="stable")]
            counts = np.bincount(terms, minlength=self.term_index.n_terms)
            offsets = np.zeros(self.term_index.n_terms + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
        else:
            offsets, instances = _stream_postings(
                trace, self.term_index, stream_block, n_shards
            )
        _check_posting_width(
            self.term_index.n_terms, trace.n_instances, int(offsets[-1])
        )
        self._posting_offsets = offsets.astype(INDEX_DTYPE, copy=False)
        self._posting_instances = instances.astype(INDEX_DTYPE, copy=False)
        #: provider override installed via :meth:`use_postings`.
        self._postings: PostingsProvider | None = None
        #: bounded LRU over distinct query keys -> match arrays.
        self._match_cache: OrderedDict[tuple[int, ...], np.ndarray] = OrderedDict()

    def __getstate__(self) -> dict[str, object]:
        # The memo cache and provider override are derived/runtime
        # state; keep pickles (e.g. the on-disk artifact cache) lean
        # and deterministic.
        state = dict(self.__dict__)
        state["_match_cache"] = OrderedDict()
        state["_postings"] = None
        return state

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        return self.trace.n_instances

    @property
    def _posting_terms(self) -> np.ndarray:
        """Term id per posting entry (derived from the CSR offsets)."""
        return np.repeat(
            np.arange(self.term_index.n_terms, dtype=INDEX_DTYPE),
            np.diff(self._posting_offsets),
        )

    def dense_postings(self) -> DensePostings:
        """The index's own single-segment posting arrays as a provider."""
        return DensePostings(
            posting_offsets=self._posting_offsets,
            posting_instances=self._posting_instances,
            instance_peer=self.instance_peer,
        )

    @property
    def postings(self) -> PostingsProvider:
        """Active posting provider (dense unless overridden)."""
        if self._postings is None:
            self._postings = self.dense_postings()
        return self._postings

    def use_postings(self, provider: PostingsProvider | None) -> None:
        """Serve future (uncached) matches from ``provider``.

        ``None`` restores the index's own dense arrays.  The provider
        must describe the same postings — results are memoized across
        the switch.
        """
        if provider is not None and (
            provider.n_terms != self.term_index.n_terms
            or provider.n_instances != self.n_instances
        ):
            raise ValueError(
                f"provider covers {provider.n_terms} terms / "
                f"{provider.n_instances} instances, index has "
                f"{self.term_index.n_terms} / {self.n_instances}"
            )
        self._postings = provider

    def term_id(self, term: str) -> int | None:
        """Term id for a string, or ``None`` if the term matches nothing."""
        return self.term_index.terms.get(term)

    def posting(self, term_id: int) -> np.ndarray:
        """Sorted instance ids whose names contain ``term_id``."""
        lo = self._posting_offsets[term_id]
        hi = self._posting_offsets[term_id + 1]
        return self._posting_instances[lo:hi]

    def term_peer_counts(self) -> np.ndarray:
        """Distinct-peer count per term — the paper's Fig. 3 quantity."""
        peers = self.instance_peer[self._posting_instances]
        pairs = np.unique(
            encode_pairs(
                self._posting_terms, peers, self.n_peers, what="term/peer pairs"
            )
        )
        return np.bincount(
            pairs // self.n_peers, minlength=self.term_index.n_terms
        )

    def query_key(self, terms: Sequence[str]) -> tuple[int, ...] | None:
        """Canonical identity of a query: sorted distinct term ids.

        ``None`` means the query contains a term absent from every
        shared name and therefore matches nothing.  Raises on an empty
        query, mirroring :meth:`match`.
        """
        if not terms:
            raise ValueError("a query needs at least one term")
        ids = set()
        for t in terms:
            tid = self.term_index.terms.get(t)
            if tid is None:
                return None
            ids.add(tid)
        return tuple(sorted(ids))

    def _cache_store(self, key: tuple[int, ...], result: np.ndarray) -> None:
        """Insert one match result into the bounded LRU."""
        self._match_cache[key] = result
        if len(self._match_cache) > _MATCH_CACHE_MAX:
            self._match_cache.popitem(last=False)
            metrics().inc("match.cache.evictions")

    def match_key(self, key: tuple[int, ...]) -> np.ndarray:
        """Matching instances for a canonical key, memoized.

        The cache is a bounded LRU over distinct keys; under a Zipf
        workload the popular repeated queries stay resident and cost
        one dict hit instead of a posting-list intersection.  Returned
        arrays are shared — treat them as read-only.
        """
        registry = metrics()
        cached = self._match_cache.get(key)
        if cached is not None:
            self._match_cache.move_to_end(key)
            registry.inc("match.cache.hits")
            return cached
        registry.inc("match.cache.misses")
        if self._postings is None:
            result = intersect_postings(
                self._posting_offsets, self._posting_instances, key
            )
        else:
            result = intersect_postings_batch(self._postings, [key])[0]
        self._cache_store(key, result)
        return result

    def match_keys(
        self,
        keys: Sequence[tuple[int, ...]],
        provider: PostingsProvider | None = None,
    ) -> list[np.ndarray]:
        """Matching instances per canonical key, batch-kernel backed.

        Cache hits are served from the LRU; all misses go through one
        :func:`intersect_postings_batch` call (against ``provider`` if
        given, else the active provider) and land in the cache.  Hit and
        miss counters tally once per element of ``keys``, matching a
        loop of :meth:`match_key` calls.
        """
        registry = metrics()
        results: list[np.ndarray | None] = []
        missing: dict[tuple[int, ...], list[int]] = {}
        for i, key in enumerate(keys):
            cached = self._match_cache.get(key)
            if cached is not None:
                self._match_cache.move_to_end(key)
                registry.inc("match.cache.hits")
                results.append(cached)
            else:
                registry.inc("match.cache.misses")
                results.append(None)
                missing.setdefault(key, []).append(i)
        if missing:
            miss_keys = list(missing)
            rows = intersect_postings_batch(
                provider if provider is not None else self.postings, miss_keys
            )
            for key, row in zip(miss_keys, rows):
                self._cache_store(key, row)
                for i in missing[key]:
                    results[i] = row
        return cast("list[np.ndarray]", results)

    def prefetch_keys(
        self,
        keys: Sequence[tuple[int, ...]],
        provider: PostingsProvider | None = None,
    ) -> None:
        """Warm the match LRU for every uncached key in one kernel pass."""
        fresh = [k for k in dict.fromkeys(keys) if k not in self._match_cache]
        if fresh:
            self.match_keys(fresh, provider=provider)

    def match(self, terms: Sequence[str]) -> np.ndarray:
        """Instances whose names contain all ``terms`` (AND semantics).

        Returns a sorted instance-id array; empty if any term is
        unknown (an unknown term can match no file).
        """
        key = self.query_key(terms)
        if key is None:
            return np.empty(0, dtype=self._posting_instances.dtype)
        return self.match_key(key)

    def match_batch(self, queries: Sequence[Sequence[str]]) -> BatchMatches:
        """Evaluate a workload of queries in one deduplicated pass.

        Queries are deduplicated by term-id tuple, all distinct misses
        are intersected in one batch-kernel call (through the memoized
        cache), and the per-query match sets come back as one
        :class:`BatchMatches` CSR structure.  Row ``i`` equals
        ``match(queries[i])`` bitwise; a query with an unknown term
        gets an empty row; an empty query raises, as :meth:`match`
        does.
        """
        distinct_index = np.zeros(len(queries), dtype=np.int64)
        slot_of: dict[tuple[int, ...] | None, int] = {}
        slot_keys: list[tuple[int, ...] | None] = []
        for i, q in enumerate(queries):
            key = self.query_key(q)
            slot = slot_of.get(key)
            if slot is None:
                slot = len(slot_keys)
                slot_of[key] = slot
                slot_keys.append(key)
            distinct_index[i] = slot
        known = [key for key in slot_keys if key is not None]
        matched = dict(zip(known, self.match_keys(known)))
        empty = np.empty(0, dtype=self._posting_instances.dtype)
        rows = [empty if key is None else matched[key] for key in slot_keys]
        lengths = np.fromiter(
            (r.size for r in rows), dtype=np.int64, count=len(rows)
        )
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        instances = np.concatenate(rows) if rows else empty
        return BatchMatches(
            distinct_index=distinct_index, offsets=offsets, instances=instances
        )

    def matching_peers(self, terms: Sequence[str]) -> np.ndarray:
        """Distinct peers holding at least one file matching ``terms``."""
        return np.unique(self.instance_peer[self.match(terms)])

    def peer_results(self, terms: Sequence[str], peer_mask: np.ndarray) -> np.ndarray:
        """Matching instances restricted to peers where ``peer_mask`` is True."""
        hits = self.match(terms)
        return hits[peer_mask[self.instance_peer[hits]]]
