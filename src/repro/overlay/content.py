"""Shared-content index: who shares what, term-matchable.

Bridges a :class:`~repro.tracegen.gnutella_trace.GnutellaShareTrace`
to the overlay: every shared instance is tokenized once (via
:class:`~repro.analysis.tokenize.TermIndex`) and posting lists map
term ids to the instances whose names contain them.  Query matching is
Gnutella semantics: a file matches when its name contains *all* query
terms; a peer responds with its matching files.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tokenize import TermIndex
from repro.tracegen.gnutella_trace import GnutellaShareTrace

__all__ = ["SharedContentIndex"]


class SharedContentIndex:
    """Inverted index over shared-file instances.

    Attributes
    ----------
    instance_peer:
        peer id per instance.
    term_index:
        tokenization of the distinct observed names.
    """

    def __init__(self, trace: GnutellaShareTrace) -> None:
        self.trace = trace
        self.n_peers = trace.n_peers
        self.instance_peer = trace.peer_of_instance
        self.term_index = TermIndex(trace.unique_names())
        terms, origin = self.term_index.expand(trace.name_ids)
        # Deduplicate repeated terms within one instance's name.
        pairs = np.unique(terms * trace.n_instances + origin)
        terms = pairs // trace.n_instances
        origin = pairs % trace.n_instances
        order = np.argsort(terms, kind="stable")
        self._posting_terms = terms[order]
        self._posting_instances = origin[order]
        counts = np.bincount(terms, minlength=self.term_index.n_terms)
        self._posting_offsets = np.zeros(self.term_index.n_terms + 1, dtype=np.int64)
        np.cumsum(counts, out=self._posting_offsets[1:])

    @property
    def n_instances(self) -> int:
        """Total shared-file instances indexed."""
        return self.trace.n_instances

    def term_id(self, term: str) -> int | None:
        """Term id for a string, or ``None`` if the term matches nothing."""
        return self.term_index.terms.get(term)

    def posting(self, term_id: int) -> np.ndarray:
        """Sorted instance ids whose names contain ``term_id``."""
        lo = self._posting_offsets[term_id]
        hi = self._posting_offsets[term_id + 1]
        return self._posting_instances[lo:hi]

    def term_peer_counts(self) -> np.ndarray:
        """Distinct-peer count per term — the paper's Fig. 3 quantity."""
        peers = self.instance_peer[self._posting_instances]
        pairs = np.unique(self._posting_terms * self.n_peers + peers)
        return np.bincount(
            (pairs // self.n_peers).astype(np.int64),
            minlength=self.term_index.n_terms,
        )

    def match(self, terms: list[str]) -> np.ndarray:
        """Instances whose names contain all ``terms`` (AND semantics).

        Returns a sorted instance-id array; empty if any term is
        unknown (an unknown term can match no file).
        """
        if not terms:
            raise ValueError("a query needs at least one term")
        ids = []
        for t in terms:
            tid = self.term_id(t)
            if tid is None:
                return np.empty(0, dtype=np.int64)
            ids.append(tid)
        postings = sorted((self.posting(t) for t in set(ids)), key=len)
        result = postings[0]
        for p in postings[1:]:
            if result.size == 0:
                break
            result = np.intersect1d(result, p, assume_unique=True)
        return result

    def matching_peers(self, terms: list[str]) -> np.ndarray:
        """Distinct peers holding at least one file matching ``terms``."""
        return np.unique(self.instance_peer[self.match(terms)])

    def peer_results(self, terms: list[str], peer_mask: np.ndarray) -> np.ndarray:
        """Matching instances restricted to peers where ``peer_mask`` is True."""
        hits = self.match(terms)
        return hits[peer_mask[self.instance_peer[hits]]]
