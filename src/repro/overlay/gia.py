"""Gia-style capacity-aware unstructured overlay (Chawathe et al.,
SIGCOMM'03 — the paper's §VI comparison).

Gia's ingredients, reproduced at simulation grade:

* **capacity-proportional topology** — node degrees scale with a
  heterogeneous capacity distribution (the Gia paper's 5-level mix);
* **one-hop replication** — every node indexes its neighbors' content,
  so a walker "sees" the whole neighborhood of each step;
* **capacity-biased walks** — the walker prefers the highest-capacity
  unvisited neighbor.

The paper's critique (§VI): "Gia was evaluated using a uniform object
distribution on up to 0.5% of the peers.  We show that the Zipf
distribution exhibited in real-world P2P systems located fewer than 1%
of the objects with replication ratios as high as 0.5%."  The
``bench_ablation_gia`` harness reproduces exactly that: Gia search is
excellent at Gia's evaluated replication ratio, which almost no real
object enjoys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.topology import Topology, _edges_to_csr
from repro.utils.rng import make_rng

__all__ = [
    "GIA_CAPACITY_LEVELS",
    "sample_capacities",
    "gia_topology",
    "GiaSearchResult",
    "gia_search",
    "one_hop_coverage",
]

#: The Gia paper's capacity distribution: (multiplier, probability).
GIA_CAPACITY_LEVELS = (
    (1.0, 0.2),
    (10.0, 0.45),
    (100.0, 0.3),
    (1_000.0, 0.049),
    (10_000.0, 0.001),
)


def sample_capacities(n_nodes: int, rng: np.random.Generator) -> np.ndarray:
    """Draw node capacities from the Gia 5-level distribution."""
    levels = np.array([l for l, _ in GIA_CAPACITY_LEVELS])
    probs = np.array([p for _, p in GIA_CAPACITY_LEVELS])
    return levels[rng.choice(levels.size, size=n_nodes, p=probs)]


def gia_topology(
    n_nodes: int,
    capacities: np.ndarray,
    *,
    min_degree: int = 3,
    max_degree: int = 128,
    seed: int | np.random.Generator = 0,
) -> Topology:
    """Capacity-proportional random topology (configuration-model style).

    Target degrees scale with log-capacity (Gia adapts degree to
    capacity but bounds it); stubs are paired uniformly at random and
    self-loops/duplicates dropped, so realized degrees approximate the
    targets.
    """
    if capacities.shape != (n_nodes,):
        raise ValueError("need one capacity per node")
    if np.any(capacities <= 0):
        raise ValueError("capacities must be positive")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    # Degree target: affine in log10(capacity), clamped.
    target = min_degree + 6.0 * np.log10(capacities)
    target = np.clip(np.rint(target), min_degree, max_degree).astype(np.int64)
    stubs = np.repeat(np.arange(n_nodes, dtype=np.int64), target)
    rng.shuffle(stubs)
    if stubs.size % 2:
        stubs = stubs[:-1]
    edges = stubs.reshape(-1, 2)
    offsets, neighbors = _edges_to_csr(n_nodes, edges)
    return Topology(offsets, neighbors, np.ones(n_nodes, dtype=bool))


def one_hop_coverage(topology: Topology, holder: np.ndarray) -> np.ndarray:
    """Bool per node: the node or any of its neighbors holds the object.

    The one-hop-replication answer set, vectorized: one gather over
    the CSR neighbor array plus a segmented any (via cumulative sums)
    replaces a per-step ``holder[neighbors_of(v)].any()`` scan.  A Gia
    walk answers at ``v`` exactly when ``coverage[v]``.
    """
    if holder.shape != (topology.n_nodes,):
        raise ValueError("holder mask must cover every node")
    has = np.concatenate([[0], np.cumsum(holder[topology.neighbors])])
    offsets = topology.offsets
    neighbor_has = (has[offsets[1:]] - has[offsets[:-1]]) > 0
    return holder | neighbor_has


@dataclass(frozen=True)
class GiaSearchResult:
    """Outcome of one Gia biased walk with one-hop replication."""

    source: int
    succeeded: bool
    steps: int
    found_at: int  # node whose neighborhood index answered (-1 if failed)


def gia_search(
    topology: Topology,
    capacities: np.ndarray,
    holder: np.ndarray,
    source: int,
    *,
    max_steps: int = 128,
    seed: int | np.random.Generator = 0,
    coverage: np.ndarray | None = None,
) -> GiaSearchResult:
    """Capacity-biased walk; one-hop replication answers from neighbors.

    ``holder`` is a bool mask of nodes holding the object.  A step at
    node ``v`` succeeds if ``v`` or any neighbor of ``v`` holds it
    (one-hop replication indexes neighbor content).  Callers running
    many walks over one ``holder`` mask should precompute
    ``coverage=one_hop_coverage(topology, holder)`` once — the answer
    checks never touch the RNG, so the walk itself is unchanged.
    """
    if holder.shape != (topology.n_nodes,):
        raise ValueError("holder mask must cover every node")
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)

    if coverage is not None:

        def answered(v: int) -> bool:
            return bool(coverage[v])

    else:

        def answered(v: int) -> bool:
            if holder[v]:
                return True
            return bool(holder[topology.neighbors_of(v)].any())

    visited = {source}
    current = source
    if answered(current):
        return GiaSearchResult(source, True, 0, current)
    for step in range(1, max_steps + 1):
        neigh = topology.neighbors_of(current)
        if neigh.size == 0:
            return GiaSearchResult(source, False, step - 1, -1)
        fresh = neigh[[int(v) not in visited for v in neigh]]
        pool = fresh if fresh.size else neigh
        # Bias: highest capacity first, random tie-break.
        caps = capacities[pool]
        best = pool[caps == caps.max()]
        current = int(best[rng.integers(0, best.size)])
        visited.add(current)
        if answered(current):
            return GiaSearchResult(source, True, step, current)
    return GiaSearchResult(source, False, max_steps, -1)


def gia_success_rate(
    topology: Topology,
    capacities: np.ndarray,
    replica_fraction: float,
    *,
    trials: int = 100,
    max_steps: int = 128,
    seed: int = 0,
) -> float:
    """Monte-Carlo success rate for objects on ``replica_fraction`` of nodes."""
    if not 0.0 < replica_fraction <= 1.0:
        raise ValueError("replica_fraction must be in (0, 1]")
    rng = make_rng(seed)
    n = topology.n_nodes
    n_replicas = max(1, int(round(replica_fraction * n)))
    wins = 0
    for _ in range(trials):
        holder = np.zeros(n, dtype=bool)
        holder[rng.choice(n, size=n_replicas, replace=False)] = True
        source = int(rng.integers(0, n))
        result = gia_search(
            topology,
            capacities,
            holder,
            source,
            max_steps=max_steps,
            seed=rng,
            coverage=one_hop_coverage(topology, holder),
        )
        wins += result.succeeded
    return wins / trials
