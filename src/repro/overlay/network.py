"""Unstructured-network facade: topology + content + search.

Binds a :class:`~repro.overlay.topology.Topology` to a
:class:`~repro.overlay.content.SharedContentIndex` (one overlay node
per trace peer) and exposes the two unstructured search primitives the
paper discusses — TTL flooding and k-walker random walks — with full
message accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.overlay.batch import BatchOutcome, BatchQueryEngine
from repro.overlay.content import SharedContentIndex
from repro.overlay.flooding import flood
from repro.overlay.messages import QueryHit, QueryMessage
from repro.overlay.random_walk import random_walk
from repro.overlay.topology import Topology

__all__ = ["SearchOutcome", "UnstructuredNetwork"]


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one unstructured search.

    ``hit_peers[j]`` is the peer holding ``hit_instances[j]``; the
    deduplicated responder set is derived lazily, since most callers
    only read ``n_results``/``messages``.
    """

    source: int
    terms: tuple[str, ...]
    hit_instances: np.ndarray
    hit_peers: np.ndarray
    peers_probed: int
    messages: int

    @property
    def n_results(self) -> int:
        """Number of matching files returned (Loo et al. rare-query metric)."""
        return self.hit_instances.size

    @property
    def succeeded(self) -> bool:
        """Did the search return at least one result?"""
        return self.n_results > 0

    @cached_property
    def responding_peers(self) -> np.ndarray:
        """Distinct peers that returned at least one result."""
        return np.unique(self.hit_peers)


class UnstructuredNetwork:
    """A Gnutella-like network over a share trace."""

    def __init__(self, topology: Topology, content: SharedContentIndex) -> None:
        if topology.n_nodes != content.n_peers:
            raise ValueError(
                f"topology has {topology.n_nodes} nodes but the trace has "
                f"{content.n_peers} peers"
            )
        self.topology = topology
        self.content = content
        self._batch_engine: BatchQueryEngine | None = None

    @property
    def n_peers(self) -> int:
        """Number of peers (= overlay nodes)."""
        return self.topology.n_nodes

    def _outcome(
        self,
        source: int,
        terms: list[str],
        probed_mask: np.ndarray,
        n_probed: int,
        messages: int,
    ) -> SearchOutcome:
        hits = self.content.peer_results(terms, probed_mask)
        return SearchOutcome(
            source=source,
            terms=tuple(terms),
            hit_instances=hits,
            hit_peers=self.content.instance_peer[hits],
            peers_probed=n_probed,
            messages=messages,
        )

    def query_flood(self, source: int, terms: list[str], ttl: int) -> SearchOutcome:
        """Flood ``terms`` from ``source`` with the given TTL."""
        result = flood(self.topology, source, ttl)
        probed = result.depth >= 0
        return self._outcome(source, terms, probed, result.n_reached, result.messages)

    def query_walk(
        self,
        source: int,
        terms: list[str],
        *,
        walkers: int = 16,
        ttl: int = 1024,
        seed: int | np.random.Generator = 0,
    ) -> SearchOutcome:
        """Search with k random walkers from ``source``."""
        result = random_walk(
            self.topology, source, walkers=walkers, ttl=ttl, seed=seed
        )
        probed = np.zeros(self.n_peers, dtype=bool)
        probed[result.visited] = True
        return self._outcome(source, terms, probed, result.n_visited, result.messages)

    def batch_engine(self) -> BatchQueryEngine:
        """The network's persistent batched query engine.

        Lazily constructed and then reused, so the engine's flood
        cache keeps accumulating BFS results across batches.
        """
        if self._batch_engine is None:
            self._batch_engine = BatchQueryEngine(self.topology, self.content)
        return self._batch_engine

    def query_batch(
        self,
        sources: np.ndarray,
        queries: Sequence[Sequence[str]],
        *,
        ttl: int = 3,
        ttl_schedule: tuple[int, ...] | None = None,
        min_results: int = 1,
        n_workers: int = 1,
    ) -> BatchOutcome:
        """Evaluate a workload of flood queries in one batched pass.

        ``queries[i]`` floods from ``sources[i]``.  With the default
        single-TTL schedule each row reproduces
        ``query_flood(sources[i], queries[i], ttl)`` bitwise; passing
        ``ttl_schedule`` reproduces ``expanding_ring_search`` instead
        (cumulative messages, final-ring results).  ``n_workers > 1``
        chunks the batch over shared-memory workers with identical
        results at every worker count.
        """
        schedule = ttl_schedule if ttl_schedule is not None else (int(ttl),)
        return self.batch_engine().evaluate(
            sources,
            queries,
            ttl_schedule=schedule,
            min_results=min_results,
            n_workers=n_workers,
        )

    def answer(self, message: QueryMessage, peer: int) -> QueryHit:
        """Protocol-level view: one peer's QueryHit for a query message."""
        mask = np.zeros(self.n_peers, dtype=bool)
        mask[peer] = True
        hits = self.content.peer_results(list(message.terms), mask)
        names = tuple(
            self.content.trace.names.lookup(int(self.content.trace.name_ids[i]))
            for i in hits
        )
        return QueryHit(guid=message.guid, responder=peer, file_names=names)
