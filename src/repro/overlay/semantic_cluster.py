"""Semantic (interest) clustering of the overlay.

The related-work thread attached to the paper (Handurukande, Kermarrec,
Le Fessant & Massoulié — "Exploiting Semantic Clustering in the
eDonkey P2P Network") observed that peers with overlapping libraries
can serve each other's requests, and proposed linking semantically
similar peers.  This module reproduces the mechanism so the harness
can test it against the paper's findings:

* :func:`library_similarity` — pairwise peer similarity over shared
  *songs* (ground truth) or observed names;
* :func:`semantic_rewire` — replace part of each peer's random
  neighbors with its most similar peers;
* the X-CLUSTER bench then measures what clustering buys a
  neighborhood-limited search — and how the query/file mismatch caps
  that benefit: clustering helps you find what *similar peers* hold,
  which is only useful when queries target held content.
"""

from __future__ import annotations

import numpy as np

from repro.overlay.topology import Topology, _edges_to_csr
from repro.tracegen.gnutella_trace import GnutellaShareTrace
from repro.utils.rng import make_rng

__all__ = ["library_similarity_topk", "semantic_rewire", "neighborhood_hit_rate"]


def library_similarity_topk(
    trace: GnutellaShareTrace, k: int, *, max_library: int = 400
) -> np.ndarray:
    """For each peer, the ids of its ``k`` most library-similar peers.

    Similarity is the overlap count of ground-truth song sets (the
    quantity the eDonkey study measured from download traces).  Peers'
    libraries are truncated to ``max_library`` songs to bound the
    sparse similarity computation.

    Returns an ``(n_peers, k)`` int array (-1 padding where fewer than
    ``k`` peers share anything).
    """
    if k < 1:
        raise ValueError("k must be positive")
    n_peers = trace.n_peers
    # Sparse song->peers postings over (possibly truncated) libraries.
    peer_songs: list[np.ndarray] = []
    for p in range(n_peers):
        songs = np.unique(trace.peer_song_ids(p))
        if songs.size > max_library:
            songs = songs[:max_library]
        peer_songs.append(songs)
    song_ids = np.concatenate(peer_songs) if peer_songs else np.empty(0, np.int64)
    peer_ids = np.repeat(np.arange(n_peers), [s.size for s in peer_songs])
    order = np.argsort(song_ids, kind="stable")
    song_sorted = song_ids[order]
    peer_sorted = peer_ids[order]
    boundaries = np.flatnonzero(np.diff(song_sorted)) + 1
    groups = np.split(peer_sorted, boundaries)

    # Accumulate pairwise overlap counts sparsely.
    overlap: dict[tuple[int, int], int] = {}
    for group in groups:
        if group.size < 2 or group.size > 64:
            # Extremely popular songs say little about pairwise
            # similarity and would blow up quadratically; skip them,
            # as the eDonkey study's sampling effectively did.
            continue
        for i in range(group.size):
            for j in range(i + 1, group.size):
                a, b = int(group[i]), int(group[j])
                key = (a, b) if a < b else (b, a)
                overlap[key] = overlap.get(key, 0) + 1

    best: list[list[tuple[int, int]]] = [[] for _ in range(n_peers)]
    for (a, b), c in overlap.items():
        best[a].append((c, b))
        best[b].append((c, a))
    out = np.full((n_peers, k), -1, dtype=np.int64)
    for p in range(n_peers):
        ranked = sorted(best[p], key=lambda t: (-t[0], t[1]))[:k]
        for col, (_, q) in enumerate(ranked):
            out[p, col] = q
    return out


def semantic_rewire(
    topology: Topology,
    similar: np.ndarray,
    *,
    n_links: int = 3,
    seed: int | np.random.Generator = 0,
) -> Topology:
    """Add up to ``n_links`` semantic edges per peer to a topology.

    Keeps the random edges (connectivity insurance) and adds semantic
    shortcuts — the deployment mode the clustering literature
    recommends.
    """
    if n_links < 0:
        raise ValueError("n_links must be non-negative")
    if similar.shape[0] != topology.n_nodes:
        raise ValueError("similarity table must cover every node")
    edges = []
    for v in range(topology.n_nodes):
        for w in topology.neighbors_of(v):
            if v < int(w):
                edges.append((v, int(w)))
        for q in similar[v, :n_links]:
            if q >= 0 and q != v:
                edges.append((min(v, int(q)), max(v, int(q))))
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    offsets, neighbors = _edges_to_csr(topology.n_nodes, arr)
    return Topology(offsets, neighbors, topology.forwards.copy())


def neighborhood_hit_rate(
    topology: Topology,
    trace: GnutellaShareTrace,
    *,
    n_samples: int = 500,
    radius: int = 1,
    seed: int = 0,
) -> float:
    """P(a peer's next wanted song is held within its neighborhood).

    Samples (peer, song) demands — a peer "wants" a song drawn from
    catalog popularity that it does not already hold — and checks
    whether any neighbor within ``radius`` holds it.  This is the
    quantity semantic clustering improves, and the mechanism by which
    it would speed searches up.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be positive")
    if radius < 1:
        raise ValueError("radius must be positive")
    rng = make_rng(seed)
    catalog = trace.catalog
    hits = 0
    for _ in range(n_samples):
        peer = int(rng.integers(0, trace.n_peers))
        own = set(trace.peer_song_ids(peer).tolist())
        song = int(catalog.sample_songs(1, rng)[0])
        if song in own:
            hits += 1  # already local: trivially resolved
            continue
        frontier = {peer}
        seen = {peer}
        found = False
        for _ in range(radius):
            nxt: set[int] = set()
            for v in frontier:
                for w in topology.neighbors_of(v):
                    w = int(w)
                    if w not in seen:
                        seen.add(w)
                        nxt.add(w)
            for w in nxt:
                if song in set(trace.peer_song_ids(w).tolist()):
                    found = True
                    break
            if found:
                break
            frontier = nxt
        hits += found
    return hits / n_samples
