"""Gnutella connection-management protocol: how the overlay forms.

The topologies elsewhere in :mod:`repro.overlay` are generated in one
shot; the deployed network the paper crawled *emerged* from the
Gnutella 0.6 connection protocol — bootstrap host caches, handshakes,
Ping/Pong address discovery, and reconnection after neighbor loss.
This module simulates that process in rounds, so the repository can
show (a) the emergent degree structure the generators approximate and
(b) that the overlay stays connected under churn, which the crawl
methodology implicitly assumes.

The simulation is deliberately object-level (sets, not CSR): network
formation is control-plane work at thousands of nodes, not a numeric
hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.overlay.topology import Topology, _edges_to_csr
from repro.utils.rng import derive

__all__ = ["ProtocolConfig", "GnutellaSession"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Connection-management parameters (Gnutella 0.6-style)."""

    n_nodes: int = 500
    #: connections every node tries to hold open.
    target_degree: int = 6
    max_degree: int = 12
    #: addresses returned by one Ping sweep (a pong cache page).
    pongs_per_ping: int = 10
    #: bootstrap host-cache size (the GWebCache analog).
    host_cache_size: int = 20
    #: desired ultrapeer share; 0 disables election (flat network).
    ultrapeer_fraction: float = 0.0
    #: connection-budget multiplier for elected ultrapeers (deployed
    #: ultrapeers held ~5-10x a leaf's connection count).
    ultrapeer_degree_multiplier: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if not 1 <= self.target_degree <= self.max_degree:
            raise ValueError("need 1 <= target_degree <= max_degree")
        if self.pongs_per_ping < 1 or self.host_cache_size < 1:
            raise ValueError("pong and host-cache sizes must be positive")
        if not 0.0 <= self.ultrapeer_fraction < 1.0:
            raise ValueError("ultrapeer_fraction must be in [0, 1)")
        if self.ultrapeer_degree_multiplier < 1:
            raise ValueError("ultrapeer_degree_multiplier must be positive")


class GnutellaSession:
    """A network being formed and repaired by the connection protocol.

    Nodes join via :meth:`join`, leave via :meth:`leave`, and each
    :meth:`run_round` lets every under-connected node ping for
    addresses and open connections.  ``snapshot()`` freezes the current
    graph into a :class:`~repro.overlay.topology.Topology` for the
    numeric machinery.
    """

    def __init__(self, config: ProtocolConfig | None = None) -> None:
        self.config = config or ProtocolConfig()
        self._rng = derive(self.config.seed, "protocol")
        self.online: set[int] = set()
        self.neighbors: dict[int, set[int]] = {}
        #: each node's known-address cache (its local host cache).
        self.known: dict[int, list[int]] = {}
        #: the global bootstrap cache (recently seen addresses).
        self.bootstrap: list[int] = []
        #: elected ultrapeers (capacity leaders, per election rounds).
        self.ultrapeers: set[int] = set()
        #: per-node capacity score used by ultrapeer election.
        self._capacity = derive(self.config.seed, "protocol", "capacity").random(
            self.config.n_nodes
        )

    # -- membership ---------------------------------------------------------

    def join(self, node: int) -> None:
        """Bring ``node`` online; it learns addresses from the bootstrap."""
        if node in self.online:
            raise ValueError(f"node {node} is already online")
        self.online.add(node)
        self.neighbors.setdefault(node, set())
        seeds = [a for a in self.bootstrap if a != node and a in self.online]
        self.known[node] = seeds[-self.config.host_cache_size :]
        self._push_bootstrap(node)

    def leave(self, node: int) -> None:
        """Take ``node`` offline; neighbors notice the drop."""
        if node not in self.online:
            raise ValueError(f"node {node} is not online")
        self.online.discard(node)
        for other in list(self.neighbors.get(node, ())):
            self.neighbors[other].discard(node)
        self.neighbors[node] = set()

    def _push_bootstrap(self, node: int) -> None:
        self.bootstrap.append(node)
        if len(self.bootstrap) > self.config.host_cache_size:
            self.bootstrap.pop(0)

    # -- protocol rounds ------------------------------------------------------

    def _ping(self, node: int) -> list[int]:
        """Two-hop address harvest: neighbors and neighbors-of-neighbors."""
        found: set[int] = set()
        for n1 in self.neighbors[node]:
            found.add(n1)
            found.update(self.neighbors[n1])
        found.discard(node)
        pool = [x for x in found if x in self.online]
        self._rng.shuffle(pool)
        return pool[: self.config.pongs_per_ping]

    def run_round(self) -> int:
        """One maintenance round; returns connections opened.

        Every online node below ``target_degree`` harvests addresses
        (Ping/Pong plus its host cache) and opens connections to
        random candidates that still have headroom.
        """
        cfg = self.config

        def target_of(v: int) -> int:
            mult = cfg.ultrapeer_degree_multiplier if v in self.ultrapeers else 1
            return cfg.target_degree * mult

        def cap_of(v: int) -> int:
            mult = cfg.ultrapeer_degree_multiplier if v in self.ultrapeers else 1
            return cfg.max_degree * mult

        opened = 0
        order = sorted(self.online)
        self._rng.shuffle(order)
        for node in order:
            if len(self.neighbors[node]) >= target_of(node):
                continue
            candidates = self._ping(node) + self.known.get(node, [])
            self._rng.shuffle(candidates)
            if self.ultrapeers:
                # Gnutella 0.6 handshake preference: connect to
                # ultrapeers first — leaves hanging off leaves cannot
                # route queries.
                candidates.sort(key=lambda v: v not in self.ultrapeers)
            for peer in candidates:
                if len(self.neighbors[node]) >= target_of(node):
                    break
                if (
                    peer == node
                    or peer not in self.online
                    or peer in self.neighbors[node]
                    or len(self.neighbors[peer]) >= cap_of(peer)
                ):
                    continue
                self.neighbors[node].add(peer)
                self.neighbors[peer].add(node)
                self.known.setdefault(node, []).append(peer)
                self._push_bootstrap(peer)
                opened += 1
        return opened

    def elect_ultrapeers(self) -> None:
        """Promote/demote ultrapeers by capacity (Gnutella 0.6 election).

        The top ``ultrapeer_fraction`` of *online* nodes by capacity
        score hold ultrapeer status; departures therefore trigger
        promotions on the next election.  No-op when the fraction is 0.
        """
        frac = self.config.ultrapeer_fraction
        if frac <= 0.0 or not self.online:
            self.ultrapeers = set()
            return
        want = max(1, int(round(frac * len(self.online))))
        ranked = sorted(self.online, key=lambda v: (-self._capacity[v], v))
        self.ultrapeers = set(ranked[:want])

    def form(self, rounds: int = 10) -> None:
        """Join every configured node and run maintenance rounds."""
        for node in range(self.config.n_nodes):
            if node not in self.online:
                self.join(node)
        for _ in range(rounds):
            self.elect_ultrapeers()
            if self.run_round() == 0:
                break
        self.elect_ultrapeers()

    # -- inspection -----------------------------------------------------------

    def degree_of(self, node: int) -> int:
        """Current connection count of ``node``."""
        return len(self.neighbors.get(node, ()))

    def snapshot(self) -> Topology:
        """Freeze the current online graph as a Topology.

        Offline nodes appear isolated (degree 0), preserving node ids.
        With ultrapeer election enabled, only elected ultrapeers carry
        the ``forwards`` flag (leaves don't relay) — the emergent
        counterpart of :func:`~repro.overlay.topology.two_tier_gnutella`.
        """
        edges = [
            (a, b)
            for a in self.online
            for b in self.neighbors[a]
            if a < b and b in self.online
        ]
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        offsets, neighbors = _edges_to_csr(self.config.n_nodes, arr)
        if self.config.ultrapeer_fraction > 0.0:
            forwards = np.zeros(self.config.n_nodes, dtype=bool)
            forwards[sorted(self.ultrapeers)] = True
        else:
            forwards = np.ones(self.config.n_nodes, dtype=bool)
        return Topology(offsets, neighbors, forwards)

    def largest_component_fraction(self) -> float:
        """Fraction of online nodes in the largest connected component."""
        if not self.online:
            return 0.0
        seen: set[int] = set()
        best = 0
        for start in self.online:
            if start in seen:
                continue
            stack = [start]
            comp = 0
            while stack:
                v = stack.pop()
                if v in seen:
                    continue
                seen.add(v)
                comp += 1
                stack.extend(
                    w for w in self.neighbors[v] if w in self.online and w not in seen
                )
            best = max(best, comp)
        return best / len(self.online)
