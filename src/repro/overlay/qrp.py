"""Gnutella 0.6 Query Routing Protocol (QRP).

In the two-tier Gnutella the paper measures, leaves upload a *query
routing table* (QRT) to their ultrapeers: a fixed-size hash-bit table
over the terms of their shared files.  An ultrapeer forwards a query
to a leaf only when **every** query term hashes to a set slot in that
leaf's QRT — the last hop, which dominates message volume, is pruned
for leaves that cannot possibly match.

QRP is the deployed ancestor of the paper's synopsis idea: a
content-derived, capacity-limited summary consulted before
forwarding.  Reproducing it lets the harness quantify the last-hop
savings (large) and the false-positive forwarding rate — and contrast
it with query-centric synopses, which choose *which* terms to
summarize instead of hashing them all.

QRT semantics follow the LimeWire-style variant: single hash function
over a power-of-two table, conservative AND across query terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.content import SharedContentIndex
from repro.overlay.flooding import FloodDepthCache, flood_depths
from repro.overlay.topology import Topology

__all__ = [
    "QrpTables",
    "QrpFloodResult",
    "QrpBatchOutcome",
    "qrp_flood",
    "qrp_flood_batch",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix(x: np.ndarray, salt: int) -> np.ndarray:
    z = (x.astype(np.uint64) + np.uint64(salt)) & _MASK64
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
    return z ^ (z >> np.uint64(31))


class QrpTables:
    """Per-leaf query routing tables held at the network edge.

    ``table_bits[p]`` is peer ``p``'s QRT: a boolean row of
    ``table_size`` slots with one hash per term (the protocol's single
    hash function).  Ultrapeers consult the rows of their leaves.
    """

    def __init__(self, content: SharedContentIndex, table_size: int = 4096) -> None:
        if table_size < 2 or table_size & (table_size - 1):
            raise ValueError(f"table_size must be a power of two, got {table_size}")
        self.table_size = table_size
        self.content = content
        n_peers = content.n_peers
        self.table_bits = np.zeros((n_peers, table_size), dtype=bool)
        # All (peer, term) pairs in one shot.
        terms = content._posting_terms
        peers = content.instance_peer[content._posting_instances]
        slots = self._slot(terms)
        self.table_bits[peers, slots] = True

    def _slot(self, term_ids: np.ndarray) -> np.ndarray:
        h = _mix(np.atleast_1d(np.asarray(term_ids, dtype=np.uint64)), 0x9E3779B97F4A7C15)
        return (h & np.uint64(self.table_size - 1)).astype(np.int64)

    def query_slots(self, terms: list[str]) -> np.ndarray | None:
        """Slot indexes for a query's terms; ``None`` if a term is unknown.

        Unknown terms still hash to a slot in the real protocol; we
        hash the string itself so behaviour matches.
        """
        ids = []
        for t in terms:
            tid = self.content.term_id(t)
            if tid is None:
                # Hash unknown terms by string content (stable FNV-1a).
                acc = 0xCBF29CE484222325
                for b in t.encode("utf-8"):
                    acc = ((acc ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
                ids.append(acc)
            else:
                ids.append(int(tid))
        return self._slot(np.asarray(ids, dtype=np.uint64))

    def peers_matching(self, terms: list[str]) -> np.ndarray:
        """Bool per peer: QRT has every query term's slot set."""
        slots = self.query_slots(terms)
        return self.table_bits[:, slots].all(axis=1)


@dataclass(frozen=True)
class QrpFloodResult:
    """A flood with QRP-pruned last hops."""

    source: int
    ttl: int
    #: peers that actually received the query.
    delivered: np.ndarray
    #: messages with QRP pruning in force.
    messages: int
    #: messages the same flood would have cost without QRP.
    messages_without_qrp: int
    #: leaf deliveries whose QRT matched but whose files did not.
    false_positive_deliveries: int

    @property
    def savings(self) -> float:
        """Fraction of messages QRP pruned."""
        if self.messages_without_qrp == 0:
            return 0.0
        return 1.0 - self.messages / self.messages_without_qrp


def qrp_flood(
    topology: Topology,
    tables: QrpTables,
    source: int,
    terms: list[str],
    ttl: int,
) -> QrpFloodResult:
    """Flood with QRP-pruned ultrapeer->leaf forwarding.

    Ultrapeer-to-ultrapeer propagation is unchanged (QRP only governs
    the leaf hop), so the reached *ultrapeer* set equals the plain
    flood's; leaf deliveries happen only on QRT match.  Savings are
    accounted per *distinct* pruned leaf (a leaf multihomed to several
    reached ultrapeers receives duplicate copies in the plain flood,
    so the reported savings slightly understate the true message cut).
    """
    depth, plain_messages = flood_depths(topology, source, ttl)
    reached = depth >= 0
    forwards = topology.forwards
    qrt_match = tables.peers_matching(terms)

    # Leaves that the plain flood reached.
    leaf_reached = reached & ~forwards
    leaf_reached[source] = False
    n_leaf_deliveries_plain = int(leaf_reached.sum())
    delivered_leaves = leaf_reached & qrt_match

    # Actual file-level matches among delivered leaves.
    hits = tables.content.match(terms)
    hit_peers = np.zeros(topology.n_nodes, dtype=bool)
    if hits.size:
        hit_peers[np.unique(tables.content.instance_peer[hits])] = True
    false_pos = int((delivered_leaves & ~hit_peers).sum())

    messages = plain_messages - (n_leaf_deliveries_plain - int(delivered_leaves.sum()))
    delivered = reached.copy()
    delivered &= forwards | delivered_leaves
    delivered[source] = True
    return QrpFloodResult(
        source=source,
        ttl=ttl,
        delivered=np.flatnonzero(delivered),
        messages=messages,
        messages_without_qrp=plain_messages,
        false_positive_deliveries=false_pos,
    )


@dataclass(frozen=True)
class QrpBatchOutcome:
    """Columnar QRP flood outcomes of a query batch (row ``i`` = query ``i``)."""

    messages: np.ndarray
    messages_without_qrp: np.ndarray
    n_delivered: np.ndarray
    false_positive_deliveries: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries in the batch."""
        return self.messages.size

    @property
    def savings(self) -> np.ndarray:
        """Per-query fraction of messages QRP pruned."""
        out = np.zeros(self.messages.size, dtype=np.float64)
        nz = self.messages_without_qrp > 0
        out[nz] = 1.0 - self.messages[nz] / self.messages_without_qrp[nz]
        return out


def qrp_flood_batch(
    topology: Topology,
    tables: QrpTables,
    sources: np.ndarray,
    queries: list[list[str]],
    ttl: int,
    *,
    cache: FloodDepthCache | None = None,
) -> QrpBatchOutcome:
    """Batch of QRP-pruned floods: ``queries[i]`` from ``sources[i]``.

    Row ``i`` reproduces ``qrp_flood(topology, tables, sources[i],
    queries[i], ttl)`` exactly, but repeated sources BFS once through
    the shared :class:`FloodDepthCache`, and repeated queries memoize
    their QRT-match and holder-peer masks.  Queries are keyed by their
    literal term strings (not canonical term ids) because unknown
    terms hash into the QRT by string content.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size != len(queries):
        raise ValueError(f"{sources.size} sources for {len(queries)} queries")
    if cache is None:
        cache = FloodDepthCache(
            topology, max_entries=max(1, np.unique(sources).size)
        )
    n = sources.size
    n_nodes = topology.n_nodes
    forwards = topology.forwards
    content = tables.content
    masks: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}
    messages = np.zeros(n, dtype=np.int64)
    plain = np.zeros(n, dtype=np.int64)
    n_delivered = np.zeros(n, dtype=np.int64)
    false_pos = np.zeros(n, dtype=np.int64)
    for i in range(n):
        terms = queries[i]
        key = tuple(terms)
        cached = masks.get(key)
        if cached is None:
            qrt_match = tables.peers_matching(terms)
            hits = content.match(terms)
            hit_peers = np.zeros(n_nodes, dtype=bool)
            if hits.size:
                hit_peers[content.instance_peer[hits]] = True
            cached = (qrt_match, hit_peers)
            masks[key] = cached
        qrt_match, hit_peers = cached
        source = int(sources[i])
        entry = cache.entry(source, ttl)
        reached = (entry.depth >= 0) & (entry.depth <= ttl)
        leaf_reached = reached & ~forwards
        leaf_reached[source] = False
        delivered_leaves = leaf_reached & qrt_match
        pruned = int(leaf_reached.sum()) - int(delivered_leaves.sum())
        plain[i] = entry.messages(ttl)
        messages[i] = plain[i] - pruned
        false_pos[i] = int((delivered_leaves & ~hit_peers).sum())
        delivered = reached & (forwards | delivered_leaves)
        delivered[source] = True
        n_delivered[i] = int(delivered.sum())
    return QrpBatchOutcome(
        messages=messages,
        messages_without_qrp=plain,
        n_delivered=n_delivered,
        false_positive_deliveries=false_pos,
    )
