"""Overlay topologies.

The paper's flooding simulation runs on a 40,000-node Gnutella
network.  Modern (0.6-era) Gnutella is two-tier: *ultrapeers* form a
random mesh and route queries; *leaves* hang off a few ultrapeers and
never forward.  Both two-tier and flat random topologies are provided;
the adjacency lives in CSR arrays so flooding is pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.rng import make_rng

__all__ = [
    "INDEX_DTYPE",
    "Topology",
    "two_tier_gnutella",
    "flat_random",
    "from_networkx",
]

#: CSR index element type.  int32 halves the dominant per-node cost
#: (offsets + neighbors) versus the int64 seed and comfortably covers
#: the 10M-node roadmap scale; ``_edges_to_csr`` guards the
#: ``2**31 - 1`` node/entry ceiling with an explicit OverflowError
#: instead of silently wrapping.
INDEX_DTYPE = np.dtype(np.int32)


@dataclass
class Topology:
    """Undirected graph in CSR form.

    ``neighbors[offsets[v]:offsets[v+1]]`` are the neighbors of ``v``.
    ``forwards[v]`` says whether ``v`` relays queries (ultrapeers do,
    leaves do not; in a flat topology everybody forwards).
    """

    offsets: np.ndarray
    neighbors: np.ndarray
    forwards: np.ndarray

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must be a 1-D array starting at 0")
        if int(self.offsets[-1]) != self.neighbors.size:
            raise ValueError("offsets and neighbors are inconsistent")
        if self.forwards.shape[0] != self.n_nodes:
            raise ValueError("forwards mask must have one entry per node")

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.offsets.size - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.neighbors.size // 2

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of one node, or the whole degree vector."""
        if v is None:
            return np.diff(self.offsets)
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        """Neighbor ids of ``v``."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def to_networkx(self) -> nx.Graph:
        """Export to a networkx graph (node attribute ``forwards``).

        The edge list is extracted with one vectorized pass over the
        CSR arrays (each undirected edge appears twice; the ``v < w``
        copy is kept) instead of a per-node Python loop.
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        src = np.repeat(np.arange(self.n_nodes, dtype=np.int64), np.diff(self.offsets))
        keep = src < self.neighbors
        g.add_edges_from(
            np.stack([src[keep], self.neighbors[keep]], axis=1).tolist()
        )
        nx.set_node_attributes(
            g, dict(enumerate(self.forwards.tolist())), "forwards"
        )
        return g


def _edges_to_csr(n_nodes: int, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrize an edge list into CSR arrays (parallel edges merged).

    Indices are :data:`INDEX_DTYPE` (int32); node and directed-entry
    counts past its ceiling raise :class:`OverflowError` up front
    rather than wrapping inside the kernel.  The dedup key math stays
    int64 — ``lo * n_nodes + hi`` overflows 32 bits long before the
    indices do.
    """
    limit = int(np.iinfo(INDEX_DTYPE).max)
    if n_nodes > limit:
        raise OverflowError(
            f"{n_nodes} nodes exceed the CSR index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )
    if edges.size == 0:
        return (
            np.zeros(n_nodes + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
        )
    u, v = edges[:, 0], edges[:, 1]
    keep = u != v
    u, v = u[keep], v[keep]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    uniq = np.unique(lo.astype(np.int64) * n_nodes + hi)
    lo, hi = uniq // n_nodes, uniq % n_nodes
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    if src.size > limit:
        raise OverflowError(
            f"{n_nodes} nodes with {uniq.size} undirected edges need "
            f"{src.size} CSR entries, exceeding the index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(n_nodes + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(src, minlength=n_nodes), out=offsets[1:])
    return offsets, dst.astype(INDEX_DTYPE)


def from_networkx(g: nx.Graph) -> Topology:
    """Build a :class:`Topology` from a networkx graph.

    Nodes must be ``0..n-1``; a ``forwards`` node attribute is honored
    (default: every node forwards).
    """
    n = g.number_of_nodes()
    if set(g.nodes) != set(range(n)):
        raise ValueError("nodes must be labeled 0..n-1 (use convert_node_labels_to_integers)")
    edges = np.asarray([(u, v) for u, v in g.edges], dtype=np.int64).reshape(-1, 2)
    offsets, neighbors = _edges_to_csr(n, edges)
    forwards = np.asarray(
        [bool(g.nodes[v].get("forwards", True)) for v in range(n)], dtype=bool
    )
    return Topology(offsets, neighbors, forwards)


def flat_random(
    n_nodes: int, avg_degree: float, seed: int | np.random.Generator = 0
) -> Topology:
    """Flat Erdős–Rényi-style topology; every node forwards."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if avg_degree <= 0 or avg_degree >= n_nodes:
        raise ValueError(f"avg_degree must be in (0, n_nodes), got {avg_degree}")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    n_edges = int(round(n_nodes * avg_degree / 2))
    edges = rng.integers(0, n_nodes, size=(n_edges, 2), dtype=np.int64)
    offsets, neighbors = _edges_to_csr(n_nodes, edges)
    return Topology(offsets, neighbors, np.ones(n_nodes, dtype=bool))


def _sample_rows_without_replacement(
    n_rows: int, k: int, n_choices: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_rows, k)`` integers in ``[0, n_choices)``, distinct per row.

    Vectorized: draw all rows at once and redraw only the rows that
    contain a duplicate.  Each round is one batched draw, and the
    per-row collision probability is at most ``k^2 / (2 n_choices)``,
    so the expected number of rounds is small whenever ``k`` is far
    from ``n_choices``.  Near saturation (``n_choices < 4k``), where
    rejection would thrash, each row instead takes the first ``k``
    entries of an independently permuted ``arange(n_choices)``.
    """
    if k > n_choices:
        raise ValueError("cannot sample more distinct values than exist")
    if n_rows == 0 or k == 0:
        return np.empty((n_rows, k), dtype=np.int64)
    if n_choices < 4 * k:
        rows = np.tile(np.arange(n_choices, dtype=np.int64), (n_rows, 1))
        rng.permuted(rows, axis=1, out=rows)
        return np.ascontiguousarray(rows[:, :k])
    targets = rng.integers(0, n_choices, size=(n_rows, k), dtype=np.int64)
    while True:
        ordered = np.sort(targets, axis=1)
        bad = np.flatnonzero((ordered[:, 1:] == ordered[:, :-1]).any(axis=1))
        if bad.size == 0:
            return targets
        targets[bad] = rng.integers(0, n_choices, size=(bad.size, k), dtype=np.int64)


def two_tier_gnutella(
    n_nodes: int,
    *,
    ultrapeer_fraction: float = 0.3,
    up_up_degree: float = 10.0,
    leaf_up_connections: int = 3,
    seed: int | np.random.Generator = 0,
) -> Topology:
    """Gnutella-0.6-style two-tier topology.

    The first ``round(n_nodes * ultrapeer_fraction)`` node ids are
    ultrapeers (convenient for masking); they form a random mesh of
    average intra-ultrapeer degree ``up_up_degree``.  Each leaf
    connects to ``leaf_up_connections`` distinct ultrapeers.  Only
    ultrapeers forward queries.
    """
    if not 0.0 < ultrapeer_fraction <= 1.0:
        raise ValueError("ultrapeer_fraction must be in (0, 1]")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    n_up = max(2, int(round(n_nodes * ultrapeer_fraction)))
    if n_up > n_nodes:
        raise ValueError("more ultrapeers than nodes")
    if leaf_up_connections < 1:
        raise ValueError("leaves need at least one ultrapeer connection")
    n_leaves = n_nodes - n_up

    n_up_edges = int(round(n_up * up_up_degree / 2))
    up_edges = rng.integers(0, n_up, size=(n_up_edges, 2), dtype=np.int64)

    # Leaf attachments: sample distinct ultrapeers per leaf (without
    # replacement, so CSR merging never shrinks a leaf's degree).
    k = min(leaf_up_connections, n_up)
    leaf_targets = _sample_rows_without_replacement(n_leaves, k, n_up, rng)
    leaf_ids = np.arange(n_up, n_nodes, dtype=np.int64)
    leaf_edges = np.stack(
        [np.repeat(leaf_ids, k), leaf_targets.ravel()], axis=1
    )

    edges = np.concatenate([up_edges, leaf_edges], axis=0)
    offsets, neighbors = _edges_to_csr(n_nodes, edges)
    forwards = np.zeros(n_nodes, dtype=bool)
    forwards[:n_up] = True
    return Topology(offsets, neighbors, forwards)
