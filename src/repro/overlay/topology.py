"""Overlay topologies.

The paper's flooding simulation runs on a 40,000-node Gnutella
network.  Modern (0.6-era) Gnutella is two-tier: *ultrapeers* form a
random mesh and route queries; *leaves* hang off a few ultrapeers and
never forward.  Both two-tier and flat random topologies are provided;
the adjacency lives in CSR arrays so flooding is pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import networkx as nx
import numpy as np

from repro.obs import metrics
from repro.utils import dtypes
from repro.utils.rng import derive, make_rng

__all__ = [
    "INDEX_DTYPE",
    "Topology",
    "edges_to_csr_stream",
    "shard_bounds",
    "two_tier_gnutella",
    "flat_random",
    "from_networkx",
]

#: CSR index element type.  int32 halves the dominant per-node cost
#: (offsets + neighbors) versus the int64 seed and comfortably covers
#: the 10M-node roadmap scale; ``_edges_to_csr`` guards the
#: ``2**31 - 1`` node/entry ceiling with an explicit OverflowError
#: instead of silently wrapping.  The literal lives in
#: ``repro.utils.dtypes`` so tracegen shares it without importing the
#: overlay package; this Assign keeps the public name (and simlint's
#: constant resolution) here.
INDEX_DTYPE = dtypes.INDEX_DTYPE


@dataclass
class Topology:
    """Undirected graph in CSR form.

    ``neighbors[offsets[v]:offsets[v+1]]`` are the neighbors of ``v``.
    ``forwards[v]`` says whether ``v`` relays queries (ultrapeers do,
    leaves do not; in a flat topology everybody forwards).
    """

    offsets: np.ndarray
    neighbors: np.ndarray
    forwards: np.ndarray

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.offsets[0] != 0:
            raise ValueError("offsets must be a 1-D array starting at 0")
        if int(self.offsets[-1]) != self.neighbors.size:
            raise ValueError("offsets and neighbors are inconsistent")
        if self.forwards.shape[0] != self.n_nodes:
            raise ValueError("forwards mask must have one entry per node")

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.offsets.size - 1

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.neighbors.size // 2

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of one node, or the whole degree vector."""
        if v is None:
            return np.diff(self.offsets)
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        """Neighbor ids of ``v``."""
        return self.neighbors[self.offsets[v] : self.offsets[v + 1]]

    def to_networkx(self) -> nx.Graph:
        """Export to a networkx graph (node attribute ``forwards``).

        The edge list is extracted with one vectorized pass over the
        CSR arrays (each undirected edge appears twice; the ``v < w``
        copy is kept) instead of a per-node Python loop.
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.n_nodes))
        src = np.repeat(np.arange(self.n_nodes, dtype=np.int64), np.diff(self.offsets))
        keep = src < self.neighbors
        g.add_edges_from(
            np.stack([src[keep], self.neighbors[keep]], axis=1).tolist()
        )
        nx.set_node_attributes(
            g, dict(enumerate(self.forwards.tolist())), "forwards"
        )
        return g


def _edges_to_csr(n_nodes: int, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrize an edge list into CSR arrays (parallel edges merged).

    Indices are :data:`INDEX_DTYPE` (int32); node and directed-entry
    counts past its ceiling raise :class:`OverflowError` up front
    rather than wrapping inside the kernel.  The dedup key math stays
    int64 — ``lo * n_nodes + hi`` overflows 32 bits long before the
    indices do.
    """
    limit = int(np.iinfo(INDEX_DTYPE).max)
    if n_nodes > limit:
        raise OverflowError(
            f"{n_nodes} nodes exceed the CSR index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )
    if edges.size == 0:
        return (
            np.zeros(n_nodes + 1, dtype=INDEX_DTYPE),
            np.empty(0, dtype=INDEX_DTYPE),
        )
    u, v = edges[:, 0], edges[:, 1]
    keep = u != v
    u, v = u[keep], v[keep]
    lo, hi = np.minimum(u, v), np.maximum(u, v)
    uniq = np.unique(lo.astype(np.int64) * n_nodes + hi)
    lo, hi = uniq // n_nodes, uniq % n_nodes
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    if src.size > limit:
        raise OverflowError(
            f"{n_nodes} nodes with {uniq.size} undirected edges need "
            f"{src.size} CSR entries, exceeding the index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    offsets = np.zeros(n_nodes + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.bincount(src, minlength=n_nodes), out=offsets[1:])
    return offsets, dst.astype(INDEX_DTYPE)


def shard_bounds(n_nodes: int, n_shards: int) -> np.ndarray:
    """Contiguous node-range boundaries for ``n_shards`` shards.

    Returns ``bounds`` (int64, ``len == effective_shards + 1``) with
    ``bounds[s]:bounds[s+1]`` the node range of shard ``s``; ranges
    differ in size by at most one node.  Shard counts beyond the node
    count are clamped, so every shard owns at least one node.
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    effective = min(n_shards, n_nodes)
    return (np.arange(effective + 1, dtype=np.int64) * n_nodes) // effective


def edges_to_csr_stream(
    n_nodes: int,
    make_blocks: Callable[[], Iterator[np.ndarray]],
    *,
    n_shards: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Streaming :func:`_edges_to_csr`: bounded peak memory, same CSR sets.

    ``make_blocks`` is a re-iterable factory yielding ``(m, 2)`` int64
    arrays of undirected endpoints (self-loops dropped, parallel edges
    merged, exactly as in the batch builder).  The CSR is built
    shard-by-shard over contiguous node ranges: a first pass over the
    blocks counts directed entries per shard (sizing + overflow
    guards), then each shard re-streams the blocks, keeps only the
    entries it owns, and dedups/scatters them into its CSR rows.  Peak
    ancillary memory is one shard's entry buffer plus one block — the
    full edge list is never resident.

    The output is independent of ``n_shards`` (dedup partitions by
    source node, so per-shard merging equals global merging), but
    neighbor order *within a node's row* is ascending rather than the
    batch builder's two-segment order — the same adjacency sets, and
    bitwise-identical flood results, without the global sort.  Guards
    are conservative: per-shard and total directed entry counts are
    checked against :data:`INDEX_DTYPE` *before* parallel-edge merging.
    """
    limit = int(np.iinfo(INDEX_DTYPE).max)
    if n_nodes > limit:
        raise OverflowError(
            f"{n_nodes} nodes exceed the CSR index dtype "
            f"{INDEX_DTYPE.name} (max {limit}); widen INDEX_DTYPE"
        )
    bounds = shard_bounds(n_nodes, n_shards)
    n_effective = bounds.size - 1
    counts = np.zeros(n_effective, dtype=np.int64)
    for block in make_blocks():
        u, v = _clean_block(block)
        counts += np.bincount(
            np.searchsorted(bounds, u, side="right") - 1, minlength=n_effective
        )
        counts += np.bincount(
            np.searchsorted(bounds, v, side="right") - 1, minlength=n_effective
        )
    worst = int(counts.max()) if counts.size else 0
    if worst > limit:
        shard = int(counts.argmax())
        raise OverflowError(
            f"shard {shard} would hold {worst} directed CSR entries, "
            f"exceeding the index dtype {INDEX_DTYPE.name} (max {limit}); "
            f"use more shards or widen INDEX_DTYPE"
        )
    total = int(counts.sum())
    if total > limit:
        raise OverflowError(
            f"{n_nodes} nodes need {total} directed CSR entries, exceeding "
            f"the index dtype {INDEX_DTYPE.name} (max {limit}); "
            f"widen INDEX_DTYPE"
        )
    registry = metrics()
    registry.gauge("topology.stream.n_shards", n_effective)
    registry.gauge("topology.stream.peak_shard_entries", worst)
    degree_parts: list[np.ndarray] = []
    neighbor_parts: list[np.ndarray] = []
    for s in range(n_effective):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        # Packed (local_src, dst) keys: local_src * n_nodes + dst stays
        # within int64 for any INDEX_DTYPE-sized node count.
        buf = np.empty(counts[s], dtype=np.int64)
        fill = 0
        for block in make_blocks():
            u, v = _clean_block(block)
            for a, b in ((u, v), (v, u)):
                mask = (a >= lo) & (a < hi)
                part = np.count_nonzero(mask)
                buf[fill : fill + part] = (a[mask] - lo) * n_nodes + b[mask]
                fill += part
        # Once per *shard*, not per element: the sort is how the
        # bounded key buffer dedups and orders one shard's rows
        # without ever materializing the global edge list.
        keys = np.unique(buf[:fill])  # simlint: ignore[SIM016] per-shard dedup is the streaming design; a global mask would be O(n_nodes^2) bits
        degree_parts.append(np.bincount(keys // n_nodes, minlength=hi - lo))
        neighbor_parts.append((keys % n_nodes).astype(INDEX_DTYPE))
    offsets = np.zeros(n_nodes + 1, dtype=INDEX_DTYPE)
    np.cumsum(np.concatenate(degree_parts), out=offsets[1:])
    return offsets, np.concatenate(neighbor_parts)


def _clean_block(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate one streamed edge block; returns self-loop-free columns."""
    if block.ndim != 2 or block.shape[1] != 2:
        raise ValueError(f"edge blocks must be (m, 2), got {block.shape}")
    u, v = block[:, 0], block[:, 1]
    keep = u != v
    return u[keep], v[keep]


def from_networkx(g: nx.Graph) -> Topology:
    """Build a :class:`Topology` from a networkx graph.

    Nodes must be ``0..n-1``; a ``forwards`` node attribute is honored
    (default: every node forwards).
    """
    n = g.number_of_nodes()
    if set(g.nodes) != set(range(n)):
        raise ValueError("nodes must be labeled 0..n-1 (use convert_node_labels_to_integers)")
    edges = np.asarray([(u, v) for u, v in g.edges], dtype=np.int64).reshape(-1, 2)
    offsets, neighbors = _edges_to_csr(n, edges)
    forwards = np.asarray(
        [bool(g.nodes[v].get("forwards", True)) for v in range(n)], dtype=bool
    )
    return Topology(offsets, neighbors, forwards)


def flat_random(
    n_nodes: int, avg_degree: float, seed: int | np.random.Generator = 0
) -> Topology:
    """Flat Erdős–Rényi-style topology; every node forwards."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if avg_degree <= 0 or avg_degree >= n_nodes:
        raise ValueError(f"avg_degree must be in (0, n_nodes), got {avg_degree}")
    rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
    n_edges = int(round(n_nodes * avg_degree / 2))
    edges = rng.integers(0, n_nodes, size=(n_edges, 2), dtype=np.int64)
    offsets, neighbors = _edges_to_csr(n_nodes, edges)
    return Topology(offsets, neighbors, np.ones(n_nodes, dtype=bool))


def _sample_rows_without_replacement(
    n_rows: int, k: int, n_choices: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_rows, k)`` integers in ``[0, n_choices)``, distinct per row.

    Vectorized: draw all rows at once and redraw only the rows that
    contain a duplicate.  Each round is one batched draw, and the
    per-row collision probability is at most ``k^2 / (2 n_choices)``,
    so the expected number of rounds is small whenever ``k`` is far
    from ``n_choices``.  Near saturation (``n_choices < 4k``), where
    rejection would thrash, each row instead takes the first ``k``
    entries of an independently permuted ``arange(n_choices)``.
    """
    if k > n_choices:
        raise ValueError("cannot sample more distinct values than exist")
    if n_rows == 0 or k == 0:
        return np.empty((n_rows, k), dtype=np.int64)
    if n_choices < 4 * k:
        rows = np.tile(np.arange(n_choices, dtype=np.int64), (n_rows, 1))
        rng.permuted(rows, axis=1, out=rows)
        return np.ascontiguousarray(rows[:, :k])
    targets = rng.integers(0, n_choices, size=(n_rows, k), dtype=np.int64)
    while True:
        ordered = np.sort(targets, axis=1)
        bad = np.flatnonzero((ordered[:, 1:] == ordered[:, :-1]).any(axis=1))
        if bad.size == 0:
            return targets
        targets[bad] = rng.integers(0, n_choices, size=(bad.size, k), dtype=np.int64)


def two_tier_gnutella(
    n_nodes: int,
    *,
    ultrapeer_fraction: float = 0.3,
    up_up_degree: float = 10.0,
    leaf_up_connections: int = 3,
    seed: int | np.random.Generator = 0,
    edge_block: int | None = None,
) -> Topology:
    """Gnutella-0.6-style two-tier topology.

    The first ``round(n_nodes * ultrapeer_fraction)`` node ids are
    ultrapeers (convenient for masking); they form a random mesh of
    average intra-ultrapeer degree ``up_up_degree``.  Each leaf
    connects to ``leaf_up_connections`` distinct ultrapeers.  Only
    ultrapeers forward queries.

    ``edge_block`` switches to the streaming construction: edges are
    drawn in blocks of at most ``edge_block`` rows, each block on its
    own :func:`~repro.utils.rng.derive`-d stream, and the CSR is built
    shard-by-shard via :func:`edges_to_csr_stream` — peak memory never
    holds the full edge list, which is what unblocks 1M–10M-node
    generation.  The draw is deterministic in ``(seed, edge_block)``
    but is a *different* deterministic graph than the batch path (the
    batch draw consumes one global stream, whose rejection-resampling
    order cannot be replayed block-wise), so ``edge_block`` belongs in
    any cache key that covers the topology.
    """
    if not 0.0 < ultrapeer_fraction <= 1.0:
        raise ValueError("ultrapeer_fraction must be in (0, 1]")
    n_up = max(2, int(round(n_nodes * ultrapeer_fraction)))
    if n_up > n_nodes:
        raise ValueError("more ultrapeers than nodes")
    if leaf_up_connections < 1:
        raise ValueError("leaves need at least one ultrapeer connection")
    n_leaves = n_nodes - n_up
    n_up_edges = int(round(n_up * up_up_degree / 2))
    k = min(leaf_up_connections, n_up)

    if edge_block is not None:
        if edge_block < 1:
            raise ValueError(f"edge_block must be positive, got {edge_block}")
        if isinstance(seed, np.random.Generator):
            raise TypeError(
                "streaming generation derives one stream per edge block; "
                "pass an integer seed, not a Generator"
            )
        offsets, neighbors = _two_tier_streamed(
            n_nodes, n_up, n_leaves, k, n_up_edges, int(seed), edge_block
        )
    else:
        rng = seed if isinstance(seed, np.random.Generator) else make_rng(seed)
        up_edges = rng.integers(0, n_up, size=(n_up_edges, 2), dtype=np.int64)
        # Leaf attachments: sample distinct ultrapeers per leaf (without
        # replacement, so CSR merging never shrinks a leaf's degree).
        leaf_targets = _sample_rows_without_replacement(n_leaves, k, n_up, rng)
        leaf_ids = np.arange(n_up, n_nodes, dtype=np.int64)
        leaf_edges = np.stack(
            [np.repeat(leaf_ids, k), leaf_targets.ravel()], axis=1
        )
        edges = np.concatenate([up_edges, leaf_edges], axis=0)
        offsets, neighbors = _edges_to_csr(n_nodes, edges)
    forwards = np.zeros(n_nodes, dtype=bool)
    forwards[:n_up] = True
    return Topology(offsets, neighbors, forwards)


def _two_tier_streamed(
    n_nodes: int,
    n_up: int,
    n_leaves: int,
    k: int,
    n_up_edges: int,
    seed: int,
    edge_block: int,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays of the streaming two-tier draw.

    Every block's stream is derived from ``(seed, kind, block_index)``,
    so blocks are independent of each other and of the shard layout;
    the leaf sampler's rejection redraws stay *within* a block.  The
    shard count targets a few blocks' worth of directed entries per
    shard buffer, keeping peak ancillary memory proportional to
    ``edge_block`` rather than the edge count.
    """
    expected_entries = 2 * (n_up_edges + n_leaves * k)
    n_shards = int(min(1024, max(1, -(-expected_entries // (4 * edge_block)))))

    def make_blocks() -> Iterator[np.ndarray]:
        for index, start in enumerate(range(0, n_up_edges, edge_block)):
            rows = min(edge_block, n_up_edges - start)
            rng = derive(seed, "two-tier-stream/up", index)
            yield rng.integers(0, n_up, size=(rows, 2), dtype=np.int64)
        leaf_rows = max(1, edge_block // k)
        for index, start in enumerate(range(0, n_leaves, leaf_rows)):
            rows = min(leaf_rows, n_leaves - start)
            rng = derive(seed, "two-tier-stream/leaf", index)
            targets = _sample_rows_without_replacement(rows, k, n_up, rng)
            ids = np.arange(n_up + start, n_up + start + rows, dtype=np.int64)
            yield np.stack([np.repeat(ids, k), targets.ravel()], axis=1)

    return edges_to_csr_stream(n_nodes, make_blocks, n_shards=n_shards)
