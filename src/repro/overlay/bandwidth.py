"""Wire-size model: from message counts to bytes.

Message counts treat a 60-byte Ping and a 4 KB QRT upload alike; the
bandwidth view converts each message class to bytes using the Gnutella
0.6 framing (23-byte descriptor header plus payload), so strategy
comparisons can be stated in the unit deployments actually provision.
Sizes follow the protocol specification and the measurement
literature's typical values; they are parameters, not constants baked
into the math.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WireModel", "DEFAULT_WIRE"]

#: Gnutella 0.6 descriptor header (23 bytes) — every message carries it.
HEADER_BYTES = 23


@dataclass(frozen=True)
class WireModel:
    """Byte sizes for each message class."""

    #: mean query payload: 2-byte flags + terms + NUL (~ 30 B observed).
    query_payload: int = 30
    #: mean per-result QueryHit payload share (descriptor + file entry).
    hit_payload_per_result: int = 90
    ping_payload: int = 0
    pong_payload: int = 14
    #: compressed QRT upload (patch variant).
    qrt_upload: int = 4_096
    #: one posting entry shipped through the DHT (id + framing).
    posting_entry: int = 12
    #: one DHT routing hop (UDP datagram with key + addresses).
    dht_hop: int = 60

    def query_bytes(self, messages: int) -> int:
        """Bytes for ``messages`` query transmissions."""
        self._check(messages)
        return messages * (HEADER_BYTES + self.query_payload)

    def hit_bytes(self, n_results: int) -> int:
        """Bytes for a QueryHit carrying ``n_results`` results."""
        self._check(n_results)
        if n_results == 0:
            return 0
        return HEADER_BYTES + n_results * self.hit_payload_per_result

    def ping_pong_bytes(self, pings: int, pongs: int) -> int:
        """Bytes for keep-alive/discovery traffic."""
        self._check(pings)
        self._check(pongs)
        return pings * (HEADER_BYTES + self.ping_payload) + pongs * (
            HEADER_BYTES + self.pong_payload
        )

    def dht_query_bytes(self, hops: int, posting_entries: int) -> int:
        """Bytes for a DHT keyword query."""
        self._check(hops)
        self._check(posting_entries)
        return hops * self.dht_hop + posting_entries * self.posting_entry

    @staticmethod
    def _check(value: int) -> None:
        if value < 0:
            raise ValueError("counts must be non-negative")


#: The default instance used by reports.
DEFAULT_WIRE = WireModel()
