"""Gnutella-style unstructured overlay: topologies, flooding, walks, search."""

from repro.overlay.advertisement import (
    AdReport,
    AdStore,
    AdvertisementConfig,
    simulate_advertisement,
)
from repro.overlay.bandwidth import DEFAULT_WIRE, WireModel
from repro.overlay.batch import BatchOutcome, BatchQueryEngine
from repro.overlay.churn import ChurnConfig, ChurnTimeline, crawl_snapshot
from repro.overlay.content import (
    BatchMatches,
    DensePostings,
    PostingShard,
    PostingShardSet,
    PostingsProvider,
    SharedContentIndex,
    intersect_postings,
    intersect_postings_batch,
    partition_postings,
)
from repro.overlay.expanding_ring import ExpandingRingResult, expanding_ring_search
from repro.overlay.gia import (
    GIA_CAPACITY_LEVELS,
    GiaSearchResult,
    gia_search,
    gia_success_rate,
    gia_topology,
    one_hop_coverage,
    sample_capacities,
)
from repro.overlay.flooding import (
    DepthEntry,
    DepthProvider,
    FloodDepthCache,
    FloodResult,
    flood,
    flood_depths,
    flood_depths_batch,
    flood_depths_iter,
    reach_fractions,
)
from repro.overlay.sharding import (
    ShardSet,
    TopologyShard,
    expand_shard,
    flood_depths_sharded,
    partition_topology,
    sharded_bfs_entry,
)
from repro.overlay.messages import Guid, QueryHit, QueryMessage, guid_factory
from repro.overlay.network import SearchOutcome, UnstructuredNetwork
from repro.overlay.protocol import GnutellaSession, ProtocolConfig
from repro.overlay.qrp import (
    QrpBatchOutcome,
    QrpFloodResult,
    QrpTables,
    qrp_flood,
    qrp_flood_batch,
)
from repro.overlay.random_walk import WalkResult, random_walk
from repro.overlay.result_cache import (
    CacheConfig,
    CacheReport,
    QueryResultCache,
    simulate_cache,
)
from repro.overlay.semantic_cluster import (
    library_similarity_topk,
    neighborhood_hit_rate,
    semantic_rewire,
)
from repro.overlay.shortcuts import (
    ShortcutConfig,
    ShortcutList,
    ShortcutReport,
    simulate_shortcuts,
)
from repro.overlay.replication import POLICIES, allocate_replicas, expected_search_size
from repro.overlay.topology import (
    Topology,
    edges_to_csr_stream,
    flat_random,
    from_networkx,
    shard_bounds,
    two_tier_gnutella,
)

__all__ = [
    "DEFAULT_WIRE",
    "WireModel",
    "AdReport",
    "AdStore",
    "AdvertisementConfig",
    "simulate_advertisement",
    "BatchMatches",
    "BatchOutcome",
    "BatchQueryEngine",
    "ChurnConfig",
    "ChurnTimeline",
    "crawl_snapshot",
    "DensePostings",
    "PostingShard",
    "PostingShardSet",
    "PostingsProvider",
    "SharedContentIndex",
    "intersect_postings",
    "intersect_postings_batch",
    "partition_postings",
    "ExpandingRingResult",
    "expanding_ring_search",
    "GIA_CAPACITY_LEVELS",
    "GiaSearchResult",
    "gia_search",
    "gia_success_rate",
    "gia_topology",
    "one_hop_coverage",
    "sample_capacities",
    "QrpBatchOutcome",
    "QrpFloodResult",
    "QrpTables",
    "qrp_flood",
    "qrp_flood_batch",
    "GnutellaSession",
    "ProtocolConfig",
    "CacheConfig",
    "CacheReport",
    "QueryResultCache",
    "simulate_cache",
    "library_similarity_topk",
    "neighborhood_hit_rate",
    "semantic_rewire",
    "ShortcutConfig",
    "ShortcutList",
    "ShortcutReport",
    "simulate_shortcuts",
    "POLICIES",
    "allocate_replicas",
    "expected_search_size",
    "DepthEntry",
    "DepthProvider",
    "FloodDepthCache",
    "FloodResult",
    "flood",
    "flood_depths",
    "flood_depths_batch",
    "flood_depths_iter",
    "reach_fractions",
    "ShardSet",
    "TopologyShard",
    "expand_shard",
    "flood_depths_sharded",
    "partition_topology",
    "sharded_bfs_entry",
    "Guid",
    "QueryHit",
    "QueryMessage",
    "guid_factory",
    "SearchOutcome",
    "UnstructuredNetwork",
    "WalkResult",
    "random_walk",
    "Topology",
    "edges_to_csr_stream",
    "flat_random",
    "from_networkx",
    "shard_bounds",
    "two_tier_gnutella",
]
