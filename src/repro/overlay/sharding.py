"""Sharded CSR topology: node-range partitions of the flood graph.

A million-node CSR no longer fits one comfortable shared-memory
segment, and a single process's BFS gather becomes the wall-clock
floor.  This module partitions a :class:`~repro.overlay.topology.Topology`
into contiguous node ranges — each shard owns the CSR rows of its
range (local offsets, global neighbor ids) — and runs the flood BFS
*shard-parallel*: every level, each shard expands only the frontier
nodes it owns and hands back the deduplicated target set, and the
coordinator merges those exchanges into the global visited/depth maps
before the next level starts.

The decomposition is exact, not approximate.  The single-segment
kernel (:func:`~repro.overlay.flooding.flood_depths`) computes a
level's new frontier as "gather all senders' neighbors, drop visited,
dedup via a scratch mask, flatnonzero" — and flatnonzero yields the
frontier *sorted*.  Here each shard dedups its own gathered targets
(:func:`expand_shard` returns them sorted-unique), the coordinator
unions them through the same scratch mask, and flatnonzero again
yields the identical sorted frontier.  Message accounting sums each
shard's gathered-target count, which partitions the single-segment
count exactly.  Depth maps and message counts are therefore bitwise
identical at every shard count, including ``n_shards=1``.

Only lossless floods run sharded (the deterministic fast path every
cache and batch consumer uses); ``p_loss`` floods stay on
:func:`~repro.overlay.flooding.flood_depths`.

The process-parallel driver (a persistent pool expanding shards
concurrently, shards published to shared memory) lives in
:mod:`repro.runtime.shards`; this module is pure numpy so the overlay
layer never imports the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.obs import metrics
from repro.overlay.flooding import (
    DEPTH_DTYPE,
    DepthEntry,
    _check_depth_horizon,
)
from repro.overlay.topology import INDEX_DTYPE, Topology, shard_bounds
from repro.utils.stats import ragged_arange

__all__ = [
    "ShardSet",
    "TopologyShard",
    "expand_shard",
    "flood_depths_sharded",
    "partition_topology",
    "sharded_bfs_entry",
]

#: One shard's level expansion: ``(unique_targets, n_messages, n_remote)``.
ExpandResult = tuple[np.ndarray, int, int]
#: Exchange callback: expand every shard's senders for one level.
ExpandFn = Callable[[Sequence[np.ndarray]], "list[ExpandResult]"]


@dataclass(frozen=True)
class TopologyShard:
    """CSR rows of one contiguous node range ``[lo, hi)``.

    ``offsets`` is re-based so ``offsets[0] == 0`` (entry counts stay
    within :data:`~repro.overlay.topology.INDEX_DTYPE` per shard even
    when the *global* entry count would not); ``neighbors`` keeps
    global node ids, so expansion needs no id translation.
    """

    lo: int
    hi: int
    offsets: np.ndarray
    neighbors: np.ndarray

    @property
    def n_local(self) -> int:
        """Number of nodes this shard owns."""
        return self.hi - self.lo

    @property
    def n_entries(self) -> int:
        """Directed CSR entries stored in this shard."""
        return self.neighbors.size


@dataclass(frozen=True)
class ShardSet:
    """A topology partitioned into contiguous node-range shards.

    ``bounds[s]:bounds[s+1]`` is shard ``s``'s node range.  ``forwards``
    stays global (1 B/node) because the coordinator filters senders
    before the exchange — workers never consult it.
    ``boundary_counts[s, t]`` counts the directed CSR entries whose
    source lies in shard ``s`` and target in shard ``t``: the
    boundary-edge index bounding how much frontier a shard can ever
    push into another, used to size/validate exchanges and to report
    the cut structure.
    """

    bounds: np.ndarray
    forwards: np.ndarray
    shards: tuple[TopologyShard, ...]
    boundary_counts: np.ndarray

    @property
    def n_nodes(self) -> int:
        """Total node count across shards."""
        return int(self.bounds[-1])

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def n_boundary_entries(self) -> int:
        """Directed CSR entries crossing a shard boundary."""
        total = int(self.boundary_counts.sum())
        local = int(np.trace(self.boundary_counts))
        return total - local

    def shard_of(self, nodes: np.ndarray) -> np.ndarray:
        """Owning shard index of each node id."""
        return np.searchsorted(self.bounds, nodes, side="right") - 1


def partition_topology(topology: Topology, n_shards: int) -> ShardSet:
    """Split a topology into ``n_shards`` contiguous node-range shards.

    Each shard's arrays are plain slices of the CSR (re-based offsets),
    so reassembling the shards in order reproduces the input arrays
    exactly.  Per-shard entry counts are guarded against
    :data:`~repro.overlay.topology.INDEX_DTYPE` overflow — the shard
    layout is precisely what lets a future global entry count exceed
    the 32-bit ceiling, so the invariant moves to the shard level.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    n = topology.n_nodes
    bounds = shard_bounds(n, n_shards)
    limit = int(np.iinfo(INDEX_DTYPE).max)
    shards: list[TopologyShard] = []
    n_effective = bounds.size - 1
    boundary = np.zeros((n_effective, n_effective), dtype=np.int64)
    for s in range(n_effective):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        start, stop = int(topology.offsets[lo]), int(topology.offsets[hi])
        if stop - start > limit:
            raise OverflowError(
                f"shard {s} (nodes [{lo}, {hi})) holds {stop - start} CSR "
                f"entries, exceeding the index dtype {INDEX_DTYPE.name} "
                f"(max {limit}); use more shards or widen INDEX_DTYPE"
            )
        offsets = (topology.offsets[lo : hi + 1] - start).astype(INDEX_DTYPE)
        neighbors = topology.neighbors[start:stop]
        shards.append(
            TopologyShard(lo=lo, hi=hi, offsets=offsets, neighbors=neighbors)
        )
        boundary[s] = np.bincount(
            np.searchsorted(bounds, neighbors, side="right") - 1,
            minlength=n_effective,
        )
    return ShardSet(
        bounds=bounds,
        forwards=topology.forwards,
        shards=tuple(shards),
        boundary_counts=boundary,
    )


def expand_shard(shard: TopologyShard, senders: np.ndarray) -> ExpandResult:
    """One shard's level expansion: gather + local dedup.

    ``senders`` are global node ids within ``[lo, hi)`` (sorted — they
    come from a flatnonzero frontier).  Returns the sorted-unique
    gathered targets (global ids), the gathered-target count (the
    shard's share of the level's message cost, duplicates included),
    and how many of the unique targets fall outside the shard's own
    range (the frontier crossings the exchange actually has to ship).
    """
    local = senders - shard.lo
    lengths = shard.offsets[local + 1] - shard.offsets[local]
    gather = np.repeat(shard.offsets[local], lengths) + ragged_arange(lengths)
    targets = shard.neighbors[gather]
    unique = np.unique(targets)
    n_local = int(
        np.searchsorted(unique, shard.hi) - np.searchsorted(unique, shard.lo)
    )
    return unique, int(targets.size), int(unique.size - n_local)


def _serial_expand(
    shards: tuple[TopologyShard, ...], parts: Sequence[np.ndarray]
) -> list[ExpandResult]:
    """In-process exchange: expand each non-empty shard in order."""
    empty = np.empty(0, dtype=np.int64)
    return [
        expand_shard(shard, senders) if senders.size else (empty, 0, 0)
        for shard, senders in zip(shards, parts)
    ]


def _sharded_bfs(
    shard_set: ShardSet,
    sources: np.ndarray,
    max_depth: int,
    expand: ExpandFn | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """Shard-parallel BFS with per-level cumulative accounting.

    Mirrors ``FloodDepthCache._bfs_with`` level for level (and thereby
    :func:`~repro.overlay.flooding.flood_depths`): the per-level
    frontier, depth map, message count, and reached count are bitwise
    identical for every shard count and every ``expand`` callback that
    faithfully runs :func:`expand_shard` per shard.
    """
    registry = metrics()
    registry.inc("shard.flood.calls")
    n = shard_set.n_nodes
    bounds = shard_set.bounds
    forwards = shard_set.forwards
    if expand is None:
        shards = shard_set.shards

        def expand_serial(parts: Sequence[np.ndarray]) -> list[ExpandResult]:
            return _serial_expand(shards, parts)

        expand = expand_serial
    depth = np.full(n, -1, dtype=DEPTH_DTYPE)
    visited = np.zeros(n, dtype=bool)
    visited[sources] = True
    depth[sources] = 0
    frontier = np.flatnonzero(visited)
    level_mask = np.zeros(n, dtype=bool)
    cum_messages = np.zeros(max_depth + 1, dtype=np.int64)
    cum_reached = np.zeros(max_depth + 1, dtype=np.int64)
    cum_reached[0] = frontier.size
    messages = 0
    exhausted = False
    for level in range(1, max_depth + 1):
        if frontier.size == 0:
            exhausted = True
        else:
            senders = frontier if level == 1 else frontier[forwards[frontier]]
            if senders.size == 0:
                exhausted = True
            else:
                # The frontier is sorted, so one searchsorted against the
                # shard bounds splits the senders into per-shard runs.
                cuts = np.searchsorted(senders, bounds)
                parts = [
                    senders[cuts[s] : cuts[s + 1]]
                    for s in range(shard_set.n_shards)
                ]
                results = expand(parts)
                level_remote = 0
                for targets, n_messages, n_remote in results:
                    messages += n_messages
                    level_remote += n_remote
                    candidates = targets[~visited[targets]]
                    level_mask[candidates] = True
                registry.inc("shard.exchange.remote_targets", level_remote)
                new = np.flatnonzero(level_mask)
                level_mask[new] = False
                visited[new] = True
                depth[new] = level
                frontier = new
        if exhausted:
            cum_messages[level:] = messages
            cum_reached[level:] = cum_reached[level - 1]
            break
        cum_messages[level] = messages
        cum_reached[level] = cum_reached[level - 1] + frontier.size
    if not exhausted and frontier.size == 0:
        exhausted = True
    registry.inc("shard.exchange.messages", messages)
    return depth, cum_messages, cum_reached, exhausted


def flood_depths_sharded(
    shard_set: ShardSet,
    sources: np.ndarray | int,
    max_depth: int,
    *,
    expand: ExpandFn | None = None,
) -> tuple[np.ndarray, int]:
    """Shard-parallel ``flood_depths``: ``(depth, messages)``.

    Bitwise identical to
    ``flood_depths(topology, sources, max_depth)`` on the unsharded
    topology, for any shard count.  ``expand`` overrides the exchange
    step (the process-parallel runner does); ``None`` expands every
    shard in-process.
    """
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    _check_depth_horizon(max_depth)
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    depth, cum_messages, _, _ = _sharded_bfs(shard_set, sources, max_depth, expand)
    return depth, int(cum_messages[-1])


def sharded_bfs_entry(
    shard_set: ShardSet,
    source: int,
    max_depth: int,
    *,
    expand: ExpandFn | None = None,
) -> DepthEntry:
    """One source's full-horizon sharded BFS as a cacheable entry.

    Field-for-field equal to ``FloodDepthCache._bfs`` on the unsharded
    topology, so a :class:`~repro.overlay.flooding.FloodDepthCache`
    backed by a sharded provider serves bitwise-identical answers.
    """
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    _check_depth_horizon(max_depth)
    sources = np.asarray([source], dtype=np.int64)
    depth, cum_messages, cum_reached, exhausted = _sharded_bfs(
        shard_set, sources, max_depth, expand
    )
    return DepthEntry(
        source=int(source),
        depth=depth,
        cum_messages=cum_messages,
        cum_reached=cum_reached,
        exhausted=exhausted,
    )
