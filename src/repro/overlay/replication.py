"""Replication policies for unstructured search (Cohen & Shenker).

The paper's §III finding — objects are insufficiently replicated for
flooding — begs the question of what replication *could* achieve.  The
classic answer: for random-probe searches, allocating a replica budget
proportionally to the **square root** of each object's query rate
minimizes the expected search size; uniform and query-proportional
allocations are both worse.

Two things make this module more than a textbook exercise here:

* the optimal policy needs the *query* rates — a content-centric
  system cannot compute it, which is one more argument for the paper's
  query-centric position; and
* under the measured query/file mismatch, allocating by *file*
  popularity (what a content-centric replicator would do) misallocates
  the budget, which `repro.core`'s ablations quantify.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "allocate_replicas",
    "expected_search_size",
    "POLICIES",
]

POLICIES = ("uniform", "proportional", "square-root")


def allocate_replicas(
    query_weights: np.ndarray, budget: int, policy: str
) -> np.ndarray:
    """Integer replica counts per object under a replication policy.

    ``query_weights`` are non-negative relative query rates; ``budget``
    is the total number of replicas to place.  Every object receives at
    least one replica (it exists somewhere); the remaining budget is
    apportioned by the policy with largest-remainder rounding so the
    counts sum exactly to ``budget``.
    """
    weights = np.asarray(query_weights, dtype=np.float64)
    n = weights.size
    if n == 0:
        raise ValueError("need at least one object")
    if np.any(weights < 0):
        raise ValueError("query weights must be non-negative")
    if budget < n:
        raise ValueError(f"budget {budget} cannot give every object one replica (n={n})")
    if policy == "uniform":
        shares = np.ones(n)
    elif policy == "proportional":
        shares = weights.copy()
    elif policy == "square-root":
        shares = np.sqrt(weights)
    else:
        raise ValueError(f"unknown policy: {policy!r} (choose from {POLICIES})")
    if shares.sum() == 0:
        shares = np.ones(n)

    extra = budget - n
    raw = shares / shares.sum() * extra
    counts = np.floor(raw).astype(np.int64)
    remainder = extra - int(counts.sum())
    if remainder > 0:
        order = np.argsort(raw - counts)[::-1]
        counts[order[:remainder]] += 1
    return counts + 1


def expected_search_size(
    counts: np.ndarray, query_weights: np.ndarray, n_nodes: int
) -> float:
    """Expected random probes per query under a replica allocation.

    With ``c`` replicas uniformly placed among ``n`` nodes, uniform
    random probing needs ``(n + 1) / (c + 1)`` probes in expectation to
    hit one.  The returned value is the query-rate-weighted mean — the
    objective square-root replication minimizes.
    """
    counts = np.asarray(counts, dtype=np.float64)
    weights = np.asarray(query_weights, dtype=np.float64)
    if counts.shape != weights.shape:
        raise ValueError("counts and weights must be aligned")
    if np.any(counts < 1):
        raise ValueError("every object needs at least one replica")
    if n_nodes < counts.max():
        raise ValueError("more replicas of an object than nodes")
    total = weights.sum()
    if total == 0:
        raise ValueError("query weights sum to zero")
    probes = (n_nodes + 1.0) / (counts + 1.0)
    return float(np.sum(weights * probes) / total)
