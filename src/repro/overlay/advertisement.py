"""ASAP-style advertisement-based search (paper §VI, ref [21]).

Cai, Gu & Wang's ASAP inverts the search direction: instead of
queries chasing content, content *advertises itself* — each provider
pushes a compact summary of (some of) its terms to a random set of
peers, and a query first consults the local advertisement store,
yielding one-hop resolution when an ad matches.

Like QRP and the synopsis system, an ad is capacity-limited, so the
*selection policy* decides its worth — and the paper's mismatch
applies with full force: advertising the terms that are popular among
files fills stores with summaries nobody queries.  The X-ASAP bench
measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.content import SharedContentIndex
from repro.tracegen.query_trace import QueryWorkload
from repro.utils.rng import derive

__all__ = ["AdvertisementConfig", "AdStore", "AdReport", "simulate_advertisement"]


@dataclass(frozen=True)
class AdvertisementConfig:
    """Advertisement-system parameters."""

    #: terms each provider may include in its advertisement.
    ad_capacity: int = 16
    #: peers each provider pushes its ad to.
    fanout: int = 20
    #: ad-selection policy: "content" (file-popular terms) or "query"
    #: (historically query-popular terms).
    policy: str = "query"
    #: fraction of the trace (by time) used for the historical scores.
    train_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.ad_capacity < 1:
            raise ValueError("ad_capacity must be positive")
        if self.fanout < 1:
            raise ValueError("fanout must be positive")
        if self.policy not in ("content", "query"):
            raise ValueError(f"unknown policy: {self.policy!r}")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")


class AdStore:
    """The network's advertisement state.

    ``store[v]`` maps advertised term ids to the providers that pushed
    an ad containing the term to peer ``v``.
    """

    def __init__(self, n_peers: int) -> None:
        self.n_peers = n_peers
        self.store: list[dict[int, set[int]]] = [dict() for _ in range(n_peers)]
        self.ads_pushed = 0

    def push(self, provider: int, terms: np.ndarray, targets: np.ndarray) -> None:
        """Deliver one provider's ad to its target peers."""
        for t in targets:
            entry = self.store[int(t)]
            for term in terms:
                entry.setdefault(int(term), set()).add(provider)
        self.ads_pushed += int(targets.size)

    def local_providers(self, peer: int, term_ids: np.ndarray) -> set[int]:
        """Providers whose ads at ``peer`` cover *all* query terms."""
        entry = self.store[peer]
        out: set[int] | None = None
        for term in term_ids:
            providers = entry.get(int(term))
            if not providers:
                return set()
            out = providers.copy() if out is None else (out & providers)
            if not out:
                return set()
        return out or set()


@dataclass(frozen=True)
class AdReport:
    """Outcome of an advertisement-search replay."""

    policy: str
    #: fraction of resolvable queries answered from the local ad store.
    local_hit_rate: float
    #: fraction of local hits that were true (provider really matches).
    precision: float
    ads_pushed: int
    n_queries: int


def simulate_advertisement(
    workload: QueryWorkload,
    content: SharedContentIndex,
    config: AdvertisementConfig | None = None,
    *,
    max_queries: int = 3_000,
    seed: int = 0,
) -> AdReport:
    """Build the ad stores, then replay queries against them.

    A query is a *local hit* when the requester's own ad store names a
    provider for all its terms; precision checks the provider actually
    holds a matching file (ads summarize term sets, so cross-file term
    combinations can produce false providers — the same false-positive
    mode QRP has).
    """
    cfg = config or AdvertisementConfig()
    rng = derive(seed, "asap")
    n_peers = content.n_peers
    n_terms = content.term_index.n_terms

    # Selection scores.
    if cfg.policy == "content":
        scores = content.term_peer_counts().astype(np.float64)
    else:
        cutoff = cfg.train_fraction * workload.config.duration_s
        n_train = int(np.searchsorted(workload.timestamps, cutoff))
        vocab_content = np.asarray(
            [
                content.term_id(w) if content.term_id(w) is not None else -1
                for w in workload.vocab_words
            ],
            dtype=np.int64,
        )
        train = vocab_content[workload.term_ids[: workload.term_offsets[n_train]]]
        scores = np.bincount(train[train >= 0], minlength=n_terms).astype(np.float64)

    # Providers advertise their top-capacity terms by score.
    store = AdStore(n_peers)
    terms_flat = content._posting_terms
    peers_flat = content.instance_peer[content._posting_instances]
    pairs = np.unique(peers_flat.astype(np.int64) * n_terms + terms_flat)
    peer_of = pairs // n_terms
    term_of = pairs % n_terms
    boundaries = np.searchsorted(peer_of, np.arange(n_peers + 1))
    for p in range(n_peers):
        terms = term_of[boundaries[p] : boundaries[p + 1]]
        if terms.size == 0:
            continue
        if terms.size > cfg.ad_capacity:
            order = np.argsort(scores[terms], kind="stable")[::-1]
            terms = terms[order[: cfg.ad_capacity]]
        targets = rng.choice(n_peers, size=min(cfg.fanout, n_peers), replace=False)
        store.push(p, terms, targets)

    # Replay evaluation queries from the post-training stream.
    cutoff = cfg.train_fraction * workload.config.duration_s
    n_train = int(np.searchsorted(workload.timestamps, cutoff))
    pool = np.arange(n_train, workload.n_queries)
    picks = pool[np.linspace(0, pool.size - 1, min(max_queries, pool.size)).astype(int)]
    requesters = rng.integers(0, n_peers, size=picks.size)

    hits = 0
    true_hits = 0
    evaluated = 0
    for qi, requester in zip(picks, requesters):
        words = workload.query_words(int(qi))
        matching = content.matching_peers(words)
        if matching.size == 0:
            continue  # unresolvable anywhere: ads can't be blamed
        evaluated += 1
        ids = [content.term_id(w) for w in words]
        if any(i is None for i in ids):
            continue
        providers = store.local_providers(int(requester), np.asarray(ids))
        if providers:
            hits += 1
            if providers & set(int(p) for p in matching):
                true_hits += 1
    return AdReport(
        policy=cfg.policy,
        local_hit_rate=hits / max(1, evaluated),
        precision=true_hits / max(1, hits),
        ads_pushed=store.ads_pushed,
        n_queries=evaluated,
    )
