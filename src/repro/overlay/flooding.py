"""TTL-scoped flooding (Gnutella Query propagation).

A query starts at a source with a time-to-live; every *forwarding*
node relays it to all neighbors, decrementing the TTL, with GUID-based
duplicate suppression (each node processes a query once).  The reached
set is therefore the BFS ball of radius TTL, restricted to paths whose
interior nodes forward.

Everything is vectorized: the BFS frontier is a numpy array and each
level is one gather + dedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.overlay.topology import Topology
from repro.utils.stats import ragged_arange

__all__ = ["FloodResult", "flood", "flood_depths", "reach_fractions"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flood.

    ``depth[v]`` is the hop count at which ``v`` first saw the query
    (-1 = never reached; 0 = the source itself).  ``messages`` counts
    query transmissions, including duplicates suppressed on arrival —
    the real network cost of the flood.
    """

    source: int
    ttl: int
    depth: np.ndarray
    messages: int

    @property
    def reached(self) -> np.ndarray:
        """Ids of all nodes that saw the query (including the source)."""
        return np.flatnonzero(self.depth >= 0)

    @property
    def n_reached(self) -> int:
        """Number of nodes that saw the query."""
        return int(np.count_nonzero(self.depth >= 0))


def flood_depths(
    topology: Topology,
    sources: np.ndarray | int,
    max_depth: int,
    *,
    p_loss: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Multi-source BFS depth map honoring forwarding rules.

    Returns ``(depth, messages)``.  ``sources`` always emit (a leaf
    source still sends to its ultrapeers); beyond that, only nodes
    with ``topology.forwards`` relay.  ``messages`` counts every
    transmission (duplicates included), matching Gnutella accounting.

    ``p_loss`` drops each individual transmission independently (UDP
    loss, overloaded peers): lost messages still count as sent, but
    never deliver.  Requires ``rng`` when positive.
    """
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    if not 0.0 <= p_loss < 1.0:
        raise ValueError(f"p_loss must be in [0, 1), got {p_loss}")
    if p_loss > 0.0 and rng is None:
        raise ValueError("p_loss > 0 requires an rng")
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    depth = np.full(topology.n_nodes, -1, dtype=np.int64)
    depth[sources] = 0
    frontier = np.unique(sources)
    messages = 0
    offsets, neighbors = topology.offsets, topology.neighbors
    for level in range(1, max_depth + 1):
        if frontier.size == 0:
            break
        # Only forwarding nodes relay, except at level 1 where the
        # sources themselves emit.
        senders = frontier if level == 1 else frontier[topology.forwards[frontier]]
        if senders.size == 0:
            break
        lengths = offsets[senders + 1] - offsets[senders]
        gather = np.repeat(offsets[senders], lengths) + ragged_arange(lengths)
        targets = neighbors[gather]
        messages += targets.size
        if p_loss > 0.0:
            targets = targets[rng.random(targets.size) >= p_loss]
        new = np.unique(targets[depth[targets] < 0])
        depth[new] = level
        frontier = new
    return depth, messages


def flood(topology: Topology, source: int, ttl: int) -> FloodResult:
    """Flood from one source with the given TTL."""
    depth, messages = flood_depths(topology, source, ttl)
    return FloodResult(source=source, ttl=ttl, depth=depth, messages=messages)


def reach_fractions(
    topology: Topology,
    sources: np.ndarray,
    ttls: np.ndarray | list[int],
) -> np.ndarray:
    """Mean fraction of nodes reached per TTL, averaged over sources.

    One BFS per source computes every TTL at once (TTL ``t`` reach is
    the number of nodes at depth <= ``t``).  This regenerates the
    paper's §V reach table (0.05% @ TTL 1 ... 82.95% @ TTL 5).
    """
    ttls = np.asarray(ttls, dtype=np.int64)
    if ttls.size == 0:
        raise ValueError("need at least one TTL")
    max_ttl = int(ttls.max())
    out = np.zeros((len(sources), ttls.size), dtype=np.float64)
    n = topology.n_nodes
    for i, s in enumerate(np.asarray(sources, dtype=np.int64)):
        depth, _ = flood_depths(topology, int(s), max_ttl)
        reached = depth[depth >= 0]
        level_counts = np.bincount(reached, minlength=max_ttl + 1)
        cum = np.cumsum(level_counts)
        # Exclude the source itself from "peers reached".
        out[i] = (cum[ttls] - 1) / n
    return out.mean(axis=0)
