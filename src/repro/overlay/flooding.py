"""TTL-scoped flooding (Gnutella Query propagation).

A query starts at a source with a time-to-live; every *forwarding*
node relays it to all neighbors, decrementing the TTL, with GUID-based
duplicate suppression (each node processes a query once).  The reached
set is therefore the BFS ball of radius TTL, restricted to paths whose
interior nodes forward.

Everything is vectorized: the BFS frontier is a numpy array, each
level is one CSR gather, and duplicate suppression runs on boolean
masks (a ``visited`` map plus a reusable per-level scratch mask)
instead of sorting the frontier with ``np.unique`` — the sort was the
kernel's hot spot at the 40k-node Fig. 8 scale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import partial
from typing import Iterator, Protocol

import numpy as np

from repro.obs import metrics
from repro.overlay.topology import Topology
from repro.utils.stats import ragged_arange

__all__ = [
    "DEPTH_DTYPE",
    "DepthEntry",
    "DepthProvider",
    "FloodDepthCache",
    "FloodResult",
    "flood",
    "flood_depths",
    "flood_depths_batch",
    "flood_depths_iter",
    "reach_fractions",
]

#: Depth-map element type.  Hop counts are tiny (the Fig. 8 protocol
#: caps TTL at 5; graph diameters stay far below 2**15) so int16 cuts
#: the per-node depth cost 4x versus the int64 seed.  int16 rather
#: than uint16 because -1 is the "never reached" sentinel throughout;
#: :func:`_check_depth_horizon` rejects horizons past ``iinfo.max``.
DEPTH_DTYPE = np.dtype(np.int16)


def _check_depth_horizon(max_depth: int) -> None:
    """Refuse BFS horizons the depth dtype cannot represent."""
    limit = int(np.iinfo(DEPTH_DTYPE).max)
    if max_depth > limit:
        raise OverflowError(
            f"max_depth {max_depth} exceeds the depth dtype "
            f"{DEPTH_DTYPE.name} (max {limit}); widen DEPTH_DTYPE"
        )


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flood.

    ``depth[v]`` is the hop count at which ``v`` first saw the query
    (-1 = never reached; 0 = the source itself).  ``messages`` counts
    query transmissions, including duplicates suppressed on arrival —
    the real network cost of the flood.
    """

    source: int
    ttl: int
    depth: np.ndarray
    messages: int

    @property
    def reached(self) -> np.ndarray:
        """Ids of all nodes that saw the query (including the source)."""
        return np.flatnonzero(self.depth >= 0)

    @property
    def n_reached(self) -> int:
        """Number of nodes that saw the query."""
        return int(np.count_nonzero(self.depth >= 0))


def flood_depths(
    topology: Topology,
    sources: np.ndarray | int,
    max_depth: int,
    *,
    p_loss: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Multi-source BFS depth map honoring forwarding rules.

    Returns ``(depth, messages)``.  ``sources`` always emit (a leaf
    source still sends to its ultrapeers); beyond that, only nodes
    with ``topology.forwards`` relay.  ``messages`` counts every
    transmission (duplicates included), matching Gnutella accounting.

    ``p_loss`` drops each individual transmission independently (UDP
    loss, overloaded peers): lost messages still count as sent, but
    never deliver.  Requires ``rng`` when positive.
    """
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    _check_depth_horizon(max_depth)
    if not 0.0 <= p_loss < 1.0:
        raise ValueError(f"p_loss must be in [0, 1), got {p_loss}")
    if p_loss > 0.0 and rng is None:
        raise ValueError("p_loss > 0 requires an rng")
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    n = topology.n_nodes
    depth = np.full(n, -1, dtype=DEPTH_DTYPE)
    visited = np.zeros(n, dtype=bool)
    visited[sources] = True
    depth[sources] = 0
    frontier = np.flatnonzero(visited)  # sorted unique sources
    # Reusable per-level scratch, tracked by the sanitizer: under
    # REPRO_SANITIZE=shm it is poisoned on release, so any path that
    # kept a stale reference would fault bitwise instead of silently.
    from repro.runtime.sanitize import scratch_alloc, scratch_release

    level_mask = scratch_alloc(n, bool)
    messages = 0
    offsets, neighbors, forwards = (
        topology.offsets,
        topology.neighbors,
        topology.forwards,
    )
    try:
        for level in range(1, max_depth + 1):
            if frontier.size == 0:
                break
            # Only forwarding nodes relay, except at level 1 where the
            # sources themselves emit.
            senders = frontier if level == 1 else frontier[forwards[frontier]]
            if senders.size == 0:
                break
            lengths = offsets[senders + 1] - offsets[senders]
            gather = np.repeat(offsets[senders], lengths) + ragged_arange(lengths)
            targets = neighbors[gather]
            messages += targets.size
            if p_loss > 0.0:
                assert rng is not None  # validated above
                targets = targets[rng.random(targets.size) >= p_loss]
            # Duplicate suppression without sorting: candidates are the
            # unvisited targets; marking them in the scratch mask
            # collapses within-level duplicates, and flatnonzero yields
            # them sorted.
            candidates = targets[~visited[targets]]
            level_mask[candidates] = True
            new = np.flatnonzero(level_mask)
            level_mask[new] = False
            visited[new] = True
            depth[new] = level
            frontier = new
    finally:
        scratch_release(level_mask)
    registry = metrics()
    registry.inc("flood.calls")
    registry.inc("flood.messages", int(messages))
    return depth, int(messages)


@dataclass(frozen=True)
class DepthEntry:
    """One source's cached full-horizon BFS, sliceable by TTL.

    ``depth`` is the unbounded hop count (-1 = unreachable within the
    horizon); ``cum_messages[t]`` / ``cum_reached[t]`` are the message
    cost and reached-node count of a flood with TTL ``t``.  Because a
    lossless flood's level ``t`` frontier depends only on levels
    ``< t``, every TTL up to the horizon is a slice of one BFS —
    expanding-ring re-floods become array lookups while keeping the
    per-ring protocol cost accounting exact.
    """

    source: int
    depth: np.ndarray
    cum_messages: np.ndarray
    cum_reached: np.ndarray
    #: True when the BFS exhausted the reachable set before the
    #: horizon: the entry is then valid for *any* TTL.
    exhausted: bool

    @property
    def horizon(self) -> int:
        """Deepest TTL the cumulative accounting covers."""
        return self.cum_messages.size - 1

    def supports(self, ttl: int) -> bool:
        """Can this entry answer a TTL-``ttl`` flood exactly?"""
        return self.exhausted or ttl <= self.horizon

    def messages(self, ttl: int) -> int:
        """Message cost of a flood with the given TTL."""
        return int(self.cum_messages[min(ttl, self.horizon)])

    def reached(self, ttl: int) -> int:
        """Nodes reached (source included) by a flood with this TTL."""
        return int(self.cum_reached[min(ttl, self.horizon)])

    def depth_at(self, ttl: int) -> np.ndarray:
        """The ``flood_depths`` depth map of a TTL-``ttl`` flood."""
        # The sentinel carries the depth dtype: a 0-d int64 would
        # promote the whole result back to int64 under NEP 50.
        return np.where(
            (self.depth >= 0) & (self.depth <= ttl),
            self.depth,
            DEPTH_DTYPE.type(-1),
        )


class DepthProvider(Protocol):
    """Anything that can compute one source's full-horizon BFS entry.

    :class:`~repro.runtime.shards.ShardedFloodRunner` satisfies this,
    which is how the depth cache (and everything built on it) runs its
    BFS shard-parallel without the overlay layer importing the
    runtime.  Implementations must be field-for-field equal to
    ``FloodDepthCache._bfs`` for the cache's slicing contract to hold.
    """

    def bfs_entry(self, source: int, max_depth: int) -> "DepthEntry": ...


class FloodDepthCache:
    """Bounded per-source cache of lossless flood depth maps.

    Batched query evaluation floods the same sources over and over —
    Zipf workloads repeat sources, expanding rings re-flood one source
    at growing TTLs, strategy comparisons replay identical samples.
    The cache BFS-es each source once to the requested horizon (with
    reusable visited/frontier scratch instead of fresh ``n_nodes``
    allocations per call) and answers every later (source, ttl) pair
    from the stored :class:`DepthEntry`.  Entries are LRU-evicted
    beyond ``max_entries``; a request deeper than a stored horizon
    recomputes that source at the deeper horizon.

    A ``provider`` (e.g. a sharded runner) replaces the in-process BFS
    as the entry source; ``topology`` may then be omitted.  Only
    deterministic (lossless) floods are cacheable; ``p_loss`` floods
    must keep using :func:`flood_depths`.
    """

    def __init__(
        self,
        topology: Topology | None = None,
        *,
        max_entries: int = 256,
        provider: DepthProvider | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if topology is None and provider is None:
            raise ValueError("need a topology or a depth provider")
        self.topology = topology
        self.provider = provider
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, DepthEntry]" = OrderedDict()
        if topology is not None and provider is None:
            n = topology.n_nodes
            # Reusable per-BFS scratch (reset costs a memset, not an
            # alloc).  Guarded by _scratch_lock: a second concurrent BFS
            # would write into the same visited/frontier masks and
            # silently corrupt both depth maps, so contended calls fall
            # back to fresh allocations instead of sharing.
            self._visited = np.zeros(n, dtype=bool)
            self._level_mask = np.zeros(n, dtype=bool)
        self._scratch_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, source: int, min_depth: int) -> DepthEntry:
        """The cached BFS of ``source``, valid to at least ``min_depth``."""
        if min_depth < 0:
            raise ValueError(f"min_depth must be non-negative, got {min_depth}")
        _check_depth_horizon(min_depth)
        source = int(source)
        registry = metrics()
        cached = self._entries.get(source)
        if cached is not None and cached.supports(min_depth):
            self._entries.move_to_end(source)
            registry.inc("flood.cache.hits")
            return cached
        registry.inc("flood.cache.misses")
        entry = self._bfs(source, min_depth)
        self._entries[source] = entry
        self._entries.move_to_end(source)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            registry.inc("flood.cache.evictions")
        return entry

    def _bfs(self, source: int, max_depth: int) -> DepthEntry:
        """One full BFS with per-level cumulative accounting.

        Mirrors :func:`flood_depths` level for level, so
        ``entry.depth_at(t)`` / ``entry.messages(t)`` are bitwise equal
        to ``flood_depths(topology, source, t)`` for every
        ``t <= max_depth``.
        """
        if self.provider is not None:
            return self.provider.bfs_entry(source, max_depth)
        assert self.topology is not None  # enforced in __init__
        if self._scratch_lock.acquire(blocking=False):
            try:
                return self._bfs_with(
                    source, max_depth, self._visited, self._level_mask
                )
            finally:
                self._scratch_lock.release()
        # Another BFS on this instance holds the scratch (threaded use);
        # a private allocation keeps both depth maps correct.
        metrics().inc("flood.cache.scratch_contention")
        n = self.topology.n_nodes
        return self._bfs_with(
            source, max_depth,
            np.zeros(n, dtype=bool), np.zeros(n, dtype=bool),
        )

    def _bfs_with(
        self,
        source: int,
        max_depth: int,
        visited: np.ndarray,
        level_mask: np.ndarray,
    ) -> DepthEntry:
        """The BFS body, writing into caller-owned scratch masks."""
        metrics().inc("flood.cache.bfs")
        topology = self.topology
        assert topology is not None  # provider-less caches always have one
        n = topology.n_nodes
        depth = np.full(n, -1, dtype=DEPTH_DTYPE)
        visited[:] = False
        visited[source] = True
        depth[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        cum_messages = np.zeros(max_depth + 1, dtype=np.int64)
        cum_reached = np.zeros(max_depth + 1, dtype=np.int64)
        cum_reached[0] = 1
        messages = 0
        exhausted = False
        offsets, neighbors, forwards = (
            topology.offsets,
            topology.neighbors,
            topology.forwards,
        )
        for level in range(1, max_depth + 1):
            if frontier.size == 0:
                exhausted = True
            else:
                senders = frontier if level == 1 else frontier[forwards[frontier]]
                if senders.size == 0:
                    exhausted = True
                else:
                    lengths = offsets[senders + 1] - offsets[senders]
                    gather = np.repeat(offsets[senders], lengths) + ragged_arange(
                        lengths
                    )
                    targets = neighbors[gather]
                    messages += targets.size
                    candidates = targets[~visited[targets]]
                    level_mask[candidates] = True
                    new = np.flatnonzero(level_mask)
                    level_mask[new] = False
                    visited[new] = True
                    depth[new] = level
                    frontier = new
            if exhausted:
                cum_messages[level:] = messages
                cum_reached[level:] = cum_reached[level - 1]
                break
            cum_messages[level] = messages
            cum_reached[level] = cum_reached[level - 1] + frontier.size
        if not exhausted and frontier.size == 0:
            exhausted = True
        return DepthEntry(
            source=source,
            depth=depth,
            cum_messages=cum_messages,
            cum_reached=cum_reached,
            exhausted=exhausted,
        )


def flood_depths_batch(
    topology: Topology,
    sources: np.ndarray,
    max_depth: int,
    *,
    cache: FloodDepthCache | None = None,
    provider: DepthProvider | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Depth maps and message counts of many floods in one call.

    Returns ``(depth, messages)`` where ``depth[i]`` is the
    ``flood_depths(topology, sources[i], max_depth)`` depth map and
    ``messages[i]`` its message count — bitwise identical to the
    per-source kernel, but repeated sources BFS once, and all floods
    share one scratch set.  Pass an existing ``cache`` to also reuse
    BFS results across calls (e.g. expanding-ring schedules), or a
    ``provider`` (e.g. a sharded runner) to run the BFS elsewhere.

    The row-per-source depth matrix costs
    ``n_sources * n_nodes * 2`` bytes; workload-scale consumers must
    either use :func:`flood_depths_iter` (bounded chunks of rows) or
    :class:`FloodDepthCache` directly (the batched query engine does)
    and read per-query quantities off the shared entries.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    cache = _batch_cache(topology, sources, cache, provider)
    depth = np.empty((sources.size, topology.n_nodes), dtype=DEPTH_DTYPE)
    messages = np.empty(sources.size, dtype=np.int64)
    for i, s in enumerate(sources):
        entry = cache.entry(int(s), max_depth)
        depth[i] = entry.depth_at(max_depth)
        messages[i] = entry.messages(max_depth)
    return depth, messages


def _batch_cache(
    topology: Topology | None,
    sources: np.ndarray,
    cache: FloodDepthCache | None,
    provider: DepthProvider | None,
) -> FloodDepthCache:
    """The depth cache a batch call evaluates against."""
    if cache is not None:
        return cache
    return FloodDepthCache(
        topology,
        max_entries=max(1, np.unique(sources).size),
        provider=provider,
    )


def flood_depths_iter(
    sources: np.ndarray,
    max_depth: int,
    *,
    topology: Topology | None = None,
    cache: FloodDepthCache | None = None,
    provider: DepthProvider | None = None,
    chunk_size: int = 64,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Streaming :func:`flood_depths_batch`: bounded resident rows.

    Yields ``(chunk_sources, depth, messages)`` triples where rows of
    ``depth`` are the depth maps of ``chunk_sources`` (at most
    ``chunk_size`` of them, in input order) — row-for-row bitwise
    identical to the matrix :func:`flood_depths_batch` would build,
    without ever materializing more than ``chunk_size * n_nodes``
    depth entries.  Workload-scale consumers iterate and reduce;
    repeated sources still BFS once via the shared ``cache`` (pass
    one to also reuse results across calls).

    Exactly one of ``topology``/``cache``/``provider`` must anchor the
    BFS; ``chunk_size`` bounds peak memory, not the schedule — chunks
    are contiguous slices of ``sources``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if topology is None and cache is None and provider is None:
        raise ValueError("need a topology, cache, or depth provider")
    cache = _batch_cache(topology, sources, cache, provider)
    for start in range(0, sources.size, chunk_size):
        chunk = sources[start : start + chunk_size]
        entries = [cache.entry(int(s), max_depth) for s in chunk]
        depth = np.stack([e.depth_at(max_depth) for e in entries])
        messages = np.asarray(
            [e.messages(max_depth) for e in entries], dtype=np.int64
        )
        yield chunk, depth, messages


def flood(
    topology: Topology,
    source: int,
    ttl: int,
    *,
    p_loss: float = 0.0,
    rng: np.random.Generator | None = None,
) -> FloodResult:
    """Flood from one source with the given TTL.

    ``p_loss``/``rng`` model lossy transport exactly as in
    :func:`flood_depths`: each transmission is dropped independently
    with probability ``p_loss`` (still counted in ``messages``).
    """
    depth, messages = flood_depths(topology, source, ttl, p_loss=p_loss, rng=rng)
    return FloodResult(source=source, ttl=ttl, depth=depth, messages=messages)


def _reach_row(topology: Topology, source: int, ttls: np.ndarray, max_ttl: int) -> np.ndarray:
    """Per-TTL reach fractions of one source's flood."""
    depth, _ = flood_depths(topology, source, max_ttl)
    reached = depth[depth >= 0]
    level_counts = np.bincount(reached, minlength=max_ttl + 1)
    cum = np.cumsum(level_counts)
    # Exclude the source itself from "peers reached".
    return (cum[ttls] - 1) / topology.n_nodes


def _reach_row_task(source: int, *, spec, ttls, max_ttl):
    """Worker task: attach the shared topology, compute one row.

    A lossless flood is a pure function of its source, so the task is
    registered with ``needs_rng=False`` — no per-row seed derivation,
    and no unused ``rng`` parameter inviting misuse.
    """
    # Deferred import: repro.runtime sits above the overlay layer.
    from repro.runtime.shm import attach_topology

    return _reach_row(attach_topology(spec), int(source), ttls, max_ttl)


def reach_fractions(
    topology: Topology,
    sources: np.ndarray,
    ttls: np.ndarray | list[int],
    *,
    n_workers: int = 1,
) -> np.ndarray:
    """Mean fraction of nodes reached per TTL, averaged over sources.

    One BFS per source computes every TTL at once (TTL ``t`` reach is
    the number of nodes at depth <= ``t``).  This regenerates the
    paper's §V reach table (0.05% @ TTL 1 ... 82.95% @ TTL 5).

    ``n_workers > 1`` fans the per-source floods out over a process
    pool (the topology travels via shared memory); the result is
    bitwise-identical to the serial run because each flood is a pure
    function of its source.
    """
    ttls = np.asarray(ttls, dtype=np.int64)
    if ttls.size == 0:
        raise ValueError("need at least one TTL")
    max_ttl = int(ttls.max())
    source_list = [int(s) for s in np.asarray(sources, dtype=np.int64)]
    if n_workers <= 1 or len(source_list) <= 1:
        rows = [_reach_row(topology, s, ttls, max_ttl) for s in source_list]
    else:
        from repro.runtime.parallel import pmap
        from repro.runtime.shm import SharedTopology

        with SharedTopology(topology) as share:
            task = partial(
                _reach_row_task, spec=share.spec, ttls=ttls, max_ttl=max_ttl
            )
            rows = pmap(
                task, source_list,
                seed=0, key="reach", n_workers=n_workers, needs_rng=False,
            )
    return np.stack(rows).mean(axis=0)
