"""TTL-scoped flooding (Gnutella Query propagation).

A query starts at a source with a time-to-live; every *forwarding*
node relays it to all neighbors, decrementing the TTL, with GUID-based
duplicate suppression (each node processes a query once).  The reached
set is therefore the BFS ball of radius TTL, restricted to paths whose
interior nodes forward.

Everything is vectorized: the BFS frontier is a numpy array, each
level is one CSR gather, and duplicate suppression runs on boolean
masks (a ``visited`` map plus a reusable per-level scratch mask)
instead of sorting the frontier with ``np.unique`` — the sort was the
kernel's hot spot at the 40k-node Fig. 8 scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.overlay.topology import Topology
from repro.utils.stats import ragged_arange

__all__ = ["FloodResult", "flood", "flood_depths", "reach_fractions"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flood.

    ``depth[v]`` is the hop count at which ``v`` first saw the query
    (-1 = never reached; 0 = the source itself).  ``messages`` counts
    query transmissions, including duplicates suppressed on arrival —
    the real network cost of the flood.
    """

    source: int
    ttl: int
    depth: np.ndarray
    messages: int

    @property
    def reached(self) -> np.ndarray:
        """Ids of all nodes that saw the query (including the source)."""
        return np.flatnonzero(self.depth >= 0)

    @property
    def n_reached(self) -> int:
        """Number of nodes that saw the query."""
        return int(np.count_nonzero(self.depth >= 0))


def flood_depths(
    topology: Topology,
    sources: np.ndarray | int,
    max_depth: int,
    *,
    p_loss: float = 0.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Multi-source BFS depth map honoring forwarding rules.

    Returns ``(depth, messages)``.  ``sources`` always emit (a leaf
    source still sends to its ultrapeers); beyond that, only nodes
    with ``topology.forwards`` relay.  ``messages`` counts every
    transmission (duplicates included), matching Gnutella accounting.

    ``p_loss`` drops each individual transmission independently (UDP
    loss, overloaded peers): lost messages still count as sent, but
    never deliver.  Requires ``rng`` when positive.
    """
    if max_depth < 0:
        raise ValueError(f"max_depth must be non-negative, got {max_depth}")
    if not 0.0 <= p_loss < 1.0:
        raise ValueError(f"p_loss must be in [0, 1), got {p_loss}")
    if p_loss > 0.0 and rng is None:
        raise ValueError("p_loss > 0 requires an rng")
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    n = topology.n_nodes
    depth = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    visited[sources] = True
    depth[sources] = 0
    frontier = np.flatnonzero(visited)  # sorted unique sources
    level_mask = np.zeros(n, dtype=bool)  # reusable per-level scratch
    messages = 0
    offsets, neighbors, forwards = (
        topology.offsets,
        topology.neighbors,
        topology.forwards,
    )
    for level in range(1, max_depth + 1):
        if frontier.size == 0:
            break
        # Only forwarding nodes relay, except at level 1 where the
        # sources themselves emit.
        senders = frontier if level == 1 else frontier[forwards[frontier]]
        if senders.size == 0:
            break
        lengths = offsets[senders + 1] - offsets[senders]
        gather = np.repeat(offsets[senders], lengths) + ragged_arange(lengths)
        targets = neighbors[gather]
        messages += targets.size
        if p_loss > 0.0:
            assert rng is not None  # validated above
            targets = targets[rng.random(targets.size) >= p_loss]
        # Duplicate suppression without sorting: candidates are the
        # unvisited targets; marking them in the scratch mask collapses
        # within-level duplicates, and flatnonzero yields them sorted.
        candidates = targets[~visited[targets]]
        level_mask[candidates] = True
        new = np.flatnonzero(level_mask)
        level_mask[new] = False
        visited[new] = True
        depth[new] = level
        frontier = new
    return depth, int(messages)


def flood(
    topology: Topology,
    source: int,
    ttl: int,
    *,
    p_loss: float = 0.0,
    rng: np.random.Generator | None = None,
) -> FloodResult:
    """Flood from one source with the given TTL.

    ``p_loss``/``rng`` model lossy transport exactly as in
    :func:`flood_depths`: each transmission is dropped independently
    with probability ``p_loss`` (still counted in ``messages``).
    """
    depth, messages = flood_depths(topology, source, ttl, p_loss=p_loss, rng=rng)
    return FloodResult(source=source, ttl=ttl, depth=depth, messages=messages)


def _reach_row(topology: Topology, source: int, ttls: np.ndarray, max_ttl: int) -> np.ndarray:
    """Per-TTL reach fractions of one source's flood."""
    depth, _ = flood_depths(topology, source, max_ttl)
    reached = depth[depth >= 0]
    level_counts = np.bincount(reached, minlength=max_ttl + 1)
    cum = np.cumsum(level_counts)
    # Exclude the source itself from "peers reached".
    return (cum[ttls] - 1) / topology.n_nodes


def _reach_row_task(source: int, rng: np.random.Generator, *, spec, ttls, max_ttl):
    """Worker task: attach the shared topology, compute one row."""
    # Deferred import: repro.runtime sits above the overlay layer.
    from repro.runtime.shm import attach_topology

    return _reach_row(attach_topology(spec), int(source), ttls, max_ttl)


def reach_fractions(
    topology: Topology,
    sources: np.ndarray,
    ttls: np.ndarray | list[int],
    *,
    n_workers: int = 1,
) -> np.ndarray:
    """Mean fraction of nodes reached per TTL, averaged over sources.

    One BFS per source computes every TTL at once (TTL ``t`` reach is
    the number of nodes at depth <= ``t``).  This regenerates the
    paper's §V reach table (0.05% @ TTL 1 ... 82.95% @ TTL 5).

    ``n_workers > 1`` fans the per-source floods out over a process
    pool (the topology travels via shared memory); the result is
    bitwise-identical to the serial run because each flood is a pure
    function of its source.
    """
    ttls = np.asarray(ttls, dtype=np.int64)
    if ttls.size == 0:
        raise ValueError("need at least one TTL")
    max_ttl = int(ttls.max())
    source_list = [int(s) for s in np.asarray(sources, dtype=np.int64)]
    if n_workers <= 1 or len(source_list) <= 1:
        rows = [_reach_row(topology, s, ttls, max_ttl) for s in source_list]
    else:
        from repro.runtime.parallel import pmap
        from repro.runtime.shm import SharedTopology

        with SharedTopology(topology) as share:
            task = partial(
                _reach_row_task, spec=share.spec, ttls=ttls, max_ttl=max_ttl
            )
            rows = pmap(task, source_list, seed=0, key="reach", n_workers=n_workers)
    return np.stack(rows).mean(axis=0)
