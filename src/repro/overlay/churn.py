"""Peer churn and its effect on crawl snapshots.

The paper's crawler follows Cruiser (ref [10]), whose whole reason to
exist is churn: Gnutella peers stay online for heavy-tailed sessions,
so a *slow* crawl does not observe a snapshot — it observes the union
of everyone who was online at some point during the crawl, inflating
peer (and object) counts.  This module provides the session-timeline
substrate and the biased-snapshot measurement, used by the crawl-bias
ablation to quantify how crawl duration distorts the §III statistics.

Sessions alternate online/offline periods with lognormal durations
(Stutzbach & Rejaie measured heavy-tailed Gnutella sessions); each
peer gets an independent random phase, so the process is stationary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive

__all__ = ["ChurnConfig", "ChurnTimeline", "crawl_snapshot"]


@dataclass(frozen=True)
class ChurnConfig:
    """Session/downtime process parameters."""

    n_peers: int = 1_000
    mean_session_s: float = 3_600.0
    mean_downtime_s: float = 7_200.0
    sigma: float = 1.0  # lognormal shape for both phases
    horizon_s: float = 2 * 86_400.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_peers <= 0:
            raise ValueError("n_peers must be positive")
        if self.mean_session_s <= 0 or self.mean_downtime_s <= 0:
            raise ValueError("durations must be positive")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")

    @property
    def expected_availability(self) -> float:
        """Stationary fraction of time a peer is online."""
        return self.mean_session_s / (self.mean_session_s + self.mean_downtime_s)


class ChurnTimeline:
    """Alternating up/down interval timelines for every peer.

    ``boundaries[p]`` holds the cumulative phase-change times of peer
    ``p`` (starting from an online period at a random negative phase),
    covering ``[0, horizon_s]``.
    """

    def __init__(self, config: ChurnConfig | None = None) -> None:
        self.config = config or ChurnConfig()
        cfg = self.config
        rng = derive(cfg.seed, "churn")
        cycle = cfg.mean_session_s + cfg.mean_downtime_s
        # Enough cycles to cover horizon + one full cycle of phase.
        n_cycles = int(np.ceil((cfg.horizon_s + 4 * cycle) / cycle)) + 4

        def lognormal(mean: float, size: tuple[int, int]) -> np.ndarray:
            mu = np.log(mean) - 0.5 * cfg.sigma**2
            return rng.lognormal(mu, cfg.sigma, size=size)

        ups = lognormal(cfg.mean_session_s, (cfg.n_peers, n_cycles))
        downs = lognormal(cfg.mean_downtime_s, (cfg.n_peers, n_cycles))
        interleaved = np.empty((cfg.n_peers, 2 * n_cycles))
        interleaved[:, 0::2] = ups
        interleaved[:, 1::2] = downs
        boundaries = np.cumsum(interleaved, axis=1)
        # Random stationary phase: shift left by a uniform fraction of
        # the total span so time 0 lands somewhere mid-process.
        phase = rng.random(cfg.n_peers) * boundaries[:, -1] * 0.5
        self._boundaries = boundaries - phase[:, None]

    @property
    def n_peers(self) -> int:
        """Number of peers in the timeline."""
        return self.config.n_peers

    def online_mask(self, t: float) -> np.ndarray:
        """Bool per peer: online at absolute time ``t``.

        A peer is online during even-indexed intervals (before
        ``boundaries[:, 0]`` is the first up period, etc.).
        """
        if not 0 <= t <= self.config.horizon_s:
            raise ValueError(f"t outside the simulated horizon: {t}")
        idx = (self._boundaries <= t).sum(axis=1)
        return idx % 2 == 0

    def online_count(self, t: float) -> int:
        """Number of peers online at ``t``."""
        return int(self.online_mask(t).sum())

    def availability(self, samples: int = 48) -> float:
        """Empirical mean fraction of peers online."""
        ts = np.linspace(0, self.config.horizon_s, samples)
        return float(np.mean([self.online_mask(t).mean() for t in ts]))

    def ever_online(self, t0: float, t1: float, samples: int = 64) -> np.ndarray:
        """Bool per peer: online at any sampled instant of ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        ts = np.linspace(t0, t1, samples)
        out = np.zeros(self.n_peers, dtype=bool)
        for t in ts:
            out |= self.online_mask(float(t))
        return out


def crawl_snapshot(
    timeline: ChurnTimeline,
    *,
    start_s: float,
    duration_s: float,
    revisit_interval_s: float = 600.0,
    seed: int = 0,
) -> np.ndarray:
    """Peers a crawl of the given duration observes as online.

    A crawler keeps harvesting addresses for as long as it runs: every
    ``revisit_interval_s`` it completes another discovery sweep, and a
    peer counts as observed if it was online during *any* sweep within
    the crawl window.  A zero-duration crawl therefore sees exactly
    the instantaneous online population, while a long crawl converges
    to "everyone who was ever online during the window" — the
    snapshot-inflation effect Cruiser (paper ref [10]) was built to
    avoid.  ``seed`` jitters the sweep instants.
    """
    cfg = timeline.config
    if duration_s < 0:
        raise ValueError("duration_s must be non-negative")
    if revisit_interval_s <= 0:
        raise ValueError("revisit_interval_s must be positive")
    if start_s + duration_s > cfg.horizon_s:
        raise ValueError("crawl window exceeds the simulated horizon")
    rng = derive(seed, "crawl-snapshot")
    n_sweeps = 1 + int(duration_s // revisit_interval_s)
    observed = np.zeros(cfg.n_peers, dtype=bool)
    for i in range(n_sweeps):
        jitter = float(rng.random()) * min(revisit_interval_s, max(duration_s, 1.0))
        t = start_s + min(i * revisit_interval_s + (jitter if i else 0.0), duration_s)
        observed |= timeline.online_mask(float(min(t, cfg.horizon_s)))
    return np.flatnonzero(observed)
