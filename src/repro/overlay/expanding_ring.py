"""Expanding-ring search (iterative TTL deepening).

The standard bandwidth-saving variant of flooding (Lv et al., the
paper's ref [4] lineage): try TTL 1, and re-flood with a larger TTL
only if too few results came back.  Popular objects resolve cheaply;
rare objects pay for every failed ring *plus* the big final flood —
which is exactly how the paper's Zipf/mismatch findings bite: when
almost every query is effectively rare, expanding ring degenerates to
flooding with extra rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlay.network import SearchOutcome, UnstructuredNetwork

__all__ = ["ExpandingRingResult", "expanding_ring_search"]


@dataclass(frozen=True)
class ExpandingRingResult:
    """Outcome of one expanding-ring search."""

    source: int
    terms: tuple[str, ...]
    rings: tuple[int, ...]  # the TTLs actually flooded
    final: SearchOutcome  # outcome of the last ring
    messages: int  # cumulative cost over all rings

    @property
    def succeeded(self) -> bool:
        """Did the final ring return enough results?"""
        return self.final.succeeded

    @property
    def n_results(self) -> int:
        """Results of the final ring."""
        return self.final.n_results


def expanding_ring_search(
    network: UnstructuredNetwork,
    source: int,
    terms: list[str],
    *,
    min_results: int = 1,
    ttl_schedule: tuple[int, ...] = (1, 2, 3, 5),
) -> ExpandingRingResult:
    """Flood with growing TTLs until ``min_results`` results arrive.

    Every ring is a fresh flood (the protocol has no way to resume),
    so costs accumulate across rings — the accounting that makes the
    rare-query pathology visible.
    """
    if min_results < 1:
        raise ValueError("min_results must be positive")
    if not ttl_schedule or any(t < 0 for t in ttl_schedule):
        raise ValueError("ttl_schedule must be non-empty and non-negative")
    if list(ttl_schedule) != sorted(ttl_schedule):
        raise ValueError("ttl_schedule must be non-decreasing")
    total = 0
    rings: list[int] = []
    outcome: SearchOutcome | None = None
    for ttl in ttl_schedule:
        outcome = network.query_flood(source, terms, ttl)
        rings.append(ttl)
        total += outcome.messages
        if outcome.n_results >= min_results:
            break
    assert outcome is not None
    return ExpandingRingResult(
        source=source,
        terms=tuple(terms),
        rings=tuple(rings),
        final=outcome,
        messages=total,
    )
