"""The asyncio HTTP server wrapping one :class:`QueryService`.

Routes::

    POST /search         batched overlay search (flood / expanding ring)
    POST /resolvability  topology-free oracle resolvability
    POST /flood-probe    reach + message cost of one flood
    GET  /healthz        liveness + resident-state summary
    GET  /metrics        the process metrics registry as JSON

Lifecycle: :meth:`OverlayQueryServer.run` installs SIGTERM/SIGINT
handlers on the loop, serves until one fires (or :meth:`request_stop`
is called), then drains — stop accepting, finish admitted jobs, and
only then return, so the CLI can close the resident state and unlink
its shared-memory segments.  A *kill* that bypasses the loop is the
job of :func:`repro.runtime.shm.cleanup_on_signal`, which the CLI
installs before any segment exists.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Awaitable, Callable

from repro.obs import get_logger, metrics
from repro.serve.http import (
    HttpError,
    HttpRequest,
    MAX_HEAD_BYTES,
    json_bytes,
    read_request,
    render_response,
)
from repro.serve.protocol import (
    ProtocolError,
    parse_flood_probe,
    parse_resolvability,
    parse_search,
)
from repro.serve.service import (
    Overloaded,
    QueryService,
    ServiceClosed,
    ServicePolicy,
)
from repro.serve.state import ServiceState

__all__ = ["OverlayQueryServer"]

_LOG = get_logger(__name__)


def _error_body(message: str) -> bytes:
    return json_bytes({"error": message})


class OverlayQueryServer:
    """One listening socket in front of one resident service state."""

    def __init__(
        self,
        state: ServiceState,
        *,
        policy: ServicePolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.state = state
        self.service = QueryService(state, policy)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` becomes the bound port."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._stop_event = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_HEAD_BYTES
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _LOG.info("serving on http://%s:%d", self.host, self.port)

    def request_stop(self) -> None:
        """Begin graceful shutdown (idempotent, signal-handler safe)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def shutdown(self, *, drain_timeout_s: float = 30.0) -> None:
        """Stop accepting, drain the service, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain_timeout_s=drain_timeout_s)

    async def run(
        self,
        *,
        handle_signals: bool = True,
        drain_timeout_s: float = 30.0,
        ready: Callable[["OverlayQueryServer"], None] | None = None,
    ) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), drain, return."""
        await self.start()
        assert self._stop_event is not None
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    break  # non-main thread or unsupported platform
        if ready is not None:
            ready(self)
        try:
            await self._stop_event.wait()
            _LOG.info("stop requested; draining")
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.shutdown(drain_timeout_s=drain_timeout_s)

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            _error_body(exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._dispatch(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        """Route one request to its handler; always returns a response."""
        metrics().inc("serve.http.requests")
        handler = self._route(request.method, request.path)
        if handler is None:
            known = {"/search", "/resolvability", "/flood-probe",
                     "/healthz", "/metrics"}
            status = 405 if request.path in known else 404
            return render_response(
                status, _error_body(f"no route {request.method} {request.path}")
            )
        try:
            return await handler(request)
        except ProtocolError as exc:
            return render_response(400, _error_body(str(exc)))
        except HttpError as exc:
            return render_response(exc.status, _error_body(exc.message))
        except Overloaded as exc:
            return render_response(
                429,
                _error_body("admission queue full"),
                extra_headers=(("Retry-After", f"{exc.retry_after_s:g}"),),
            )
        except ServiceClosed:
            return render_response(503, _error_body("service is draining"))

    def _route(
        self, method: str, path: str
    ) -> Callable[[HttpRequest], Awaitable[bytes]] | None:
        routes: dict[
            tuple[str, str], Callable[[HttpRequest], Awaitable[bytes]]
        ] = {
            ("POST", "/search"): self._handle_search,
            ("POST", "/resolvability"): self._handle_resolvability,
            ("POST", "/flood-probe"): self._handle_flood_probe,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
        }
        return routes.get((method, path))

    async def _submit(self, parsed: object) -> bytes:
        future = self.service.submit(parsed)  # type: ignore[arg-type]
        status, body = await future
        return render_response(status, json_bytes(body))

    async def _handle_search(self, request: HttpRequest) -> bytes:
        return await self._submit(
            parse_search(request.json(), n_nodes=self.state.n_nodes)
        )

    async def _handle_resolvability(self, request: HttpRequest) -> bytes:
        return await self._submit(parse_resolvability(request.json()))

    async def _handle_flood_probe(self, request: HttpRequest) -> bytes:
        return await self._submit(
            parse_flood_probe(request.json(), n_nodes=self.state.n_nodes)
        )

    async def _handle_healthz(self, request: HttpRequest) -> bytes:
        body = {
            "status": "draining" if self.service.closing else "ok",
            "n_nodes": self.state.n_nodes,
            "n_terms": self.state.n_terms,
            "queue_depth": self.service.queue_depth,
        }
        return render_response(200, json_bytes(body))

    async def _handle_metrics(self, request: HttpRequest) -> bytes:
        snapshot = metrics().snapshot().as_dict()
        return render_response(200, json_bytes(snapshot))
