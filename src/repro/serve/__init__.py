"""The overlay query service: load once, serve many.

Everything below the repo's experiment layer evaluates workloads as
one-shot batch jobs; this package turns the same engines into a
long-lived process.  A :class:`~repro.serve.state.ServiceState` loads
topology + content index through the artifact cache and publishes them
to shared memory once; a :class:`~repro.serve.service.QueryService`
micro-batches admitted requests through the resident
:class:`~repro.overlay.batch.BatchQueryEngine`; an
:class:`~repro.serve.server.OverlayQueryServer` speaks a minimal
stdlib HTTP/1.1 in front of it.  :mod:`repro.serve.load` is the
open-loop QPS driver that measures the result.

Responses are bitwise-equal to direct engine calls (the micro-batcher
leans on the engine's purity-per-row guarantee); admission control is
explicit (queue-full → 429 + ``Retry-After``, queued-past-deadline →
504); SIGTERM at any point leaves zero orphaned ``/dev/shm`` segments
(``cleanup_on_signal`` plus graceful drain).  See ``docs/serving.md``.
"""

from repro.serve.client import ServiceClient
from repro.serve.load import LoadConfig, LoadReport, run_load
from repro.serve.protocol import ProtocolError
from repro.serve.server import OverlayQueryServer
from repro.serve.service import Overloaded, QueryService, ServicePolicy
from repro.serve.state import ServiceConfig, ServiceState

__all__ = [
    "LoadConfig",
    "LoadReport",
    "Overloaded",
    "OverlayQueryServer",
    "ProtocolError",
    "QueryService",
    "ServiceClient",
    "ServiceConfig",
    "ServicePolicy",
    "ServiceState",
    "run_load",
]
