"""Resident state of the overlay query service.

:class:`ServiceState` is the load-once half of the serving story: it
builds (or loads from the mmap-blob artifact cache) the topology and
content index, publishes them to shared memory **once**, and holds the
owner handles — :class:`~repro.runtime.shm.SharedTopology`,
:class:`~repro.runtime.shards.ShardedPostings`, and (when sharded) a
:class:`~repro.runtime.shards.ShardedFloodRunner` — resident for the
process lifetime.  Every request then dispatches through one
persistent :class:`~repro.overlay.batch.BatchQueryEngine` whose flood
and match caches warm monotonically across requests.

Owner handles registered here are exactly what
:func:`repro.runtime.shm.cleanup_on_signal` unlinks if the process is
killed mid-request; :meth:`ServiceState.close` is the graceful twin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import get_logger, span
from repro.overlay.batch import BatchQueryEngine
from repro.overlay.content import SharedContentIndex, partition_postings
from repro.overlay.topology import Topology
from repro.runtime.shards import ShardedFloodRunner, ShardedPostings
from repro.runtime.shm import SharedTopology

__all__ = ["ServiceConfig", "ServiceState"]

_LOG = get_logger(__name__)


@dataclass(frozen=True)
class ServiceConfig:
    """What one service process loads and how it evaluates.

    The trace is generated with ``n_peers == n_nodes`` so every overlay
    node shares content — the engine requires the two populations to
    coincide.  ``n_shards > 1`` additionally partitions the posting
    lists and runs BFS through a sharded flood runner; outcomes are
    bitwise identical at every setting (the engine's equivalence
    guarantee), so these are capacity knobs, not semantics knobs.
    """

    n_nodes: int = 5_000
    seed: int = 0
    n_shards: int = 1
    #: Worker processes of the sharded BFS runner (only meaningful with
    #: ``n_shards > 1``; 1 keeps BFS in-process).
    bfs_workers: int = 1
    #: Engine fan-out width per micro-batch (1 = in-process serial,
    #: which is right for the small batches admission control forms).
    engine_workers: int = 1
    flood_cache_entries: int = 256

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.n_shards < 1 or self.bfs_workers < 1 or self.engine_workers < 1:
            raise ValueError("shard/worker counts must be positive")


class ServiceState:
    """Artifacts + engine held resident by one serving process.

    Construct from in-memory artifacts (tests hand in small fixtures)
    or via :meth:`from_config`, which goes through the cached builders.
    Use as a context manager or call :meth:`close`; closing unlinks the
    published shared-memory segments and stops the BFS pool.
    """

    def __init__(
        self,
        topology: Topology,
        content: SharedContentIndex,
        *,
        n_shards: int = 1,
        bfs_workers: int = 1,
        engine_workers: int = 1,
        flood_cache_entries: int = 256,
    ) -> None:
        self.topology = topology
        self.content = content
        self.engine_workers = engine_workers
        self._closed = False
        with span("serve.publish", shards=n_shards):
            # Published once, held for the process lifetime: the spec
            # goes to the engine so even fan-out batches attach these
            # segments instead of re-exporting per call.
            self.shared_topology = SharedTopology(topology)
            self.shared_postings = ShardedPostings(
                partition_postings(content, n_shards)
            )
            self.runner: ShardedFloodRunner | None = None
            if n_shards > 1:
                self.runner = ShardedFloodRunner(
                    topology, n_shards=n_shards, n_workers=bfs_workers
                )
        self.engine = BatchQueryEngine(
            topology,
            content,
            flood_cache_entries=flood_cache_entries,
            depth_provider=self.runner,
            postings=self.shared_postings.provider,
            topo_spec=self.shared_topology.spec,
        )
        _LOG.info(
            "service state resident: %d nodes, %d instances, %d shard(s)",
            topology.n_nodes,
            content.n_instances,
            n_shards,
        )

    @classmethod
    def from_config(cls, config: ServiceConfig) -> "ServiceState":
        """Build via the artifact cache (fast on a warm cache)."""
        from repro.core.experiment import (
            Fig8TopologyConfig,
            build_content_index,
            build_fig8_topology,
            build_trace_bundle,
        )
        from repro.tracegen.gnutella_trace import GnutellaTraceConfig

        with span("serve.load", nodes=config.n_nodes):
            topology = build_fig8_topology(
                Fig8TopologyConfig(n_nodes=config.n_nodes, seed=config.seed)
            )
            bundle = build_trace_bundle(
                trace_config=GnutellaTraceConfig(
                    n_peers=config.n_nodes, seed=config.seed
                )
            )
            content = build_content_index(bundle.trace)
        return cls(
            topology,
            content,
            n_shards=config.n_shards,
            bfs_workers=config.bfs_workers,
            engine_workers=config.engine_workers,
            flood_cache_entries=config.flood_cache_entries,
        )

    @property
    def n_nodes(self) -> int:
        """Node count of the serving topology (== trace peer count)."""
        return self.topology.n_nodes

    @property
    def n_terms(self) -> int:
        """Distinct terms in the resident content index."""
        return int(self.content.term_index.n_terms)

    def resolvability(
        self, queries: tuple[tuple[str, ...], ...]
    ) -> dict:
        """Oracle resolvability of each query against the whole index.

        Topology-free: reports how many instances (and distinct peers)
        could answer each query anywhere in the network — the paper's
        resolvability notion, served live.
        """
        keys = [self.content.query_key(list(q)) for q in queries]
        self.content.prefetch_keys(
            [k for k in keys if k is not None],
            provider=self.shared_postings.provider,
        )
        n_results: list[int] = []
        n_peers: list[int] = []
        for key in keys:
            if key is None:
                n_results.append(0)
                n_peers.append(0)
                continue
            hits = self.content.match_key(key)
            n_results.append(int(hits.size))
            n_peers.append(
                int(np.unique(self.content.instance_peer[hits]).size)
                if hits.size
                else 0
            )
        return {
            "n_queries": len(queries),
            "n_results": n_results,
            "n_peers": n_peers,
            "resolvable": [n > 0 for n in n_results],
        }

    def flood_probe(self, source: int, ttl: int) -> dict:
        """Reach and message cost of one flood, from the depth cache."""
        entry = self.engine.flood_cache.entry(int(source), int(ttl))
        reached = int(entry.reached(int(ttl)))
        return {
            "source": int(source),
            "ttl": int(ttl),
            "messages": int(entry.messages(int(ttl))),
            "peers_reached": reached,
            "reach_fraction": reached / self.n_nodes,
        }

    def close(self) -> None:
        """Unlink published segments and stop the BFS pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.runner is not None:
            self.runner.close()
        self.shared_postings.close()
        self.shared_topology.close()

    def __enter__(self) -> "ServiceState":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
