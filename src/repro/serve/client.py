"""Asyncio client for the overlay query service.

:class:`ServiceClient` keeps a small pool of keep-alive connections so
the load driver's concurrent in-flight requests don't pay a TCP
handshake each (nor exhaust ephemeral ports at high QPS).  Connections
are created on demand, parked when idle, and dropped on any framing or
transport error — the next request simply dials again.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.serve.http import (
    HttpResponse,
    json_bytes,
    read_response,
    render_request,
)

__all__ = ["ServiceClient"]

_Conn = tuple[asyncio.StreamReader, asyncio.StreamWriter]


class ServiceClient:
    """Pooled keep-alive HTTP client for one service endpoint."""

    def __init__(self, host: str, port: int, *, max_idle: int = 32) -> None:
        self.host = host
        self.port = port
        self.max_idle = max_idle
        self._idle: list[_Conn] = []
        self._closed = False

    async def request(
        self, method: str, path: str, payload: Any | None = None
    ) -> HttpResponse:
        """One request/response exchange; raises ``OSError``-family on
        transport failure and :class:`~repro.serve.http.HttpError` on
        bad framing."""
        if self._closed:
            raise RuntimeError("client is closed")
        body = b"" if payload is None else json_bytes(payload)
        conn = await self._acquire()
        reader, writer = conn
        try:
            writer.write(
                render_request(method, path, body, host=self.host)
            )
            await writer.drain()
            response = await read_response(reader)
        except (OSError, EOFError, HttpError, asyncio.CancelledError):
            # Any transport/framing failure (or a cancelled deadline)
            # leaves the connection in an unknown framing state: drop
            # it rather than park it.
            self._discard(conn)
            raise
        if response.headers.get("connection", "").lower() == "close":
            self._discard(conn)
        else:
            self._release(conn)
        return response

    async def get(self, path: str) -> HttpResponse:
        """Convenience ``GET``."""
        return await self.request("GET", path)

    async def post(self, path: str, payload: Any) -> HttpResponse:
        """Convenience ``POST`` with a JSON body."""
        return await self.request("POST", path, payload)

    async def _acquire(self) -> _Conn:
        if self._idle:
            return self._idle.pop()
        return await asyncio.open_connection(self.host, self.port)

    def _release(self, conn: _Conn) -> None:
        if self._closed or len(self._idle) >= self.max_idle:
            self._discard(conn)
        else:
            self._idle.append(conn)

    @staticmethod
    def _discard(conn: _Conn) -> None:
        conn[1].close()

    async def close(self) -> None:
        """Close every parked connection."""
        self._closed = True
        idle, self._idle = self._idle, []
        for reader, writer in idle:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
