"""Micro-batching dispatcher with admission control.

Requests land on one bounded :class:`asyncio.Queue`.  A single
dispatcher task drains whatever is queued (up to ``max_batch`` jobs),
drops jobs whose deadline already passed (they resolve as 504 without
touching the engine), groups the survivors by evaluation parameters,
and runs each group through the resident
:class:`~repro.overlay.batch.BatchQueryEngine` in one
``evaluate_keys`` call on a single worker thread.

The parity guarantee rides on the engine's own: each query's outcome
is a pure function of ``(source, query key)``, so concatenating the
jobs of a group, evaluating once, and slicing the columns back per job
is bitwise identical to evaluating each request alone — the golden
tests compare the two directly.

Admission control is two-tiered and explicit:

* **queue full** → the request is *shed* before costing anything;
  the HTTP layer turns :class:`Overloaded` into a 429 with a
  ``Retry-After`` hint.
* **deadline passed** → a job that waited too long in the queue
  resolves as a 504 timeout at dispatch, so a burst cannot make the
  engine grind through work nobody is waiting for anymore.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_logger, metrics
from repro.overlay.batch import BatchOutcome
from repro.serve.protocol import (
    FloodProbeRequest,
    ResolvabilityRequest,
    SearchRequest,
    encode_outcome,
)
from repro.serve.state import ServiceState

__all__ = ["Overloaded", "QueryService", "ServiceClosed", "ServicePolicy"]

_LOG = get_logger(__name__)

#: A resolved job: HTTP status plus the JSON-ready payload.
Reply = tuple[int, dict]


class Overloaded(Exception):
    """The admission queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"admission queue full; retry in {retry_after_s}s")
        self.retry_after_s = retry_after_s


class ServiceClosed(Exception):
    """The service is draining; new work is refused (HTTP 503)."""


@dataclass(frozen=True)
class ServicePolicy:
    """Admission-control and batching knobs of one service."""

    #: Bound of the admission queue; the 429 threshold.
    max_queue: int = 256
    #: Jobs drained into one dispatch round (grouped, then evaluated).
    max_batch: int = 64
    #: Deadline applied when a request carries no ``timeout_s``.
    default_timeout_s: float = 10.0
    #: ``Retry-After`` hint handed to shed requests.
    retry_after_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue < 1 or self.max_batch < 1:
            raise ValueError("max_queue and max_batch must be positive")
        if self.default_timeout_s <= 0 or self.retry_after_s <= 0:
            raise ValueError("timeouts must be positive")


@dataclass
class _Job:
    """One admitted request, waiting on the queue for dispatch."""

    request: SearchRequest | ResolvabilityRequest | FloodProbeRequest
    deadline: float
    enqueued_at: float
    future: "asyncio.Future[Reply]" = field(repr=False, kw_only=True)


class QueryService:
    """The bounded queue + dispatcher in front of one engine.

    All engine work runs on one worker thread (the engine's caches are
    not thread-synchronized; a single thread also keeps the event loop
    free to accept and shed).  Start with :meth:`start`, submit with
    :meth:`submit`, stop with :meth:`stop` — stopping drains admitted
    work before the dispatcher exits.
    """

    def __init__(
        self, state: ServiceState, policy: ServicePolicy | None = None
    ) -> None:
        self.state = state
        self.policy = policy or ServicePolicy()
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=self.policy.max_queue
        )
        self._executor: ThreadPoolExecutor | None = None
        self._dispatcher: "asyncio.Task[None] | None" = None
        self._closing = False

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for dispatch."""
        return self._queue.qsize()

    @property
    def closing(self) -> bool:
        """Whether :meth:`stop` has begun."""
        return self._closing

    async def start(self) -> None:
        """Spawn the dispatcher task and the engine worker thread."""
        if self._dispatcher is not None:
            raise RuntimeError("service already started")
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def submit(
        self,
        request: SearchRequest | ResolvabilityRequest | FloodProbeRequest,
    ) -> "asyncio.Future[Reply]":
        """Admit one request; the future resolves to ``(status, body)``.

        Raises :class:`ServiceClosed` while draining and
        :class:`Overloaded` when the queue is at capacity.
        """
        if self._closing or self._dispatcher is None:
            raise ServiceClosed("service is not accepting requests")
        loop = asyncio.get_running_loop()
        now = loop.time()
        timeout = request.timeout_s or self.policy.default_timeout_s
        job = _Job(
            request=request,
            deadline=now + timeout,
            enqueued_at=now,
            future=loop.create_future(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            metrics().inc("serve.shed")
            raise Overloaded(self.policy.retry_after_s) from None
        metrics().inc("serve.admitted")
        return job.future

    async def stop(self, *, drain_timeout_s: float = 30.0) -> None:
        """Refuse new work, drain admitted jobs, stop the dispatcher.

        Jobs still queued after ``drain_timeout_s`` resolve as 503.
        """
        if self._dispatcher is None:
            return
        self._closing = True
        try:
            await asyncio.wait_for(self._queue.join(), drain_timeout_s)
        except asyncio.TimeoutError:
            _LOG.warning(
                "drain timed out with %d job(s) queued", self._queue.qsize()
            )
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        while not self._queue.empty():
            job = self._queue.get_nowait()
            self._resolve(job, (503, {"error": "service shut down"}))
            self._queue.task_done()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- dispatch ------------------------------------------------------

    def _resolve(self, job: _Job, reply: Reply) -> None:
        """Complete one job and record its latency + status class."""
        if job.future.cancelled():
            return
        status = reply[0]
        registry = metrics()
        registry.inc(f"serve.replies.{status}")
        kind = type(job.request).__name__
        registry.observe_hist(
            f"serve.latency.{kind}",
            asyncio.get_running_loop().time() - job.enqueued_at,
        )
        job.future.set_result(reply)

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            batch = [job]
            while len(batch) < self.policy.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            metrics().observe_hist("serve.batch.jobs", float(len(batch)))
            now = loop.time()
            live: list[_Job] = []
            for j in batch:
                if now > j.deadline:
                    metrics().inc("serve.timeouts")
                    self._resolve(
                        j, (504, {"error": "deadline exceeded in queue"})
                    )
                else:
                    live.append(j)
            if live:
                assert self._executor is not None
                try:
                    replies = await loop.run_in_executor(
                        self._executor, self._execute, live
                    )
                except Exception:  # simlint: ignore[SIM004] any engine fault becomes a 500; the loop must not wedge
                    _LOG.exception("dispatch batch failed")
                    for j in live:
                        self._resolve(
                            j, (500, {"error": "internal evaluation error"})
                        )
                else:
                    for j, reply in zip(live, replies):
                        self._resolve(j, reply)
            for _ in batch:
                self._queue.task_done()

    # -- engine-thread execution ---------------------------------------

    def _execute(self, jobs: list[_Job]) -> list[Reply]:
        """Evaluate one dispatch round (runs on the engine thread)."""
        replies: dict[int, Reply] = {}
        searches: list[tuple[int, SearchRequest]] = []
        for i, job in enumerate(jobs):
            request = job.request
            if isinstance(request, SearchRequest):
                searches.append((i, request))
            elif isinstance(request, ResolvabilityRequest):
                replies[i] = (200, self.state.resolvability(request.queries))
            else:
                replies[i] = (
                    200,
                    self.state.flood_probe(request.source, request.ttl),
                )
        for group in self._group_searches(searches).values():
            self._execute_search_group(group, replies)
        return [replies[i] for i in range(len(jobs))]

    @staticmethod
    def _group_searches(
        searches: list[tuple[int, SearchRequest]],
    ) -> dict[tuple[tuple[int, ...], int], list[tuple[int, SearchRequest]]]:
        """Group by evaluation parameters, preserving arrival order."""
        groups: dict[
            tuple[tuple[int, ...], int], list[tuple[int, SearchRequest]]
        ] = {}
        for i, request in searches:
            key = (request.ttl_schedule, request.min_results)
            groups.setdefault(key, []).append((i, request))
        return groups

    def _execute_search_group(
        self,
        group: list[tuple[int, SearchRequest]],
        replies: dict[int, Reply],
    ) -> None:
        """One engine call for all same-parameter search jobs.

        Rows are concatenated in job order and sliced back out, which
        the engine guarantees is bitwise identical to per-request
        evaluation.
        """
        first = group[0][1]
        sources = np.asarray(
            [s for _, request in group for s in request.sources],
            dtype=np.int64,
        )
        keys = [
            self.state.content.query_key(list(q))
            for _, request in group
            for q in request.queries
        ]
        outcome = self.state.engine.evaluate_keys(
            sources,
            keys,
            ttl_schedule=first.ttl_schedule,
            min_results=first.min_results,
            n_workers=self.state.engine_workers,
        )
        offset = 0
        for i, request in group:
            n = request.n_queries
            part = BatchOutcome(
                success=outcome.success[offset : offset + n],
                n_results=outcome.n_results[offset : offset + n],
                messages=outcome.messages[offset : offset + n],
                peers_probed=outcome.peers_probed[offset : offset + n],
            )
            replies[i] = (200, encode_outcome(part))
            offset += n
