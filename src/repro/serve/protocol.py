"""Wire protocol of the overlay query service: parse + encode, no I/O.

Every request body is parsed by a pure function into a frozen request
dataclass (validated against explicit bounds, including the serving
topology's node count), and every engine result is encoded by a pure
function into a JSON-ready dict.  Keeping this layer free of sockets
and queues is what makes the service's parity guarantee testable: the
golden tests compare ``encode_outcome(direct_engine_call)`` against
the bytes the HTTP path returned.

JSON notes: ``success_rate`` is ``null`` for an empty batch (the
engine reports ``nan``, which strict JSON cannot carry), and all array
columns are plain lists so a client needs no custom decoding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.overlay.batch import BatchOutcome

__all__ = [
    "FloodProbeRequest",
    "MAX_QUERIES_PER_REQUEST",
    "MAX_TTL",
    "ProtocolError",
    "ResolvabilityRequest",
    "SearchRequest",
    "encode_outcome",
    "parse_flood_probe",
    "parse_resolvability",
    "parse_search",
]

#: Hard per-request batch bound: one request may not monopolize the
#: micro-batcher (admission control works per request, so a single
#: huge request would bypass it).
MAX_QUERIES_PER_REQUEST = 512

#: TTL sanity bound — the paper's schedules top out at 8; anything
#: beyond this is a malformed request, not a deeper search (BFS reach
#: saturates at the graph diameter anyway).
MAX_TTL = 32


class ProtocolError(ValueError):
    """A request that fails validation; maps to HTTP 400."""


def _require_mapping(doc: Any) -> dict:
    if not isinstance(doc, dict):
        raise ProtocolError("request body must be a JSON object")
    return doc


def _require_int(doc: dict, key: str, default: int | None = None) -> int:
    value = doc.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{key}' must be an integer")
    return value


def _optional_timeout(doc: dict) -> float | None:
    value = doc.get("timeout_s")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("'timeout_s' must be a number")
    timeout = float(value)
    if not math.isfinite(timeout) or timeout <= 0:
        raise ProtocolError("'timeout_s' must be positive and finite")
    return timeout


def _parse_queries(
    doc: dict, *, max_queries: int
) -> tuple[tuple[str, ...], ...]:
    raw = doc.get("queries")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'queries' must be a non-empty list")
    if len(raw) > max_queries:
        raise ProtocolError(
            f"at most {max_queries} queries per request, got {len(raw)}"
        )
    queries: list[tuple[str, ...]] = []
    for i, query in enumerate(raw):
        if not isinstance(query, list) or not query:
            raise ProtocolError(
                f"queries[{i}] must be a non-empty list of terms"
            )
        if not all(isinstance(term, str) and term for term in query):
            raise ProtocolError(
                f"queries[{i}] terms must be non-empty strings"
            )
        queries.append(tuple(query))
    return tuple(queries)


def _parse_schedule(doc: dict) -> tuple[int, ...]:
    """``ttl`` (single flood) or ``ttl_schedule`` (expanding ring)."""
    if "ttl" in doc and "ttl_schedule" in doc:
        raise ProtocolError("give either 'ttl' or 'ttl_schedule', not both")
    if "ttl_schedule" in doc:
        raw = doc["ttl_schedule"]
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'ttl_schedule' must be a non-empty list")
        schedule = []
        for t in raw:
            if isinstance(t, bool) or not isinstance(t, int):
                raise ProtocolError("'ttl_schedule' entries must be integers")
            schedule.append(t)
    else:
        schedule = [_require_int(doc, "ttl", default=3)]
    if any(t < 0 or t > MAX_TTL for t in schedule):
        raise ProtocolError(f"TTLs must be in [0, {MAX_TTL}]")
    if schedule != sorted(schedule):
        raise ProtocolError("'ttl_schedule' must be non-decreasing")
    return tuple(schedule)


@dataclass(frozen=True)
class SearchRequest:
    """One validated ``POST /search`` body.

    ``sources[i]`` floods ``queries[i]``; the whole request shares one
    TTL schedule, which is also the micro-batcher's grouping key.
    """

    sources: tuple[int, ...]
    queries: tuple[tuple[str, ...], ...]
    ttl_schedule: tuple[int, ...]
    min_results: int
    timeout_s: float | None

    @property
    def n_queries(self) -> int:
        """Number of (source, query) rows in the request."""
        return len(self.queries)


@dataclass(frozen=True)
class ResolvabilityRequest:
    """One validated ``POST /resolvability`` body (topology-free oracle)."""

    queries: tuple[tuple[str, ...], ...]
    timeout_s: float | None

    @property
    def n_queries(self) -> int:
        """Number of queries in the request."""
        return len(self.queries)


@dataclass(frozen=True)
class FloodProbeRequest:
    """One validated ``POST /flood-probe`` body (reach of one source)."""

    source: int
    ttl: int
    timeout_s: float | None


def parse_search(
    doc: Any,
    *,
    n_nodes: int,
    max_queries: int = MAX_QUERIES_PER_REQUEST,
) -> SearchRequest:
    """Validate a ``/search`` body against the serving topology."""
    body = _require_mapping(doc)
    queries = _parse_queries(body, max_queries=max_queries)
    raw_sources = body.get("sources")
    if not isinstance(raw_sources, list):
        raise ProtocolError("'sources' must be a list of peer ids")
    if len(raw_sources) != len(queries):
        raise ProtocolError(
            f"{len(raw_sources)} sources for {len(queries)} queries"
        )
    sources: list[int] = []
    for i, s in enumerate(raw_sources):
        if isinstance(s, bool) or not isinstance(s, int):
            raise ProtocolError(f"sources[{i}] must be an integer")
        if not 0 <= s < n_nodes:
            raise ProtocolError(
                f"sources[{i}]={s} outside [0, {n_nodes})"
            )
        sources.append(s)
    min_results = _require_int(body, "min_results", default=1)
    if min_results < 1:
        raise ProtocolError("'min_results' must be positive")
    return SearchRequest(
        sources=tuple(sources),
        queries=queries,
        ttl_schedule=_parse_schedule(body),
        min_results=min_results,
        timeout_s=_optional_timeout(body),
    )


def parse_resolvability(
    doc: Any, *, max_queries: int = MAX_QUERIES_PER_REQUEST
) -> ResolvabilityRequest:
    """Validate a ``/resolvability`` body."""
    body = _require_mapping(doc)
    return ResolvabilityRequest(
        queries=_parse_queries(body, max_queries=max_queries),
        timeout_s=_optional_timeout(body),
    )


def parse_flood_probe(doc: Any, *, n_nodes: int) -> FloodProbeRequest:
    """Validate a ``/flood-probe`` body against the serving topology."""
    body = _require_mapping(doc)
    source = _require_int(body, "source")
    if not 0 <= source < n_nodes:
        raise ProtocolError(f"'source'={source} outside [0, {n_nodes})")
    ttl = _require_int(body, "ttl", default=3)
    if not 0 <= ttl <= MAX_TTL:
        raise ProtocolError(f"'ttl' must be in [0, {MAX_TTL}]")
    return FloodProbeRequest(
        source=source, ttl=ttl, timeout_s=_optional_timeout(body)
    )


def encode_outcome(outcome: BatchOutcome) -> dict:
    """JSON-ready form of a :class:`BatchOutcome`, column-exact.

    The list columns round-trip the engine's arrays value-for-value
    (``tolist`` on bool/int64 yields plain ``bool``/``int``), which is
    what the golden parity suite compares.  ``success_rate`` is
    ``None`` for an empty batch — the engine's ``nan`` has no strict
    JSON encoding.
    """
    rate = outcome.success_rate
    return {
        "n_queries": outcome.n_queries,
        "success": outcome.success.tolist(),
        "n_results": outcome.n_results.tolist(),
        "messages": outcome.messages.tolist(),
        "peers_probed": outcome.peers_probed.tolist(),
        "success_rate": None if math.isnan(rate) else rate,
        "total_messages": outcome.total_messages,
    }
