"""Open-loop load driver: target-QPS traffic with an SLO report.

*Open loop* means arrival times are decided before the first request
is sent — a precomputed offset schedule, not "send the next request
when the last returns" — so a slow server faces the full offered rate
and the latency distribution shows queueing, which is the honest way
to measure an admission-controlled service (a closed-loop driver
self-throttles and hides overload).

The schedule, the Zipf query choices, and the source choices are all
deterministic functions of the config seed (via the project RNG
discipline), so two runs against the same server offer byte-identical
request streams.  Only the *timing* of completions differs — that is
the measurement.

Arrival profiles:

* ``uniform`` — evenly spaced at the target rate;
* ``poisson`` — exponential gaps (memoryless arrivals, the classic
  telephony model);
* ``burst`` — alternating hot/cold half-periods whose rates average
  the target, stressing the queue-full (429) shed path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.obs import HistogramSnapshot, MetricsRegistry
from repro.serve.client import ServiceClient
from repro.serve.http import HttpError
from repro.tracegen.query_trace import QueryWorkload
from repro.utils.rng import derive

__all__ = [
    "LoadConfig",
    "LoadReport",
    "arrival_offsets",
    "build_query_pool",
    "run_load",
    "sample_query_indices",
    "sample_sources",
]


@dataclass(frozen=True)
class LoadConfig:
    """One load run: rate, shape, and per-request parameters."""

    qps: float = 50.0
    duration_s: float = 5.0
    profile: str = "uniform"  # uniform | poisson | burst
    #: Hot/cold rate ratio of the burst profile (mean stays ``qps``).
    burst_factor: float = 4.0
    burst_period_s: float = 1.0
    #: Zipf exponent of query popularity over the pool.
    zipf_exponent: float = 0.9
    #: Distinct queries drawn from the calibrated workload.
    pool_size: int = 64
    #: Queries per request (rows of one ``/search`` body).
    batch_size: int = 1
    ttl: int = 3
    min_results: int = 1
    #: Client-side deadline, also sent as the request's ``timeout_s``.
    timeout_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.qps <= 0 or self.duration_s <= 0:
            raise ValueError("qps and duration_s must be positive")
        if self.profile not in ("uniform", "poisson", "burst"):
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.burst_factor < 1 or self.burst_period_s <= 0:
            raise ValueError("burst_factor >= 1 and burst_period_s > 0 required")
        if self.pool_size < 1 or self.batch_size < 1:
            raise ValueError("pool_size and batch_size must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @property
    def n_requests(self) -> int:
        """Requests in one run of the schedule."""
        return max(1, round(self.qps * self.duration_s))


def arrival_offsets(config: LoadConfig) -> np.ndarray:
    """Seconds-from-start send time per request (sorted, float64)."""
    n = config.n_requests
    if config.profile == "uniform":
        return np.arange(n, dtype=np.float64) / config.qps
    if config.profile == "poisson":
        rng = derive(config.seed, "load", "arrivals")
        gaps = rng.exponential(1.0 / config.qps, size=n)
        offsets: np.ndarray = np.cumsum(gaps)
        return offsets
    # burst: alternating hot/cold half-periods, mean-preserving —
    # rate_hot + rate_cold == 2 * qps with rate_hot/rate_cold == factor.
    half = config.burst_period_s / 2.0
    rate_hot = 2.0 * config.qps * config.burst_factor / (config.burst_factor + 1)
    rate_cold = 2.0 * config.qps / (config.burst_factor + 1)
    chunks: list[np.ndarray] = []
    start, sent = 0.0, 0
    while sent < n:
        for rate in (rate_hot, rate_cold):
            count = min(max(1, round(rate * half)), n - sent)
            if count > 0:
                chunks.append(
                    start + np.arange(count, dtype=np.float64) / rate
                )
                sent += count
            start += half
            if sent >= n:
                break
    return np.concatenate(chunks)


def build_query_pool(
    workload: QueryWorkload, pool_size: int
) -> list[list[str]]:
    """The first ``pool_size`` distinct workload queries, as term lists."""
    pool: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    for i in range(workload.n_queries):
        words = workload.query_words(i)
        key = tuple(words)
        if words and key not in seen:
            seen.add(key)
            pool.append(words)
            if len(pool) >= pool_size:
                break
    if not pool:
        raise ValueError("workload yielded no non-empty queries")
    return pool


def sample_query_indices(config: LoadConfig, n: int, pool: int) -> np.ndarray:
    """Zipf-popularity choice of pool index per query."""
    ranks = np.arange(1, pool + 1, dtype=np.float64)
    weights = ranks ** -config.zipf_exponent
    weights /= weights.sum()
    rng = derive(config.seed, "load", "queries")
    return rng.choice(pool, size=n, p=weights)


def sample_sources(config: LoadConfig, n: int, n_nodes: int) -> np.ndarray:
    """Uniform source peer per query."""
    rng = derive(config.seed, "load", "sources")
    return rng.integers(0, n_nodes, size=n, dtype=np.int64)


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured, SLO quantiles included."""

    sent: int
    ok: int
    shed: int
    timeouts: int
    errors: int
    offered_qps: float
    achieved_qps: float
    duration_s: float
    latency: HistogramSnapshot
    status_counts: dict[int, int]

    def as_dict(self) -> dict:
        """JSON-ready report (what ``repro load --out`` writes)."""
        return {
            "sent": self.sent,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "latency": self.latency.as_dict(),
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
        }

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable rows for the CLI table."""
        lat = self.latency
        rows = [
            ("requests sent", f"{self.sent:,}"),
            ("ok", f"{self.ok:,}"),
            ("shed (429)", f"{self.shed:,}"),
            ("timeouts", f"{self.timeouts:,}"),
            ("errors", f"{self.errors:,}"),
            ("offered rate", f"{self.offered_qps:,.1f} req/s"),
            ("achieved rate", f"{self.achieved_qps:,.1f} req/s"),
        ]
        if lat.count:
            rows.extend(
                [
                    ("latency p50", f"{lat.quantile(0.5) * 1e3:.2f} ms"),
                    ("latency p90", f"{lat.quantile(0.9) * 1e3:.2f} ms"),
                    ("latency p99", f"{lat.quantile(0.99) * 1e3:.2f} ms"),
                    ("latency max", f"{lat.max_v * 1e3:.2f} ms"),
                ]
            )
        return rows


async def run_load(
    host: str,
    port: int,
    config: LoadConfig,
    *,
    queries: list[list[str]],
    n_nodes: int,
) -> LoadReport:
    """Drive one open-loop run against a live service."""
    offsets = arrival_offsets(config)
    n = offsets.size
    rows = n * config.batch_size
    picks = sample_query_indices(config, rows, len(queries))
    sources = sample_sources(config, rows, n_nodes)
    registry = MetricsRegistry()  # local: never pollutes the process registry
    counts = {"ok": 0, "shed": 0, "timeout": 0, "error": 0}
    status_counts: dict[int, int] = {}
    loop = asyncio.get_running_loop()

    async def fire(i: int, when: float, client: ServiceClient) -> None:
        delay = when - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        lo = i * config.batch_size
        body = {
            "sources": [int(s) for s in sources[lo : lo + config.batch_size]],
            "queries": [
                queries[int(p)] for p in picks[lo : lo + config.batch_size]
            ],
            "ttl": config.ttl,
            "min_results": config.min_results,
            "timeout_s": config.timeout_s,
        }
        t0 = loop.time()
        try:
            response = await asyncio.wait_for(
                client.post("/search", body), config.timeout_s * 2
            )
        except asyncio.TimeoutError:
            counts["timeout"] += 1
            return
        except (OSError, HttpError):
            counts["error"] += 1
            return
        status_counts[response.status] = (
            status_counts.get(response.status, 0) + 1
        )
        if response.status == 200:
            counts["ok"] += 1
            registry.observe_hist("load.latency", loop.time() - t0)
        elif response.status == 429:
            counts["shed"] += 1
        elif response.status == 504:
            counts["timeout"] += 1
        else:
            counts["error"] += 1

    async with ServiceClient(host, port) as client:
        start = loop.time() + 0.02
        t0 = loop.time()
        await asyncio.gather(
            *(fire(i, start + float(off), client) for i, off in enumerate(offsets))
        )
        elapsed = max(loop.time() - t0, 1e-9)

    return LoadReport(
        sent=n,
        ok=counts["ok"],
        shed=counts["shed"],
        timeouts=counts["timeout"],
        errors=counts["error"],
        offered_qps=config.qps,
        achieved_qps=counts["ok"] / elapsed,
        duration_s=elapsed,
        latency=registry.histogram("load.latency"),
        status_counts=status_counts,
    )
