"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The service needs exactly four verbs of HTTP: read a request with a
``Content-Length`` body, write a response with one, keep the
connection alive between the two, and say a status code.  This module
implements that subset directly over ``asyncio`` streams rather than
pulling in a web framework — the repo's no-new-dependency constraint
is a feature here, since the whole wire format stays auditable in one
page.

Not implemented (requests using them get a 4xx): chunked transfer
encoding, multipart bodies, HTTP/1.0 keep-alive negotiation, TLS.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "json_bytes",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
]

#: Request-line + headers must fit here (also the stream's readuntil
#: limit); bodies are bounded separately.
MAX_HEAD_BYTES = 16 * 1024

#: Default request-body bound; ~512 queries of a few terms is ~50 KB,
#: so 1 MiB leaves an order of magnitude of headroom.
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """Malformed or oversized HTTP framing; carries the reply status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: verb, path, lowercased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        """Decode the body as JSON (:class:`HttpError` 400 on failure)."""
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc


@dataclass(frozen=True)
class HttpResponse:
    """One parsed response (client side)."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        """Decode the body as JSON (raises ``ValueError`` on failure)."""
        return json.loads(self.body)


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read and split one head block; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request head too large") from exc
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, "request head too large")
    return head.decode("latin-1").split("\r\n")


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str], *, max_body: int
) -> bytes:
    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length: {raw_length!r}") from exc
    if length < 0:
        raise HttpError(400, f"bad Content-Length: {raw_length!r}")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds {max_body}")
    if not length:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise HttpError(400, "connection closed mid-body") from exc


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> HttpRequest | None:
    """Read one request off a connection; ``None`` on clean EOF."""
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers, max_body=max_body)
    # Strip any query string: the service routes on the path alone.
    path = target.partition("?")[0]
    return HttpRequest(
        method=method.upper(), path=path, headers=headers, body=body
    )


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Read one response off a connection (client side)."""
    lines = await _read_head(reader)
    if lines is None:
        raise HttpError(400, "connection closed before response")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(400, f"malformed status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise HttpError(400, f"malformed status line: {lines[0]!r}") from exc
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers, max_body=MAX_BODY_BYTES)
    return HttpResponse(status=status, headers=headers, body=body)


def json_bytes(obj: Any) -> bytes:
    """Compact UTF-8 JSON encoding (strict: ``nan`` must not appear)."""
    return json.dumps(obj, separators=(",", ":"), allow_nan=False).encode()


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialize one response, always with an explicit Content-Length."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    *,
    host: str = "localhost",
) -> bytes:
    """Serialize one request (client side)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    head = "\r\n".join(lines).encode("latin-1")
    return head + b"\r\n\r\n" + body
