"""Deterministic process-pool fan-out (``pmap``).

The contract: ``pmap(fn, items, seed=s, key=k)`` calls
``fn(item, derive(s, k, index))`` for every item and returns the
results in item order.  Because each task's generator is *derived*
from ``(seed, key, index)`` — never from a shared stream — the output
is bitwise-identical whether the tasks run serially in-process or
fanned out over any number of worker processes.

Workers receive ``fn`` by pickling, so it must be a module-level
function (or a :func:`functools.partial` of one).  Large shared inputs
— chiefly the CSR :class:`~repro.overlay.topology.Topology` arrays —
should travel through :mod:`repro.runtime.shm` rather than being
captured in the partial, which would re-pickle them for every task.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

import numpy as np

from repro.utils.rng import derive

__all__ = ["pmap", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Per-task callables receive the item and a task-private generator.
TaskFn = Callable[[T, np.random.Generator], R]


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count config field.

    ``1`` (the default everywhere) means serial in-process execution;
    ``0`` means "one per available CPU"; anything negative is an error.
    """
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return os.cpu_count() or 1
    return n_workers


def _run_task(fn: TaskFn, item: T, seed: int, key: str | int, index: int) -> R:
    """Worker-side shim: derive the task RNG, then run the task."""
    return fn(item, derive(seed, key, index))


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start, inherits shm attachments)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def pmap(
    fn: TaskFn,
    items: Iterable[T],
    *,
    seed: int,
    key: str | int,
    n_workers: int = 1,
) -> list[R]:
    """Deterministic (possibly parallel) map over ``items``.

    Each task ``i`` runs ``fn(items[i], derive(seed, key, i))``;
    results come back in item order.  ``n_workers <= 1`` runs in
    process with no pool at all, ``n_workers == 0`` auto-sizes to the
    CPU count, and any worker count yields bitwise-identical results
    because the per-task generators depend only on ``(seed, key, i)``.

    ``key`` namespaces the task streams: two ``pmap`` calls inside one
    experiment must use distinct keys or their tasks will share RNG
    streams index-for-index.
    """
    items_list = list(items)
    workers = resolve_workers(n_workers)
    if workers <= 1 or len(items_list) <= 1:
        return [
            _run_task(fn, item, seed, key, i) for i, item in enumerate(items_list)
        ]
    workers = min(workers, len(items_list))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        futures: list[Future[R]] = [
            pool.submit(_run_task, fn, item, seed, key, i)
            for i, item in enumerate(items_list)
        ]
        return [f.result() for f in futures]
