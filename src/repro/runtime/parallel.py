"""Deterministic process-pool fan-out (``pmap``).

The contract: ``pmap(fn, items, seed=s, key=k)`` calls
``fn(item, derive(s, k, index))`` for every item and returns the
results in item order.  Because each task's generator is *derived*
from ``(seed, key, index)`` — never from a shared stream — the output
is bitwise-identical whether the tasks run serially in-process or
fanned out over any number of worker processes.  Tasks that consume no
randomness pass ``needs_rng=False`` and are called as ``fn(item)``,
skipping the per-task seed derivation entirely.

Workers receive ``fn`` by pickling, so it must be a module-level
function (or a :func:`functools.partial` of one).  Large shared inputs
— chiefly the CSR :class:`~repro.overlay.topology.Topology` arrays —
should travel through :mod:`repro.runtime.shm` rather than being
captured in the partial, which would re-pickle them for every task.

Instrumentation: every task is timed into the ``pmap.task`` timer and
counted under ``pmap.worker.<pid>.tasks``; parallel runs measure these
inside each worker process and ship the per-task metrics delta back
with the result, so the coordinator's registry reports the same
totals a serial run would.  Metrics are observational only — they
never affect task results.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar, Union

import numpy as np

from repro.obs import MetricsSnapshot, metrics
from repro.runtime.sanitize import task_guard
from repro.utils.rng import derive

__all__ = ["pmap", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Per-task callables receive the item and a task-private generator.
TaskFn = Callable[[T, np.random.Generator], R]
#: RNG-free task callables (``needs_rng=False``) receive just the item.
PlainTaskFn = Callable[[T], R]


def resolve_workers(n_workers: int) -> int:
    """Normalize a worker-count config field.

    ``1`` (the default everywhere) means serial in-process execution;
    ``0`` means "one per available CPU"; anything negative is an error.
    """
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers == 0:
        return os.cpu_count() or 1
    return n_workers


def _call_task(
    fn: Union[TaskFn, PlainTaskFn],
    item: T,
    seed: int,
    key: str | int,
    index: int,
    needs_rng: bool,
) -> R:
    """Derive the task RNG (when the task wants one), then run the task."""
    if needs_rng:
        return fn(item, derive(seed, key, index))  # type: ignore[call-arg]
    return fn(item)  # type: ignore[call-arg]


def _run_task(
    fn: Union[TaskFn, PlainTaskFn],
    item: T,
    seed: int,
    key: str | int,
    index: int,
    needs_rng: bool,
) -> R:
    """In-process task execution, recording into the live registry."""
    registry = metrics()
    with registry.timer("pmap.task"), task_guard():
        result = _call_task(fn, item, seed, key, index, needs_rng)
    registry.inc(f"pmap.worker.{os.getpid()}.tasks")
    return result


def _run_task_traced(
    fn: Union[TaskFn, PlainTaskFn],
    item: T,
    seed: int,
    key: str | int,
    index: int,
    needs_rng: bool,
) -> tuple[R, MetricsSnapshot]:
    """Worker-side shim: run the task, ship its metrics delta home.

    The delta covers everything the task recorded in this process —
    flood counters, cache hits, its own ``pmap.task`` timing — so
    merging all task deltas into the coordinator's registry makes a
    parallel run report the same totals as a serial one.
    """
    registry = metrics()
    before = registry.snapshot()
    result = _run_task(fn, item, seed, key, index, needs_rng)
    return result, registry.delta_since(before)


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start, inherits shm attachments)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def pmap(
    fn: Union[TaskFn, PlainTaskFn],
    items: Iterable[T],
    *,
    seed: int,
    key: str | int,
    n_workers: int = 1,
    needs_rng: bool = True,
) -> list[R]:
    """Deterministic (possibly parallel) map over ``items``.

    Each task ``i`` runs ``fn(items[i], derive(seed, key, i))``;
    results come back in item order.  ``n_workers <= 1`` runs in
    process with no pool at all, ``n_workers == 0`` auto-sizes to the
    CPU count, and any worker count yields bitwise-identical results
    because the per-task generators depend only on ``(seed, key, i)``.

    ``key`` namespaces the task streams: two ``pmap`` calls inside one
    experiment must use distinct keys or their tasks will share RNG
    streams index-for-index.

    ``needs_rng=False`` declares the task deterministic: ``fn`` is
    called as ``fn(item)`` and no per-task seed derivation happens.
    Use it for pure fan-outs (BFS rows, batch chunks) where a dangling
    ``rng`` parameter would only invite misuse.
    """
    items_list = list(items)
    workers = resolve_workers(n_workers)
    registry = metrics()
    registry.inc("pmap.maps")
    registry.inc("pmap.tasks", len(items_list))
    if workers <= 1 or len(items_list) <= 1:
        registry.gauge("pmap.workers", 1)
        with registry.timer("pmap.map"):
            return [
                _run_task(fn, item, seed, key, i, needs_rng)
                for i, item in enumerate(items_list)
            ]
    workers = min(workers, len(items_list))
    registry.gauge("pmap.workers", workers)
    with registry.timer("pmap.map"):
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            futures: list[Future[tuple[R, MetricsSnapshot]]] = [
                pool.submit(_run_task_traced, fn, item, seed, key, i, needs_rng)
                for i, item in enumerate(items_list)
            ]
            outcomes = [f.result() for f in futures]
        for _, delta in outcomes:
            registry.merge(delta)
        return [result for result, _ in outcomes]
