"""Runtime write-sanitizer for the parallel boundary (``REPRO_SANITIZE``).

simlint v4 (SIM018-SIM021) *statically* claims the worker boundary is
race-free: workers treat attached shm/mmap segments as read-only, and
scratch buffers never leak state across tasks.  This module makes the
runtime *prove* it.  Two layers:

* **Freezing** — :func:`freeze` marks an array read-only so numpy
  raises ``ValueError`` on any write; the shm/mmap attach paths call
  it unconditionally (defense in depth), and under sanitize mode
  :func:`freeze_artifact` extends the same guarantee to every array
  inside a cached artifact, including the small ones the blob store
  keeps inline in the skeleton pickle.
* **Scratch tracking** — kernels allocate reusable paint buffers via
  :func:`scratch_alloc` and hand them back via :func:`scratch_release`.
  With ``REPRO_SANITIZE=shm`` each release poisons the buffer with
  ``0xA5`` bytes, so a stale read of released scratch produces loudly
  wrong values instead of silently plausible ones, and
  :func:`task_guard` (wrapped around every ``pmap`` task) records a
  fault when a task exits with scratch still outstanding.

The mode switch is an environment variable so forked pool workers
inherit it for free.  Sanitize mode never changes computed values —
the parity suites assert bitwise-identical outputs with it on — it
only converts latent write races into immediate faults.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from typing import Any, Iterator

import numpy as np

from repro.obs import metrics

__all__ = [
    "POISON_BYTE",
    "SANITIZE_ENV",
    "freeze",
    "freeze_artifact",
    "sanitize_faults",
    "scratch_alloc",
    "scratch_outstanding",
    "scratch_release",
    "shm_sanitize_enabled",
    "task_guard",
]

#: Environment switch; forked workers inherit the parent's setting.
SANITIZE_ENV = "REPRO_SANITIZE"
_ON_VALUES = frozenset({"shm", "all", "1", "on"})

#: Fill byte for released scratch: 0xA5 is a visually obvious pattern
#: that decodes to large odd integers / ``True`` in every kernel dtype,
#: so a stale read breaks bitwise parity immediately.
POISON_BYTE = 0xA5

#: Scratch buffers allocated but not yet released (sanitize mode only).
_outstanding: dict[int, np.ndarray] = {}
_fault_count = 0


def shm_sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` selects shm write-sanitizing."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in _ON_VALUES


def sanitize_faults() -> int:
    """Sanitizer faults recorded in this process since import."""
    return _fault_count


def _record_fault(kind: str) -> None:
    global _fault_count
    _fault_count += 1
    registry = metrics()
    registry.inc("sanitize.faults")
    registry.inc(f"sanitize.fault.{kind}")


def freeze(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only (in place) and return it.

    Idempotent; every attach/export path routes through here so the
    read-only contract is enforced by numpy, not by convention.
    """
    array.flags.writeable = False
    metrics().inc("sanitize.frozen_arrays")
    return array


def freeze_artifact(value: Any, _seen: set[int] | None = None) -> Any:
    """Recursively freeze every ndarray reachable inside ``value``.

    Called on cache-loaded artifacts under sanitize mode: large arrays
    come back as read-only ``mmap_mode="r"`` views already, but small
    arrays travel inline in the skeleton pickle and would otherwise be
    writable.  Walks dataclasses, dicts, and sequences; cycles and
    shared substructure are visited once.
    """
    seen = _seen if _seen is not None else set()
    if id(value) in seen:
        return value
    seen.add(id(value))
    if isinstance(value, np.ndarray):
        if value.dtype != object:
            freeze(value)
        return value
    if is_dataclass(value) and not isinstance(value, type):
        for field in fields(value):
            freeze_artifact(getattr(value, field.name, None), seen)
        return value
    if isinstance(value, dict):
        for item in value.values():
            freeze_artifact(item, seen)
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            freeze_artifact(item, seen)
        return value
    return value


def scratch_alloc(shape: int | tuple[int, ...], dtype: Any) -> np.ndarray:
    """Allocate a zeroed scratch buffer, tracked under sanitize mode."""
    buffer = np.zeros(shape, dtype=dtype)
    if shm_sanitize_enabled():
        _outstanding[id(buffer)] = buffer
        metrics().inc("sanitize.scratch_allocs")
    return buffer


def scratch_release(buffer: np.ndarray) -> None:
    """Return a scratch buffer; poisons it under sanitize mode.

    Releasing a buffer that was never allocated through
    :func:`scratch_alloc` in sanitize mode (or releasing twice) is
    itself a fault: it means the kernel's alloc/release pairing drifted.
    """
    if not shm_sanitize_enabled():
        return
    live = _outstanding.pop(id(buffer), None)
    if live is None:
        _record_fault("unpaired_release")
        return
    try:
        live.view(np.uint8).fill(POISON_BYTE)
    except ValueError:  # pragma: no cover - non-contiguous scratch
        live.fill(live.dtype.type(POISON_BYTE % 2))
    metrics().inc("sanitize.scratch_releases")


def scratch_outstanding() -> int:
    """Number of scratch buffers currently alive (sanitize mode)."""
    return len(_outstanding)


@contextmanager
def task_guard() -> Iterator[None]:
    """Fault if a parallel task exits with scratch still outstanding.

    Scratch leaked across a task boundary is exactly the PR 5 cache
    race shape: the next task on this worker would observe (poisoned)
    state from the previous one.
    """
    if not shm_sanitize_enabled():
        yield
        return
    before = len(_outstanding)
    try:
        yield
    finally:
        if len(_outstanding) > before:
            _record_fault("scratch_leak")
