"""Content-addressed on-disk cache for expensive experiment artifacts.

Every cacheable producer in :mod:`repro` is a pure function of a
frozen config dataclass, so an artifact is fully identified by

* a producer **name** (``"fig8-topology"``, ``"trace-bundle"``, ...),
* the producer's **version** — an integer bumped whenever the code
  behind it changes meaning (new algorithm, new calibration), and
* the **digest** of the config: a SHA-256 over a canonical recursive
  encoding of the dataclass (field names, types and values, nested
  dataclasses included), via :func:`config_digest`.

Entries live under ``<cache_dir>/<name>/v<version>-<digest>.pkl`` and
are written atomically (temp file + rename), so concurrent runs never
observe a torn entry.  The global :data:`CACHE_VERSION` is folded into
every digest: bumping it invalidates the whole cache at once.

Array-heavy producers (see :data:`BLOB_PRODUCERS`) use the zero-copy
**mmap-blob** format instead: a ``v<version>-<digest>.blob/``
directory holding a ``skeleton.pkl`` (the object graph with every
large ndarray replaced by a persistent-id stub) next to one raw
``a<i>.npy`` file per extracted array.  Loading unpickles the
skeleton and attaches each array via ``np.load(..., mmap_mode="r")``
— the kernel pages CSR/posting data in on demand instead of
deserializing gigabytes up front, so a million-node topology hit is
sub-second and costs no private RSS until touched.  Blob-backed
arrays are therefore *read-only* views; producers already treat
cached artifacts as immutable.  Legacy ``.pkl`` entries written
before a producer joined :data:`BLOB_PRODUCERS` still load (counted
by the ``artifact_cache.legacy_pickle_hits`` metric) until
re-written.

Environment knobs:

* ``REPRO_CACHE=off`` (or ``0``/``false``/``no``) disables the cache —
  every ``cached_call`` recomputes and writes nothing.
* ``REPRO_CACHE_DIR=<path>`` overrides the location (default:
  ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from repro.obs import get_logger, log_event, metrics
from repro.runtime.sanitize import freeze, freeze_artifact, shm_sanitize_enabled

__all__ = [
    "BLOB_PRODUCERS",
    "CACHE_VERSION",
    "CacheEntry",
    "CacheInfo",
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_call",
    "clear_cache",
    "config_digest",
]

#: Global schema version, folded into every digest.  Bump to
#: invalidate every cached artifact at once.
CACHE_VERSION = 1

#: Producers whose artifacts are dominated by large ndarrays and are
#: stored in the zero-copy mmap-blob format by default.  The trace
#: bundle qualifies since its CSR/posting/id arrays (peer offsets,
#: song ids, name ids) dwarf the interner and config skeleton.
BLOB_PRODUCERS = frozenset({"fig8-topology", "content-index", "trace-bundle"})

#: ndarrays at or above this size are extracted into raw ``.npy``
#: blobs; smaller ones stay inline in the pickled skeleton.
_BLOB_MIN_BYTES = 16 * 1024

_BLOB_SUFFIX = ".blob"
_SKELETON_NAME = "skeleton.pkl"
_PERSISTENT_TAG = "repro-ndarray"

_ENV_SWITCH = "REPRO_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"
_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

T = TypeVar("T")

_log = get_logger(__name__)


def cache_enabled() -> bool:
    """Whether the artifact cache is active (``REPRO_CACHE`` opt-out)."""
    return os.environ.get(_ENV_SWITCH, "on").strip().lower() not in _OFF_VALUES


def cache_dir() -> Path:
    """Cache root: ``REPRO_CACHE_DIR`` or the XDG cache location."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _encode(obj: Any, out: list[bytes], exclude: frozenset[str]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Tagged so that distinct structures never collide byte-wise (e.g.
    the string ``"1"`` vs the int ``1`` vs the tuple ``(1,)``).
    ``exclude`` drops the named fields of the *top-level* dataclass
    only — used for execution knobs like ``n_workers`` that do not
    affect the artifact's value.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(b"D")
        out.append(f"{cls.__module__}.{cls.__qualname__}".encode())
        for field in dataclasses.fields(obj):
            if field.name in exclude:
                continue
            out.append(b"F")
            out.append(field.name.encode())
            _encode(getattr(obj, field.name), out, frozenset())
        out.append(b"d")
    elif obj is None:
        out.append(b"N")
    elif isinstance(obj, bool):
        out.append(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        out.append(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        # repr() round-trips doubles exactly.
        out.append(b"X" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        encoded = obj.encode()
        out.append(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(obj, bytes):
        out.append(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        out.append(b"A" + data.dtype.str.encode() + repr(data.shape).encode())
        out.append(hashlib.sha256(data.tobytes()).digest())
    elif isinstance(obj, (tuple, list)):
        out.append(b"T" if isinstance(obj, tuple) else b"L")
        for element in obj:
            _encode(element, out, frozenset())
        out.append(b"t")
    elif isinstance(obj, dict):
        out.append(b"M")
        for key in sorted(obj, key=repr):
            _encode(key, out, frozenset())
            _encode(obj[key], out, frozenset())
        out.append(b"m")
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r} for a cache key; "
            "use dataclasses and plain scalars/tuples in configs"
        )


def config_digest(*objects: Any, exclude: tuple[str, ...] = ()) -> str:
    """Stable hex digest of one or more config objects.

    ``exclude`` names top-level dataclass fields to leave out of the
    key (execution details such as worker counts that cannot change
    the computed artifact).
    """
    parts: list[bytes] = [f"cache-schema-{CACHE_VERSION}".encode()]
    dropped = frozenset(exclude)
    for obj in objects:
        _encode(obj, parts, dropped)
    return hashlib.sha256(b"\x00".join(parts)).hexdigest()[:32]


def _entry_path(name: str, version: int, digest: str) -> Path:
    return cache_dir() / name / f"v{version}-{digest}.pkl"


def _blob_path(name: str, version: int, digest: str) -> Path:
    return cache_dir() / name / f"v{version}-{digest}{_BLOB_SUFFIX}"


def _resolve_codec(name: str, codec: str | None) -> str:
    if codec is None:
        return "mmap-blob" if name in BLOB_PRODUCERS else "pickle"
    if codec not in ("pickle", "mmap-blob"):
        raise ValueError(f"unknown cache codec {codec!r}; use 'pickle' or 'mmap-blob'")
    return codec


class _BlobPickler(pickle.Pickler):
    """Pickler that spills large ndarrays into sibling ``.npy`` files."""

    def __init__(self, handle: Any, directory: Path) -> None:
        super().__init__(handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._directory = directory
        self._count = 0

    def persistent_id(self, obj: Any) -> tuple[str, int] | None:
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.nbytes >= _BLOB_MIN_BYTES
        ):
            index = self._count
            self._count += 1
            np.save(self._directory / f"a{index}.npy", np.ascontiguousarray(obj))
            return (_PERSISTENT_TAG, index)
        return None


class _BlobUnpickler(pickle.Unpickler):
    """Unpickler that resolves array stubs to read-only memmaps."""

    def __init__(self, handle: Any, directory: Path) -> None:
        super().__init__(handle)
        self._directory = directory

    def persistent_load(self, pid: Any) -> Any:
        if not (
            isinstance(pid, tuple) and len(pid) == 2 and pid[0] == _PERSISTENT_TAG
        ):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return freeze(
            np.load(
                self._directory / f"a{pid[1]}.npy", mmap_mode="r", allow_pickle=False
            )
        )


def _load_blob(blob: Path) -> Any:
    with (blob / _SKELETON_NAME).open("rb") as handle:
        return _BlobUnpickler(handle, blob).load()


def _write_blob(blob: Path, value: Any) -> None:
    """Materialize a blob entry atomically (temp dir + rename)."""
    blob.parent.mkdir(parents=True, exist_ok=True)
    temp = blob.with_name(blob.name + f".tmp-{os.getpid()}")
    if temp.exists():
        shutil.rmtree(temp)
    temp.mkdir()
    try:
        with (temp / _SKELETON_NAME).open("wb") as handle:
            _BlobPickler(handle, temp).dump(value)
        if blob.exists():
            # Only reached when the existing entry failed to load
            # (corrupt); replace it wholesale.
            shutil.rmtree(blob, ignore_errors=True)
        os.replace(temp, blob)
    except OSError:
        # A concurrent writer won the rename race; its entry is
        # equivalent (same name/version/digest), so keep it.
        shutil.rmtree(temp, ignore_errors=True)


_READ_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError, OSError, ValueError)


def cached_call(
    name: str,
    version: int,
    digest: str,
    compute: Callable[[], T],
    *,
    codec: str | None = None,
) -> T:
    """Return the cached artifact for ``(name, version, digest)``.

    On a miss (or with the cache disabled) runs ``compute()``.  Pickle
    hits deserialize a fresh object, so callers never alias each
    other's results; mmap-blob hits (producers in
    :data:`BLOB_PRODUCERS`, or ``codec="mmap-blob"``) share read-only
    pages of the large arrays through the OS page cache instead.
    Unreadable entries (torn writes from a crash, pickle format drift)
    are treated as misses and overwritten.  ``codec=None`` picks the
    registered format for ``name``.
    """
    registry = metrics()
    if not cache_enabled():
        registry.inc("artifact_cache.disabled_calls")
        return compute()
    chosen = _resolve_codec(name, codec)
    path = _entry_path(name, version, digest)
    blob = _blob_path(name, version, digest)
    if chosen == "mmap-blob" and blob.is_dir():
        try:
            value = _load_blob(blob)
        except _READ_ERRORS as exc:
            registry.inc("artifact_cache.corrupt")
            log_event(
                _log, "artifact_cache.corrupt",
                producer=name, path=str(blob), error=exc,
            )
        else:
            registry.inc("artifact_cache.hits")
            registry.inc("artifact_cache.mmap_hits")
            if shm_sanitize_enabled():
                # Inline (sub-threshold) arrays in the skeleton are
                # writable; sanitize mode freezes the whole artifact.
                freeze_artifact(value)
            return value  # type: ignore[no-any-return]
    elif path.is_file():
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except _READ_ERRORS as exc:
            # Torn write from a crash or pickle drift: recompute below.
            registry.inc("artifact_cache.corrupt")
            log_event(
                _log, "artifact_cache.corrupt",
                producer=name, path=str(path), error=exc,
            )
        else:
            registry.inc("artifact_cache.hits")
            if chosen == "mmap-blob":
                # Entry predates the producer's blob registration.
                registry.inc("artifact_cache.legacy_pickle_hits")
            if shm_sanitize_enabled():
                freeze_artifact(value)
            return value  # type: ignore[no-any-return]
    registry.inc("artifact_cache.misses")
    value = compute()
    if chosen == "mmap-blob":
        _write_blob(blob, value)
        return value
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with temp.open("wb") as handle:
        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp, path)
    return value


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk artifact: where it lives and how it is encoded."""

    producer: str
    key: str  # "v<version>-<digest>"
    format: str  # "pickle" | "mmap-blob"
    n_bytes: int


@dataclass(frozen=True)
class CacheInfo:
    """Summary of the on-disk cache state."""

    path: str
    enabled: bool
    n_entries: int
    total_bytes: int
    #: entry count per producer name.
    sections: dict[str, int]
    #: every entry, sorted by (producer, key).
    entries: tuple[CacheEntry, ...] = ()


def _scan_entries(root: Path) -> list[CacheEntry]:
    found: list[CacheEntry] = []
    for entry in root.glob("*/*.pkl"):
        if ".tmp-" in entry.name:
            continue
        found.append(
            CacheEntry(
                producer=entry.parent.name,
                key=entry.name.removesuffix(".pkl"),
                format="pickle",
                n_bytes=entry.stat().st_size,
            )
        )
    for entry in root.glob(f"*/*{_BLOB_SUFFIX}"):
        if not entry.is_dir() or ".tmp-" in entry.name:
            continue
        found.append(
            CacheEntry(
                producer=entry.parent.name,
                key=entry.name.removesuffix(_BLOB_SUFFIX),
                format="mmap-blob",
                n_bytes=sum(f.stat().st_size for f in entry.iterdir() if f.is_file()),
            )
        )
    found.sort(key=lambda e: (e.producer, e.key))
    return found


def cache_info() -> CacheInfo:
    """Inventory the cache directory (cheap: stats only)."""
    root = cache_dir()
    entries: list[CacheEntry] = _scan_entries(root) if root.is_dir() else []
    sections: dict[str, int] = {}
    for entry in entries:
        sections[entry.producer] = sections.get(entry.producer, 0) + 1
    return CacheInfo(
        path=str(root),
        enabled=cache_enabled(),
        n_entries=len(entries),
        total_bytes=sum(e.n_bytes for e in entries),
        sections=sections,
        entries=tuple(entries),
    )


def clear_cache() -> int:
    """Delete every cached artifact; returns the number removed."""
    info = cache_info()
    root = cache_dir()
    if root.is_dir():
        for child in root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
            else:
                child.unlink()
    return info.n_entries
