"""Content-addressed on-disk cache for expensive experiment artifacts.

Every cacheable producer in :mod:`repro` is a pure function of a
frozen config dataclass, so an artifact is fully identified by

* a producer **name** (``"fig8-topology"``, ``"trace-bundle"``, ...),
* the producer's **version** — an integer bumped whenever the code
  behind it changes meaning (new algorithm, new calibration), and
* the **digest** of the config: a SHA-256 over a canonical recursive
  encoding of the dataclass (field names, types and values, nested
  dataclasses included), via :func:`config_digest`.

Entries live under ``<cache_dir>/<name>/v<version>-<digest>.pkl`` and
are written atomically (temp file + rename), so concurrent runs never
observe a torn entry.  The global :data:`CACHE_VERSION` is folded into
every digest: bumping it invalidates the whole cache at once.

Environment knobs:

* ``REPRO_CACHE=off`` (or ``0``/``false``/``no``) disables the cache —
  every ``cached_call`` recomputes and writes nothing.
* ``REPRO_CACHE_DIR=<path>`` overrides the location (default:
  ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from repro.obs import get_logger, log_event, metrics

__all__ = [
    "CACHE_VERSION",
    "CacheInfo",
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_call",
    "clear_cache",
    "config_digest",
]

#: Global schema version, folded into every digest.  Bump to
#: invalidate every cached artifact at once.
CACHE_VERSION = 1

_ENV_SWITCH = "REPRO_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"
_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

T = TypeVar("T")

_log = get_logger(__name__)


def cache_enabled() -> bool:
    """Whether the artifact cache is active (``REPRO_CACHE`` opt-out)."""
    return os.environ.get(_ENV_SWITCH, "on").strip().lower() not in _OFF_VALUES


def cache_dir() -> Path:
    """Cache root: ``REPRO_CACHE_DIR`` or the XDG cache location."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def _encode(obj: Any, out: list[bytes], exclude: frozenset[str]) -> None:
    """Append a canonical byte encoding of ``obj`` to ``out``.

    Tagged so that distinct structures never collide byte-wise (e.g.
    the string ``"1"`` vs the int ``1`` vs the tuple ``(1,)``).
    ``exclude`` drops the named fields of the *top-level* dataclass
    only — used for execution knobs like ``n_workers`` that do not
    affect the artifact's value.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        out.append(b"D")
        out.append(f"{cls.__module__}.{cls.__qualname__}".encode())
        for field in dataclasses.fields(obj):
            if field.name in exclude:
                continue
            out.append(b"F")
            out.append(field.name.encode())
            _encode(getattr(obj, field.name), out, frozenset())
        out.append(b"d")
    elif obj is None:
        out.append(b"N")
    elif isinstance(obj, bool):
        out.append(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        out.append(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        # repr() round-trips doubles exactly.
        out.append(b"X" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        encoded = obj.encode()
        out.append(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(obj, bytes):
        out.append(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        out.append(b"A" + data.dtype.str.encode() + repr(data.shape).encode())
        out.append(hashlib.sha256(data.tobytes()).digest())
    elif isinstance(obj, (tuple, list)):
        out.append(b"T" if isinstance(obj, tuple) else b"L")
        for element in obj:
            _encode(element, out, frozenset())
        out.append(b"t")
    elif isinstance(obj, dict):
        out.append(b"M")
        for key in sorted(obj, key=repr):
            _encode(key, out, frozenset())
            _encode(obj[key], out, frozenset())
        out.append(b"m")
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r} for a cache key; "
            "use dataclasses and plain scalars/tuples in configs"
        )


def config_digest(*objects: Any, exclude: tuple[str, ...] = ()) -> str:
    """Stable hex digest of one or more config objects.

    ``exclude`` names top-level dataclass fields to leave out of the
    key (execution details such as worker counts that cannot change
    the computed artifact).
    """
    parts: list[bytes] = [f"cache-schema-{CACHE_VERSION}".encode()]
    dropped = frozenset(exclude)
    for obj in objects:
        _encode(obj, parts, dropped)
    return hashlib.sha256(b"\x00".join(parts)).hexdigest()[:32]


def _entry_path(name: str, version: int, digest: str) -> Path:
    return cache_dir() / name / f"v{version}-{digest}.pkl"


def cached_call(name: str, version: int, digest: str, compute: Callable[[], T]) -> T:
    """Return the cached artifact for ``(name, version, digest)``.

    On a miss (or with the cache disabled) runs ``compute()``; hits
    deserialize a fresh object, so callers never alias each other's
    results.  Unreadable entries (torn writes from a crash, pickle
    format drift) are treated as misses and overwritten.
    """
    registry = metrics()
    if not cache_enabled():
        registry.inc("artifact_cache.disabled_calls")
        return compute()
    path = _entry_path(name, version, digest)
    if path.is_file():
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError) as exc:
            # Torn write from a crash or pickle drift: recompute below.
            registry.inc("artifact_cache.corrupt")
            log_event(
                _log, "artifact_cache.corrupt",
                producer=name, path=str(path), error=exc,
            )
        else:
            registry.inc("artifact_cache.hits")
            return value  # type: ignore[no-any-return]
    registry.inc("artifact_cache.misses")
    value = compute()
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with temp.open("wb") as handle:
        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp, path)
    return value


@dataclass(frozen=True)
class CacheInfo:
    """Summary of the on-disk cache state."""

    path: str
    enabled: bool
    n_entries: int
    total_bytes: int
    #: entry count per producer name.
    sections: dict[str, int]


def cache_info() -> CacheInfo:
    """Inventory the cache directory (cheap: stats only)."""
    root = cache_dir()
    n_entries = 0
    total_bytes = 0
    sections: dict[str, int] = {}
    if root.is_dir():
        for entry in sorted(root.glob("*/*.pkl")):
            n_entries += 1
            total_bytes += entry.stat().st_size
            sections[entry.parent.name] = sections.get(entry.parent.name, 0) + 1
    return CacheInfo(
        path=str(root),
        enabled=cache_enabled(),
        n_entries=n_entries,
        total_bytes=total_bytes,
        sections=sections,
    )


def clear_cache() -> int:
    """Delete every cached artifact; returns the number removed."""
    info = cache_info()
    root = cache_dir()
    if root.is_dir():
        for child in root.iterdir():
            if child.is_dir():
                shutil.rmtree(child)
            else:
                child.unlink()
    return info.n_entries
