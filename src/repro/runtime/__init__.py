"""Deterministic parallel experiment runtime.

Three cooperating pieces, each usable on its own:

* :mod:`repro.runtime.parallel` — ``pmap``, a process-pool fan-out
  whose per-task RNGs come from :func:`repro.utils.rng.derive`, so the
  result is bitwise-identical for any worker count.
* :mod:`repro.runtime.shm` — publishes :class:`~repro.overlay.topology.
  Topology` CSR arrays to POSIX shared memory so workers attach the
  ~1M-element arrays instead of unpickling them per task.
* :mod:`repro.runtime.cache` — a content-addressed on-disk artifact
  cache keyed by a stable digest of the frozen config dataclasses, so
  repeated runs skip topology/trace regeneration.
* :mod:`repro.runtime.sanitize` — the ``REPRO_SANITIZE=shm`` write
  sanitizer: read-only attached arrays, poison-on-release scratch
  tracking, and per-task leak guards, so CI dynamically confirms the
  read-only worker contract simlint checks statically.

See docs/performance.md for the architecture and invalidation rules.
"""

from __future__ import annotations

from repro.runtime.cache import (
    CacheInfo,
    cache_dir,
    cache_enabled,
    cache_info,
    cached_call,
    clear_cache,
    config_digest,
)
from repro.runtime.parallel import pmap, resolve_workers
from repro.runtime.sanitize import (
    freeze,
    freeze_artifact,
    sanitize_faults,
    scratch_alloc,
    scratch_release,
    shm_sanitize_enabled,
)
from repro.runtime.shards import (
    ShardedPostings,
    ShardedPostingsSpec,
    attach_postings_any,
    attach_sharded_postings,
)
from repro.runtime.shm import (
    SharedPostings,
    SharedPostingsSpec,
    SharedTopology,
    SharedTopologySpec,
    attach_postings,
    attach_topology,
)

__all__ = [
    "CacheInfo",
    "ShardedPostings",
    "ShardedPostingsSpec",
    "SharedPostings",
    "SharedPostingsSpec",
    "SharedTopology",
    "SharedTopologySpec",
    "attach_postings",
    "attach_postings_any",
    "attach_sharded_postings",
    "attach_topology",
    "cache_dir",
    "cache_enabled",
    "cache_info",
    "cached_call",
    "clear_cache",
    "config_digest",
    "freeze",
    "freeze_artifact",
    "pmap",
    "resolve_workers",
    "sanitize_faults",
    "scratch_alloc",
    "scratch_release",
    "shm_sanitize_enabled",
]
