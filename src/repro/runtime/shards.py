"""Sharded shared-memory transport + process-parallel flood driver.

:class:`ShardedTopology` publishes a
:class:`~repro.overlay.sharding.ShardSet` with one shared-memory
segment *per shard array* (local offsets + neighbors per node range,
one global forwards mask), instead of the single-segment
:class:`~repro.runtime.shm.SharedTopology` layout.  Per-shard segments
keep every mapping under the int32 entry ceiling, let a worker map
only the shards it expands, and are the unit the boundary-edge index
(``boundary_counts``) describes.

:class:`ShardedFloodRunner` drives the shard-parallel BFS of
:mod:`repro.overlay.sharding` over a *persistent* worker pool: every
BFS level, each shard's frontier slice is submitted as one task
(local CSR gather + dedup in the worker), and the level barrier —
the frontier exchange — merges the returned sorted-unique target
sets on the coordinator.  Results are merged in shard order, so the
output is bitwise identical to the serial sharded driver, which is
itself bitwise identical to the single-segment kernel (see
:mod:`repro.overlay.sharding`).  The pool persists across floods
because a Fig. 8 run issues hundreds of them — one pool per flood
would pay process start-up per BFS.

The runner also implements the ``bfs_entry`` provider hook of
:class:`~repro.overlay.flooding.FloodDepthCache`, so the depth cache
and :class:`~repro.overlay.batch.BatchQueryEngine` can run their BFS
sharded without knowing about this module.

:class:`ShardedPostings` is the content-path twin of
:class:`ShardedTopology`: it publishes a
:class:`~repro.overlay.content.PostingShardSet` (contiguous term-range
posting segments with re-based offsets) one segment per shard array,
and :func:`attach_sharded_postings` hands workers a view-backed
provider implementing the overlay's ``PostingsProvider`` protocol.
:func:`attach_postings_any` dispatches on the spec type, so the batch
engine's worker task accepts either posting transport.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs import metrics, span
from repro.overlay.content import (
    DensePostings,
    PostingShard,
    PostingShardSet,
    PostingsProvider,
    SharedContentIndex,
    partition_postings,
)
from repro.overlay.flooding import DepthEntry
from repro.overlay.sharding import (
    ExpandResult,
    ShardSet,
    TopologyShard,
    expand_shard,
    flood_depths_sharded,
    partition_topology,
    sharded_bfs_entry,
)
from repro.overlay.topology import Topology
from repro.runtime.parallel import _mp_context, resolve_workers
from repro.runtime.sanitize import freeze
from repro.runtime.shm import (
    SharedArraySpec,
    SharedPostingsSpec,
    _CACHE,
    _SharedArrayOwner,
    _attach_arrays,
    _export,
    attach_postings,
)

__all__ = [
    "PostingShardSpec",
    "ShardSpec",
    "ShardedFloodRunner",
    "ShardedPostings",
    "ShardedPostingsSpec",
    "ShardedTopology",
    "ShardedTopologySpec",
    "attach_postings_any",
    "attach_shard_set",
    "attach_sharded_postings",
]


@dataclass(frozen=True)
class ShardSpec:
    """Addresses of one shard's CSR arrays plus its node range."""

    lo: int
    hi: int
    offsets: SharedArraySpec
    neighbors: SharedArraySpec


@dataclass(frozen=True)
class ShardedTopologySpec:
    """Picklable address of a published :class:`ShardSet`.

    ``bounds`` and ``boundary_counts`` are value-carried (they are
    O(shards) and O(shards^2) metadata, not per-node arrays), so
    attaching never touches a segment for them.
    """

    bounds: tuple[int, ...]
    forwards: SharedArraySpec
    shards: tuple[ShardSpec, ...]
    boundary_counts: tuple[tuple[int, ...], ...]


class ShardedTopology(_SharedArrayOwner):
    """Owner handle for a shard set published to shared memory.

    Accepts either a pre-partitioned :class:`ShardSet` or a
    :class:`Topology` plus ``n_shards``.  As with
    :class:`~repro.runtime.shm.SharedTopology`, the owner pre-seeds
    the attachment cache with views over the published segments, so
    the owning process (and fork-started workers) read the exact bytes
    the spec addresses.
    """

    spec: ShardedTopologySpec

    def __init__(
        self, source: Topology | ShardSet, *, n_shards: int | None = None
    ) -> None:
        if isinstance(source, ShardSet):
            if n_shards is not None and n_shards != source.n_shards:
                raise ValueError(
                    f"source is already partitioned into {source.n_shards} "
                    f"shards; n_shards={n_shards} conflicts"
                )
            shard_set = source
        else:
            shard_set = partition_topology(source, n_shards or 1)
        with span("shard.publish", shards=shard_set.n_shards):
            segments = []
            fwd_spec, fwd_seg, fwd_view = _export(
                np.ascontiguousarray(shard_set.forwards)
            )
            segments.append(fwd_seg)
            shard_specs: list[ShardSpec] = []
            shard_views: list[TopologyShard] = []
            for shard in shard_set.shards:
                off_spec, off_seg, off_view = _export(
                    np.ascontiguousarray(shard.offsets)
                )
                nbr_spec, nbr_seg, nbr_view = _export(
                    np.ascontiguousarray(shard.neighbors)
                )
                segments.extend((off_seg, nbr_seg))
                shard_specs.append(
                    ShardSpec(shard.lo, shard.hi, off_spec, nbr_spec)
                )
                shard_views.append(
                    TopologyShard(shard.lo, shard.hi, off_view, nbr_view)
                )
        spec = ShardedTopologySpec(
            bounds=tuple(int(b) for b in shard_set.bounds),
            forwards=fwd_spec,
            shards=tuple(shard_specs),
            boundary_counts=tuple(
                tuple(int(c) for c in row) for row in shard_set.boundary_counts
            ),
        )
        self._adopt(
            spec,
            segments,
            ShardSet(
                bounds=freeze(np.asarray(spec.bounds, dtype=np.int64)),
                forwards=fwd_view,
                shards=tuple(shard_views),
                boundary_counts=freeze(
                    np.asarray(spec.boundary_counts, dtype=np.int64)
                ),
            ),
        )

    def __enter__(self) -> "ShardedTopology":
        return self

    @property
    def shard_set(self) -> ShardSet:
        """The view-backed shard set over the published segments."""
        return attach_shard_set(self.spec)


def attach_shard_set(spec: ShardedTopologySpec) -> ShardSet:
    """Map a published shard set into this process (cached, read-only)."""
    cached = _CACHE.get(spec)
    if cached is not None:
        assert isinstance(cached, ShardSet)
        return cached
    flat_specs = [spec.forwards]
    for shard in spec.shards:
        flat_specs.extend((shard.offsets, shard.neighbors))
    arrays, segments = _attach_arrays(tuple(flat_specs))
    shards = tuple(
        TopologyShard(s.lo, s.hi, arrays[1 + 2 * i], arrays[2 + 2 * i])
        for i, s in enumerate(spec.shards)
    )
    shard_set = ShardSet(
        bounds=freeze(np.asarray(spec.bounds, dtype=np.int64)),
        forwards=arrays[0],
        shards=shards,
        boundary_counts=freeze(np.asarray(spec.boundary_counts, dtype=np.int64)),
    )
    _CACHE.put(spec, shard_set, segments)
    return shard_set


@dataclass(frozen=True)
class PostingShardSpec:
    """Addresses of one posting shard's arrays plus its term range."""

    lo: int
    hi: int
    offsets: SharedArraySpec
    instances: SharedArraySpec


@dataclass(frozen=True)
class ShardedPostingsSpec:
    """Picklable address of a published posting shard set.

    ``bounds`` is value-carried (O(shards) metadata); the per-shard
    offset/instance arrays and the instance-to-peer map live in their
    own segments.
    """

    bounds: tuple[int, ...]
    instance_peer: SharedArraySpec
    shards: tuple[PostingShardSpec, ...]


class ShardedPostings(_SharedArrayOwner):
    """Owner handle for posting shards published to shared memory.

    Accepts a content index (or dense provider) plus ``n_shards``, or a
    pre-partitioned :class:`~repro.overlay.content.PostingShardSet`.
    The pre-seeded attachment is a view-backed shard set carrying
    ``spec``, so consumers holding the provider can recover the worker
    address without re-publishing.
    """

    spec: ShardedPostingsSpec

    def __init__(
        self,
        source: SharedContentIndex | DensePostings | PostingShardSet,
        *,
        n_shards: int | None = None,
    ) -> None:
        if isinstance(source, PostingShardSet):
            if n_shards is not None and n_shards != source.n_shards:
                raise ValueError(
                    f"source is already partitioned into {source.n_shards} "
                    f"shards; n_shards={n_shards} conflicts"
                )
            shard_set = source
        else:
            shard_set = partition_postings(source, n_shards or 1)
        with span("postings.publish", shards=shard_set.n_shards):
            segments = []
            pee_spec, pee_seg, pee_view = _export(
                np.ascontiguousarray(shard_set.instance_peer)
            )
            segments.append(pee_seg)
            shard_specs: list[PostingShardSpec] = []
            shard_views: list[PostingShard] = []
            for shard in shard_set.shards:
                off_spec, off_seg, off_view = _export(
                    np.ascontiguousarray(shard.offsets)
                )
                ins_spec, ins_seg, ins_view = _export(
                    np.ascontiguousarray(shard.instances)
                )
                segments.extend((off_seg, ins_seg))
                shard_specs.append(
                    PostingShardSpec(shard.lo, shard.hi, off_spec, ins_spec)
                )
                shard_views.append(
                    PostingShard(shard.lo, shard.hi, off_view, ins_view)
                )
        spec = ShardedPostingsSpec(
            bounds=tuple(int(b) for b in shard_set.bounds),
            instance_peer=pee_spec,
            shards=tuple(shard_specs),
        )
        self._adopt(
            spec,
            segments,
            PostingShardSet(
                bounds=freeze(np.asarray(spec.bounds, dtype=np.int64)),
                shards=tuple(shard_views),
                instance_peer=pee_view,
                spec=spec,
            ),
        )

    def __enter__(self) -> "ShardedPostings":
        return self

    @property
    def provider(self) -> PostingShardSet:
        """The view-backed shard set over the published segments."""
        return attach_sharded_postings(self.spec)


def attach_sharded_postings(spec: ShardedPostingsSpec) -> PostingShardSet:
    """Map published posting shards into this process (cached, read-only)."""
    cached = _CACHE.get(spec)
    if cached is not None:
        assert isinstance(cached, PostingShardSet)
        return cached
    flat_specs = [spec.instance_peer]
    for shard in spec.shards:
        flat_specs.extend((shard.offsets, shard.instances))
    arrays, segments = _attach_arrays(tuple(flat_specs))
    shards = tuple(
        PostingShard(s.lo, s.hi, arrays[1 + 2 * i], arrays[2 + 2 * i])
        for i, s in enumerate(spec.shards)
    )
    shard_set = PostingShardSet(
        bounds=freeze(np.asarray(spec.bounds, dtype=np.int64)),
        shards=shards,
        instance_peer=arrays[0],
        spec=spec,
    )
    _CACHE.put(spec, shard_set, segments)
    return shard_set


def attach_postings_any(
    spec: SharedPostingsSpec | ShardedPostingsSpec,
) -> PostingsProvider:
    """Attach whichever posting transport ``spec`` addresses."""
    if isinstance(spec, ShardedPostingsSpec):
        return attach_sharded_postings(spec)
    return attach_postings(spec)


def _expand_task(
    spec: ShardedTopologySpec, shard_index: int, senders: np.ndarray
) -> ExpandResult:
    """Worker task: one shard's level expansion against shared memory."""
    shard_set = attach_shard_set(spec)
    return expand_shard(shard_set.shards[shard_index], senders)


class ShardedFloodRunner:
    """Shard-parallel flood driver with a persistent worker pool.

    ``n_workers <= 1`` (or a single shard) expands in-process —
    identical arrays, identical arithmetic, no pool, no shm publish.
    Otherwise the shard set is published once and a pool of
    ``min(n_workers, n_shards)`` processes expands shard frontiers
    concurrently; the per-level merge order is fixed (shard 0, 1, ...),
    so every worker count is bitwise identical.

    Use as a context manager, or call :meth:`close`; the runner owns
    its pool and (when parallel) its published segments.
    """

    def __init__(
        self,
        source: Topology | ShardSet,
        *,
        n_shards: int | None = None,
        n_workers: int = 1,
    ) -> None:
        if isinstance(source, ShardSet):
            shard_set = source
        else:
            shard_set = partition_topology(source, n_shards or 1)
        self.n_workers = min(resolve_workers(n_workers), shard_set.n_shards)
        self._share: ShardedTopology | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        if self.n_workers > 1:
            self._share = ShardedTopology(shard_set)
            shard_set = self._share.shard_set
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=_mp_context()
            )
        self.shard_set = shard_set

    @property
    def n_nodes(self) -> int:
        """Node count of the underlying topology."""
        return self.shard_set.n_nodes

    @property
    def n_shards(self) -> int:
        """Shard count."""
        return self.shard_set.n_shards

    def _expand(self, parts: Sequence[np.ndarray]) -> list[ExpandResult]:
        """One level's frontier exchange over the pool."""
        assert self._pool is not None and self._share is not None
        empty = np.empty(0, dtype=np.int64)
        results: list[ExpandResult] = [(empty, 0, 0)] * len(parts)
        futures = {
            self._pool.submit(_expand_task, self._share.spec, s, senders): s
            for s, senders in enumerate(parts)
            if senders.size
        }
        for future, s in futures.items():
            results[s] = future.result()
        metrics().inc("shard.exchange.rounds")
        return results

    def flood_depths(
        self, sources: np.ndarray | int, max_depth: int
    ) -> tuple[np.ndarray, int]:
        """Sharded :func:`~repro.overlay.flooding.flood_depths`."""
        self._check_open()
        expand = self._expand if self._pool is not None else None
        with span(
            "shard.flood", shards=self.n_shards, workers=self.n_workers
        ):
            return flood_depths_sharded(
                self.shard_set, sources, max_depth, expand=expand
            )

    def bfs_entry(self, source: int, max_depth: int) -> DepthEntry:
        """Provider hook for :class:`~repro.overlay.flooding.FloodDepthCache`."""
        self._check_open()
        expand = self._expand if self._pool is not None else None
        with span(
            "shard.bfs_entry", shards=self.n_shards, workers=self.n_workers
        ):
            return sharded_bfs_entry(
                self.shard_set, source, max_depth, expand=expand
            )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardedFloodRunner is closed")

    def close(self) -> None:
        """Shut the pool down and unlink the published segments."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._share is not None:
            self._share.close()
            self._share = None

    def __enter__(self) -> "ShardedFloodRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
