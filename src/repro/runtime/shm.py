"""Shared-memory transport for :class:`~repro.overlay.topology.Topology`.

The Fig. 8 topology's CSR arrays hold ~1M int64 entries; pickling them
into every worker task would dominate the fan-out cost.  Instead the
owner publishes the three arrays (``offsets``, ``neighbors``,
``forwards``) into POSIX shared-memory segments once, and workers
attach zero-copy read-only views by segment name.

Lifecycle: the *owner* process creates a :class:`SharedTopology`
(ideally as a context manager) and ships the tiny picklable
:class:`SharedTopologySpec` to workers, which call
:func:`attach_topology`.  Attachments are cached per process, so a
pool worker maps each segment once no matter how many tasks it runs.
The owner's ``close()`` unlinks the segments; workers must not outlive
it.  Under the ``fork`` start method workers inherit the owner's
attachment cache and never reopen the segments by name at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.overlay.topology import Topology

__all__ = [
    "SharedArraySpec",
    "SharedTopology",
    "SharedTopologySpec",
    "attach_topology",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Address of one array in shared memory (picklable, tiny)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedTopologySpec:
    """Addresses of a topology's three CSR arrays."""

    offsets: SharedArraySpec
    neighbors: SharedArraySpec
    forwards: SharedArraySpec


#: Per-process attachment cache: one mapping per published topology.
_ATTACHED: dict[SharedTopologySpec, Topology] = {}
#: Keeps attached segments alive for the lifetime of the process —
#: a SharedMemory object that gets collected unmaps its buffer.
_SEGMENTS: dict[SharedTopologySpec, list[shared_memory.SharedMemory]] = {}


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Undo the attach-side resource_tracker registration.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the process's resource tracker, which then tries
    to unlink it again at exit (the owner already did) and warns about
    "leaked" objects.  Only the owner should track the segment.
    """
    resource_tracker.unregister(getattr(segment, "_name", segment.name), "shared_memory")


def _export(array: np.ndarray) -> tuple[SharedArraySpec, shared_memory.SharedMemory, np.ndarray]:
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view: np.ndarray = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    view.flags.writeable = False
    return SharedArraySpec(segment.name, array.shape, array.dtype.str), segment, view


class SharedTopology:
    """Owner handle for a topology published to shared memory.

    The owner keeps working against the same bytes the workers see:
    ``self.spec`` is the worker-side address, and the segments live
    until :meth:`close` (or context-manager exit).
    """

    def __init__(self, topology: Topology) -> None:
        off_spec, off_seg, off_view = _export(np.ascontiguousarray(topology.offsets))
        nbr_spec, nbr_seg, nbr_view = _export(np.ascontiguousarray(topology.neighbors))
        fwd_spec, fwd_seg, fwd_view = _export(np.ascontiguousarray(topology.forwards))
        self.spec = SharedTopologySpec(off_spec, nbr_spec, fwd_spec)
        self._segments = [off_seg, nbr_seg, fwd_seg]
        self._closed = False
        # Pre-seed the attachment cache: fork-started workers inherit
        # it and read the owner's mapping directly, and in-process
        # "workers" (n_workers=1 fallbacks) skip the name lookup.
        _ATTACHED[self.spec] = Topology(off_view, nbr_view, fwd_view)

    def close(self) -> None:
        """Unlink the segments.  Workers must be joined before this."""
        if self._closed:
            return
        self._closed = True
        _ATTACHED.pop(self.spec, None)
        _SEGMENTS.pop(self.spec, None)
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedTopology":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except (AttributeError, TypeError):
            # Interpreter shutdown: module globals may already be gone.
            pass


def attach_topology(spec: SharedTopologySpec) -> Topology:
    """Map a published topology into this process (cached, read-only)."""
    cached = _ATTACHED.get(spec)
    if cached is not None:
        return cached
    segments: list[shared_memory.SharedMemory] = []
    arrays: list[np.ndarray] = []
    for array_spec in (spec.offsets, spec.neighbors, spec.forwards):
        segment = shared_memory.SharedMemory(name=array_spec.name)
        _untrack(segment)
        segments.append(segment)
        view: np.ndarray = np.ndarray(
            array_spec.shape, dtype=np.dtype(array_spec.dtype), buffer=segment.buf
        )
        view.flags.writeable = False
        arrays.append(view)
    topology = Topology(arrays[0], arrays[1], arrays[2])
    _ATTACHED[spec] = topology
    _SEGMENTS[spec] = segments
    return topology
